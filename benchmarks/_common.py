"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one paper artifact (an algorithm
figure or analytic claim — see DESIGN.md §5) as a printed table, writes
it to ``benchmarks/results/``, and wraps one representative run in a
pytest-benchmark timing.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterable, Sequence

from repro.orchestration.sweeps import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, title: str, headers: Sequence[str],
           rows: Iterable[Sequence[Any]], notes: str = "", capsys=None) -> str:
    """Render, persist and display one experiment table."""
    table = format_table(headers, rows)
    text = f"\n=== {title} ===\n{table}\n"
    if notes:
        text += f"{notes}\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:
        print(text)
    return table


def crash_pack(n: int, t: int):
    """t crash adversaries on the top-t pids."""
    from repro.adversary import crash

    return {pid: crash() for pid in range(n - t + 1, n + 1)}
