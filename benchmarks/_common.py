"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one paper artifact (an algorithm
figure or analytic claim — see DESIGN.md §5) as a printed table, writes
it to ``benchmarks/results/``, and wraps one representative run in a
pytest-benchmark timing.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Iterable, Sequence

from repro.orchestration.matrix import ScenarioMatrix, ScenarioOutcome
from repro.orchestration.parallel import SweepResult, sweep_parallel
from repro.orchestration.sweeps import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_workers() -> int:
    """Worker pool size for benchmark sweeps.

    ``REPRO_BENCH_WORKERS`` overrides; the default matches the number of
    schedulable CPUs so benchmark tables regenerate as fast as the
    hardware allows while staying bit-identical to a serial run.
    """
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env:
        return max(1, int(env))
    from repro.orchestration.parallel import default_workers

    return default_workers()


def run_matrix(matrix: ScenarioMatrix, workers: int | None = None) -> SweepResult:
    """Execute one scenario matrix on the benchmark worker pool."""
    return sweep_parallel(matrix, workers=bench_workers() if workers is None else workers)


def by_cell(sweep: SweepResult) -> dict[str, list[ScenarioOutcome]]:
    """Group a sweep's outcomes by grid cell, preserving matrix order."""
    cells: dict[str, list[ScenarioOutcome]] = {}
    for outcome in sweep.outcomes:
        cells.setdefault(outcome.spec.cell_id, []).append(outcome)
    return cells


def report(name: str, title: str, headers: Sequence[str],
           rows: Iterable[Sequence[Any]], notes: str = "", capsys=None) -> str:
    """Render, persist and display one experiment table."""
    table = format_table(headers, rows)
    text = f"\n=== {title} ===\n{table}\n"
    if notes:
        text += f"{notes}\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:
        print(text)
    return table


def crash_pack(n: int, t: int):
    """t crash adversaries on the top-t pids."""
    from repro.adversary import crash

    return {pid: crash() for pid in range(n - t + 1, n + 1)}
