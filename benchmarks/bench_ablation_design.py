"""Ablations of the design choices called out in DESIGN.md.

A1 — timer placement (deviation 1): literal Figure 3 (timer armed at
     line 5, after the early return) vs. this repo's fix (armed before).
     The literal version deadlocks on the constructed line-4 split
     schedule; the fix terminates, and on ordinary runs both behave
     identically.

A2 — timeout schedule (footnote 3): any increasing ``timeout_fn`` works;
     steeper schedules waste virtual time waiting, shallower ones churn
     rounds before stabilization.

A3 — FIFO vs. non-FIFO channels: the algorithms do not need FIFO; this
     ablation confirms behaviour and cost are unaffected.

A4 — cb_valid selector: the "any value" choice point (Figure 1 line 3)
     affects which value wins, never whether agreement holds.
"""

import pytest

from repro import RunConfig, run_consensus
from repro.adversary import crash, two_faced
from repro.core.values import first_added, smallest
from repro.net import single_bisource

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402


def base_config(seed, **overrides):
    defaults = dict(
        n=4, t=1, proposals={1: "b", 2: "a", 3: "b"},
        adversaries={4: two_faced("evil")}, seed=seed,
        max_time=1_000_000.0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


def test_a1_timer_placement(capsys):
    # On ordinary runs the deviation is invisible: identical outcomes.
    # (The deadlock needs the scripted split schedule — reproduced in
    # tests/core/test_ea_strict_mode.py; here we show equivalence on the
    # happy path.)
    from repro.core.eventual_agreement import EventualAgreement

    def strict_factory(*args, **kwargs):
        kwargs["strict_paper_timers"] = True
        return EventualAgreement(*args, **kwargs)

    rows = []
    for seed in (1, 2, 3):
        fixed = run_consensus(base_config(seed))
        strict = run_consensus(base_config(seed, ea_factory=strict_factory))
        assert fixed.decisions == strict.decisions
        rows.append([seed, fixed.decided_value, strict.decided_value,
                     fixed.max_round, strict.max_round])
    report(
        "ablation_timer_placement",
        "A1 — timer placement: fixed (default) vs literal Figure 3",
        ["seed", "fixed decides", "literal decides", "fixed rounds",
         "literal rounds"],
        rows,
        notes=("Identical on ordinary schedules; the literal version "
               "deadlocks only on the line-4 split schedule (see "
               "tests/core/test_ea_strict_mode.py)."),
        capsys=capsys,
    )


def test_a2_timeout_schedules(capsys):
    schedules = {
        "r (paper)": lambda r: float(r),
        "2r": lambda r: 2.0 * r,
        "r^2": lambda r: float(r * r),
        "5 + r": lambda r: 5.0 + r,
    }
    topo = single_bisource(4, 1, bisource=1, correct={1, 2, 3}, tau=40.0)
    rows = []
    for name, fn in schedules.items():
        results = [
            run_consensus(base_config(seed, timeout_fn=fn, topology=topo,
                                      adversaries={4: crash()}))
            for seed in (1, 2, 3)
        ]
        assert all(r.all_decided for r in results), name
        rows.append([
            name,
            max(r.max_round for r in results),
            f"{max(r.finished_at for r in results):.0f}",
        ])
    report(
        "ablation_timeout_schedules",
        "A2 — timeout schedule f(r) (late-stabilizing bisource, tau=40)",
        ["schedule", "max rounds", "max virtual time"],
        rows,
        notes=("Footnote 3: any increasing schedule preserves correctness; "
               "the trade-off is rounds churned vs. time spent waiting."),
        capsys=capsys,
    )


def test_a3_fifo_channels(capsys):
    rows = []
    for seed in (1, 2, 3):
        plain = run_consensus(base_config(seed))
        fifo = run_consensus(base_config(seed, fifo=True))
        assert plain.all_decided and fifo.all_decided
        assert len(set(plain.decisions.values())) == 1
        assert len(set(fifo.decisions.values())) == 1
        rows.append([seed, plain.decided_value, fifo.decided_value,
                     plain.messages_sent, fifo.messages_sent])
    report(
        "ablation_fifo",
        "A3 — FIFO vs non-FIFO channels",
        ["seed", "non-FIFO decides", "FIFO decides", "non-FIFO msgs",
         "FIFO msgs"],
        rows,
        notes="The algorithms never rely on channel ordering.",
        capsys=capsys,
    )


def test_a4_selector_choice(capsys):
    # Same runs with different "any value in cb_valid" selectors: the
    # decided value may differ, agreement/validity never do.
    rows = []
    for seed in (1, 2, 3, 4):
        first = run_consensus(base_config(seed, selector=first_added))
        small = run_consensus(base_config(seed, selector=smallest))
        assert first.all_decided and small.all_decided
        assert first.decided_value in {"a", "b"}
        assert small.decided_value in {"a", "b"}
        rows.append([seed, first.decided_value, small.decided_value])
    report(
        "ablation_selector",
        "A4 — cb_valid selector (first-added vs smallest)",
        ["seed", "first-added decides", "smallest decides"],
        rows,
        notes=("Figure 1 line 3 allows any choice: the winner may change, "
               "agreement and validity never do."),
        capsys=capsys,
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_benchmark_fifo(benchmark):
    result = benchmark(
        lambda: run_consensus(base_config(1, fifo=True))
    )
    assert result.all_decided
