"""E8 — the separation: minimal synchrony vs the prior art.

Three algorithms on the same substrate:

* **paper** — Figure 3/4 with witness sets F(r): needs one eventual
  ``<t+1>bisource``;
* **strong** — the structural ablation of reference [1]'s assumption:
  convergence needs ``t+1`` matching relays, i.e. an ``<n-t>source``
  coordinator;
* **randomized** — the MMR-style baseline of reference [22]: needs *no*
  synchrony but is randomized and binary.

Under the legal worst-case schedule (one minimal bisource; asynchronous
channels starve EA_COORD; Byzantine processes pre-poison relay quorums
with ⊥), the paper's EA converges in nearly every correct-coordinated
round while the strong rule converges only in bisource rounds; the
randomized baseline decides everywhere but pays coin-flip rounds.
"""

import pytest

from repro import run_randomized
from repro.adversary import crash
from repro.baselines import StrongBisourceEA
from repro.core.eventual_agreement import EventualAgreement
from repro.core.values import BOT
from repro.net import (
    Asynchronous,
    ExponentialDelay,
    PerTagTiming,
    ScriptedDelay,
    fully_asynchronous,
    single_bisource,
)
from repro.sim import gather

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).parents[1]))
from tests.helpers import build_system  # noqa: E402

N, T = 7, 2
CORRECT = set(range(1, 6))
ROUNDS = 12


class SplitCB:
    """CB double pinning a persistent aux split (no estimate drift)."""

    def __init__(self, process, rb, n, t, instance, selector=None):
        self.process = process

    async def cb_broadcast(self, value):
        return "a" if self.process.pid % 2 == 1 else "b"

    def in_valid(self, value):
        return value in ("a", "b")

    @property
    def cb_valid(self):
        return ("a", "b")


def worst_case_topology():
    topo = single_bisource(N, T, bisource=1, correct=CORRECT, delta=1.0)
    slow_coord = Asynchronous(
        ScriptedDelay(lambda send, rng: 100.0 + 2.0 * send, "coord-starved")
    )
    topo.default = PerTagTiming(
        base=Asynchronous(ExponentialDelay(mean=4.0)),
        overrides={"EA_COORD": slow_coord},
    )
    return topo


def ea_convergence_profile(ea_cls, seed):
    """Per-round agreement outcomes over ROUNDS rounds."""
    system = build_system(N, T, topology=worst_case_topology(), seed=seed,
                          byzantine=(6, 7))
    for byz in system.byzantine.values():
        for r in range(1, ROUNDS + 1):
            byz.broadcast_raw("EA_RELAY", (r, BOT))
    eas = {
        pid: ea_cls(proc, system.rbs[pid], N, T, m=2, cb_factory=SplitCB)
        for pid, proc in system.processes.items()
    }
    proposals = {pid: ("a" if pid % 2 == 1 else "b") for pid in eas}
    converged = []
    for r in range(1, ROUNDS + 1):
        tasks = [
            system.processes[pid].create_task(eas[pid].propose(r, proposals[pid]))
            for pid in sorted(eas)
        ]
        results = system.run(gather(system.sim, tasks), max_time=50_000_000.0)
        converged.append(len(set(results)) == 1)
    return converged


def randomized_rounds(seed):
    topo = fully_asynchronous(N, mean_delay=4.0)
    proposals = {pid: pid % 2 for pid in CORRECT}
    result = run_randomized(N, T, proposals, topo,
                            adversaries={6: crash(), 7: crash()}, seed=seed)
    if not result.decision_rounds:
        return None
    return max(result.decision_rounds.values())


SEEDS = (1, 2, 3, 5, 8)


def test_e8_table(capsys):
    paper_density = []
    strong_density = []
    paper_first = []
    strong_first = []
    for seed in SEEDS:
        paper = ea_convergence_profile(EventualAgreement, seed)
        strong = ea_convergence_profile(StrongBisourceEA, seed)
        paper_density.append(sum(paper))
        strong_density.append(sum(strong))
        paper_first.append(paper.index(True) + 1 if any(paper) else None)
        strong_first.append(strong.index(True) + 1 if any(strong) else None)
    rand_rounds = [randomized_rounds(seed) for seed in SEEDS]
    assert all(f is not None for f in paper_first)
    assert sum(paper_density) > 2 * sum(strong_density)
    assert all(r is not None for r in rand_rounds)
    rows = [
        ["paper (F(r) witness)", "<t+1>bisource",
         f"{sum(paper_density)}/{len(SEEDS) * ROUNDS}",
         f"{min(paper_first)}..{max(paper_first)}"],
        ["strong baseline [1]", "<n-t>source coordinator",
         f"{sum(strong_density)}/{len(SEEDS) * ROUNDS}",
         "-" if not any(strong_first) else
         f"{min(f for f in strong_first if f)}.."
         f"{max(f for f in strong_first if f)}"],
        ["randomized [22]", "none (randomized)",
         "n/a (coin-driven)",
         f"{min(rand_rounds)}..{max(rand_rounds)}"],
    ]
    report(
        "baseline_comparison",
        f"E8 — separation under the minimal <t+1>bisource worst case "
        f"(n={N}, t={T}, {ROUNDS} rounds x {len(SEEDS)} seeds)",
        ["algorithm", "synchrony needed", "convergence rounds",
         "first agreement round"],
        rows,
        notes=("Claim (paper headline): a single eventual <t+1>bisource "
               "suffices for the F(r)-witness algorithm; the stronger-"
               "assumption rule converges only in bisource-coordinated "
               "rounds; the randomized baseline needs no synchrony but "
               "gives up determinism."),
        capsys=capsys,
    )


@pytest.mark.benchmark(group="baseline-comparison")
def test_e8_benchmark_paper_profile(benchmark):
    result = benchmark(ea_convergence_profile, EventualAgreement, 1)
    assert any(result)


@pytest.mark.benchmark(group="baseline-comparison")
def test_e8_benchmark_randomized(benchmark):
    result = benchmark(randomized_rounds, 1)
    assert result is not None
