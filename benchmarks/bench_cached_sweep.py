"""E12 — result-store leverage: cold vs warm cached sweeps.

Runs one 32-scenario matrix cold (empty :class:`ResultCache`), then
warm (same cache), and reports the executed-scenario counts and
wall-clock for each.  The warm sweep must execute *zero* scenarios and
return a bit-identical result — that equivalence, not raw speed, is
what makes the store safe to leave on everywhere — while the measured
speedup shows what incremental experiments save in practice.
"""

import pytest

from repro.orchestration.matrix import ScenarioMatrix
from repro.orchestration.parallel import sweep_serial
from repro.store import ResultCache

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402


def cached_matrix() -> ScenarioMatrix:
    """2 sizes x 2 topologies x 2 adversaries x 2 diversities x 2 seeds = 32."""
    matrix = ScenarioMatrix(
        sizes=[(4, 1), (7, 2)],
        topologies=["single_bisource", "fully_timely"],
        adversaries=["crash", "two_faced:evil"],
        value_counts=[1, 2],
        seeds=range(2),
    )
    assert len(matrix) == 32
    return matrix


def test_cold_vs_warm_cache(tmp_path, capsys):
    matrix = cached_matrix()
    cache = ResultCache(tmp_path / "cache")
    cold = sweep_serial(matrix, cache=cache)
    warm = sweep_serial(matrix, cache=cache)
    assert cold.executed == 32 and cold.cache_hits == 0
    assert warm.executed == 0 and warm.cache_hits == 32
    assert warm.outcomes == cold.outcomes, "warm sweep must be bit-identical"
    assert warm.report == cold.report
    assert cold.report.decide_rate == 1.0 and cold.report.all_safe
    speedup = cold.elapsed / warm.elapsed if warm.elapsed else float("inf")
    report(
        "cached_sweep",
        "E12 — result-store leverage (32 scenarios, serial backend)",
        ["sweep", "executed", "cache hits", "wall s", "scenarios/s"],
        [
            ["cold", cold.executed, cold.cache_hits, f"{cold.elapsed:.3f}",
             f"{cold.scenarios_per_second:.1f}"],
            ["warm", warm.executed, warm.cache_hits, f"{warm.elapsed:.3f}",
             f"{warm.scenarios_per_second:.1f}"],
        ],
        notes=(f"warm/cold speedup = {speedup:.0f}x; warm results are "
               "bit-identical (cache entries are keyed on the scenario's "
               "full semantic identity + code-version salt)"),
        capsys=capsys,
    )
    # A warm sweep does no simulation at all; anything short of a clear
    # win means the store itself became the bottleneck.
    assert warm.elapsed < cold.elapsed


@pytest.mark.benchmark(group="cached-sweep")
def test_benchmark_warm_lookup(benchmark, tmp_path):
    matrix = ScenarioMatrix(
        sizes=[(4, 1)],
        adversaries=["crash", "two_faced:evil"],
        value_counts=[2],
        seeds=range(2),
    )
    cache = ResultCache(tmp_path / "cache")
    sweep_serial(matrix, cache=cache)  # populate
    result = benchmark(sweep_serial, matrix, cache=cache)
    assert result.executed == 0 and result.cache_hits == 4
