"""Exhaustive-checker throughput: explored states per second.

The checker's cost model is simple — every distinct fingerprinted state
costs one partial re-execution plus one SHA-256 over the walked global
state — so explored-states/sec is the number that decides how large a
model is checkable.  This bench exhausts the pinned n=2 FIFO models
(the same ones the golden fixture and the acceptance tests use) and
budget-runs one harder shape, then writes ``BENCH_check.json`` at the
repo root; ``bench_history.py`` folds the headline geomean into the
per-PR perf trajectory next to the kernel and sweep numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_check.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import time
from typing import Any

from repro.checking import Explorer
from repro.orchestration.config import RunConfig

REPO_ROOT = pathlib.Path(__file__).parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_check.json"


def _cases(quick: bool) -> dict[str, dict[str, Any]]:
    """name -> {config, explorer kwargs}; exhaustible cases first."""
    budget = 200 if quick else 2_000
    return {
        # The acceptance model: exhausts, so the run measures the full
        # explore/fingerprint/dedup/prune cycle end to end.
        "n2_fifo": {
            "config": RunConfig(
                n=2, t=0, proposals={1: "a", 2: "a"},
                max_rounds=1, fifo=True,
            ),
            "kwargs": {},
        },
        "n2_fifo_divergent": {
            "config": RunConfig(
                n=2, t=0, proposals={1: "a", 2: "b"},
                max_rounds=1, fifo=True,
            ),
            "kwargs": {},
        },
        # Unordered channels: the space is unbounded, so this is a
        # fixed-budget sample — it weights the fingerprint walk on a
        # busier frontier than the FIFO cases.
        "n2_unordered_budget": {
            "config": RunConfig(
                n=2, t=0, proposals={1: "a", 2: "a"}, max_rounds=1,
            ),
            "kwargs": {"max_executions": budget, "minimize": False},
        },
    }


def collect(quick: bool) -> dict[str, dict[str, Any]]:
    out: dict[str, dict[str, Any]] = {}
    for name, case in _cases(quick).items():
        start = time.perf_counter()
        result = Explorer(case["config"], **case["kwargs"]).run()
        elapsed = time.perf_counter() - start
        stats = result.stats
        out[name] = {
            "exhausted": result.exhausted,
            "executions": stats.executions,
            "states": stats.states,
            "steps": stats.steps,
            "elapsed": round(elapsed, 4),
            "states_per_sec": round(stats.states / elapsed, 1),
            "executions_per_sec": round(stats.executions / elapsed, 1),
        }
        print(f"{name:>20}: {out[name]['states_per_sec']:>9,.1f} states/s  "
              f"({stats.states:,} states, {stats.executions:,} executions, "
              f"{'exhausted' if result.exhausted else 'budgeted'}, "
              f"{elapsed:.2f}s)")
    return out


def geomean(values: list[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--label", default="check")
    parser.add_argument("--quick", action="store_true",
                        help="smaller budgets (CI smoke)")
    args = parser.parse_args(argv)

    metrics = collect(args.quick)
    states_geomean = round(
        geomean([m["states_per_sec"] for m in metrics.values()]), 1
    )
    payload: dict[str, Any] = {
        "bench": "check",
        "label": args.label,
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": metrics,
        "states_per_sec_geomean": states_geomean,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"\nstates/s geomean: {states_geomean:,.1f}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
