"""E7 — the feasibility condition n - t > m*t (Sections 2.3 / 3).

Regenerates:

* the analytic m_max table over (n, t);
* a demonstration that the bound is operational: at m = m_max the full
  consensus stack decides, while a profile exceeding the bound (checked
  bypassed by declaring a smaller m) leaves the CB layer — and hence the
  whole stack — waiting forever.
"""

import pytest

from repro import RunConfig, run_consensus, standard_proposals
from repro.adversary import crash
from repro.analysis.feasibility import max_values

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402


GRID = [(4, 1), (7, 1), (7, 2), (10, 2), (10, 3), (13, 3), (13, 4), (16, 5)]


def run_at_m(n, t, m, seed=1, lie_about_m=False):
    values = [f"v{i}" for i in range(m)]
    correct = range(1, n - t + 1)
    proposals = standard_proposals(correct, values)
    return run_consensus(
        RunConfig(
            n=n, t=t, proposals=proposals,
            adversaries={pid: crash() for pid in range(n - t + 1, n + 1)},
            m=1 if lie_about_m else None,
            seed=seed,
            max_time=3_000.0 if lie_about_m else 1_000_000.0,
        ),
        check_invariants=True,
    )


def test_e7_table(capsys):
    rows = []
    for n, t in GRID:
        m_max = max_values(n, t)
        rows.append([n, t, n - t, m_max, m_max * t, (n - t) > m_max * t])
        assert (n - t) > m_max * t
        assert not (n - t) > (m_max + 1) * t
    report(
        "feasibility_table",
        "E7 — the m-valued feasibility bound m_max = floor((n-t-1)/t)",
        ["n", "t", "correct", "m_max", "m_max*t", "n-t > m_max*t"],
        rows,
        notes="Claim: m_max is the largest m with n - t > m*t (sharp).",
        capsys=capsys,
    )


def test_e7_boundary_behaviour(capsys):
    rows = []
    for n, t in [(4, 1), (7, 2), (10, 3)]:
        m_max = max_values(n, t)
        ok = run_at_m(n, t, m_max)
        assert ok.all_decided, f"m=m_max must decide (n={n}, t={t})"
        # One value beyond the bound: some correct value profile has no
        # t+1-supported value, the initial CB never fills, nobody decides.
        blocked = run_at_m(n, t, m_max + 1, lie_about_m=True)
        assert blocked.timed_out and not blocked.decisions, (
            f"m=m_max+1 should block (n={n}, t={t})"
        )
        rows.append([n, t, m_max, ok.all_decided, bool(blocked.decisions)])
    report(
        "feasibility_boundary",
        "E7b — feasibility is operational: decide at m_max, block beyond",
        ["n", "t", "m_max", "decides at m_max", "decides at m_max+1"],
        rows,
        notes=("At m_max+1 the adversary can split correct proposals so "
               "that no value reaches t+1 supporters: cb_valid stays "
               "empty and CB-broadcast (hence consensus) never returns."),
        capsys=capsys,
    )


@pytest.mark.benchmark(group="feasibility")
def test_e7_benchmark_m_max_run(benchmark):
    result = benchmark(run_at_m, 7, 2, 2)
    assert result.all_decided
