"""E1 — Figure 1: the m-valued cooperative broadcast abstraction.

Regenerates, per system size:

* operation latency (virtual time until every correct CB invocation
  returns) and message cost;
* the CB-Set Validity check under a colluding Byzantine value (the
  feasibility mechanism: a value with only ``t`` supporters never enters
  ``cb_valid``).
"""

import pytest

from repro.broadcast import CooperativeBroadcast
from repro.sim import gather

import sys
sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _common import report  # noqa: E402

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parents[1]))
from tests.helpers import build_system  # noqa: E402


def run_cb_round(n, t, seed=0):
    """All-to-all CB with t colluding Byzantine pushing a fake value."""
    byzantine = tuple(range(n - t + 1, n + 1))
    system = build_system(n, t, seed=seed, byzantine=byzantine)
    for byz in system.byzantine.values():
        for dst in range(1, n - t + 1):
            byz.send_raw(dst, "RB_INIT", (("CB_VAL", "bench"), "FAKE"))
    cbs = {
        pid: CooperativeBroadcast(proc, system.rbs[pid], n, t, "bench")
        for pid, proc in system.processes.items()
    }
    values = {pid: ("a" if pid % 2 else "b") for pid in cbs}
    tasks = [
        system.processes[pid].create_task(cbs[pid].cb_broadcast(values[pid]))
        for pid in sorted(cbs)
    ]
    returned = system.run(gather(system.sim, tasks))
    latency = system.sim.now
    system.settle()
    return {
        "n": n,
        "t": t,
        "returned": returned,
        "latency": latency,
        "messages": system.network.messages_sent,
        "fake_excluded": all(not cb.in_valid("FAKE") for cb in cbs.values()),
        "valid_sets": [frozenset(cb.cb_valid) for cb in cbs.values()],
    }


SIZES = [(4, 1), (7, 2), (10, 3), (13, 4)]


def test_fig1_table(capsys):
    rows = []
    for n, t in SIZES:
        out = run_cb_round(n, t, seed=1)
        agree = len(set(out["valid_sets"])) == 1
        rows.append([
            n, t, f"{out['latency']:.1f}", out["messages"],
            out["fake_excluded"], agree,
        ])
        assert out["fake_excluded"], "CB-Set Validity violated"
        assert agree, "CB-Set Agreement violated at quiescence"
        assert all(v in ("a", "b") for v in out["returned"])
    report(
        "fig1_cooperative_broadcast",
        "E1 / Figure 1 — m-valued cooperative broadcast",
        ["n", "t", "virtual latency", "messages", "byz value excluded",
         "cb_valid sets equal"],
        rows,
        notes=("Claim: CB terminates at t<n/3 and a value pushed by the t "
               "Byzantine processes alone never enters cb_valid."),
        capsys=capsys,
    )


def test_fig1_message_growth():
    # RB underneath costs Theta(n^2) per instance and there are n
    # instances: total messages should grow roughly like n^3.
    small = run_cb_round(4, 1, seed=2)["messages"]
    large = run_cb_round(10, 3, seed=2)["messages"]
    ratio = large / small
    assert 5.0 < ratio < 40.0  # (10/4)^3 ~ 15.6, wide tolerance


@pytest.mark.benchmark(group="fig1-cb")
def test_fig1_benchmark_n7(benchmark):
    result = benchmark(run_cb_round, 7, 2)
    assert result["fake_excluded"]


@pytest.mark.benchmark(group="fig1-cb")
def test_fig1_benchmark_n13(benchmark):
    result = benchmark(run_cb_round, 13, 4)
    assert result["fake_excluded"]
