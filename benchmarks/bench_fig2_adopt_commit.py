"""E2 — Figure 2: the Byzantine m-valued adopt-commit object.

Regenerates:

* AC-Obligation: unanimous correct proposals always commit;
* AC-Quasi-agreement under split proposals and equivocating estimates;
* latency / message cost per system size.
"""

import pytest

from repro.core.adopt_commit import AdoptCommit, Tag
from repro.sim import gather

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).parents[1]))
from tests.helpers import build_system  # noqa: E402


def run_ac_round(n, t, values, seed=0, byz_estimate=None):
    byzantine = tuple(range(n - t + 1, n + 1))
    system = build_system(n, t, seed=seed, byzantine=byzantine)
    if byz_estimate is not None:
        for byz in system.byzantine.values():
            for dst in range(1, n - t + 1):
                byz.send_raw(dst, "RB_INIT", (("CB_VAL", ("AC", "bench")), byz_estimate))
                byz.send_raw(dst, "RB_INIT", (("AC_EST", "bench"), byz_estimate))
    acs = {
        pid: AdoptCommit(proc, system.rbs[pid], n, t, m=2, instance="bench")
        for pid, proc in system.processes.items()
    }
    tasks = [
        system.processes[pid].create_task(acs[pid].propose(values[pid]))
        for pid in sorted(acs)
    ]
    results = system.run(gather(system.sim, tasks))
    return {
        "results": dict(zip(sorted(acs), results)),
        "latency": system.sim.now,
        "messages": system.network.messages_sent,
    }


SIZES = [(4, 1), (7, 2), (10, 3)]


def test_fig2_table(capsys):
    rows = []
    for n, t in SIZES:
        correct = range(1, n - t + 1)
        unanimous = run_ac_round(n, t, {p: "v" for p in correct}, seed=1,
                                 byz_estimate="w")
        split = run_ac_round(
            n, t, {p: ("a" if p % 2 else "b") for p in correct}, seed=1,
            byz_estimate="a",
        )
        u_tags = {tag for tag, _ in unanimous["results"].values()}
        s_committed = {
            v for tag, v in split["results"].values() if tag is Tag.COMMIT
        }
        s_values = {v for _, v in split["results"].values()}
        # Obligation: unanimity can only commit, and only "v".
        assert u_tags == {Tag.COMMIT}
        assert {v for _, v in unanimous["results"].values()} == {"v"}
        # Quasi-agreement: at most one committed value; if committed, all
        # returned values equal it.
        assert len(s_committed) <= 1
        if s_committed:
            assert s_values == s_committed
        rows.append([
            n, t, "commit" if u_tags == {Tag.COMMIT} else "?!",
            len(s_committed), f"{split['latency']:.1f}", split["messages"],
        ])
    report(
        "fig2_adopt_commit",
        "E2 / Figure 2 — Byzantine adopt-commit",
        ["n", "t", "unanimous outcome", "committed values (split)",
         "virtual latency", "messages"],
        rows,
        notes=("Claims: unanimity forces <commit, v> (AC-Obligation); a "
               "commit pins every other outcome (AC-Quasi-agreement)."),
        capsys=capsys,
    )


def test_fig2_output_domain_excludes_byzantine_values():
    out = run_ac_round(7, 2, {p: ("a" if p % 2 else "b") for p in range(1, 6)},
                       seed=3, byz_estimate="evil")
    for tag, value in out["results"].values():
        assert value in {"a", "b"}


@pytest.mark.benchmark(group="fig2-ac")
def test_fig2_benchmark_n7(benchmark):
    values = {p: ("a" if p % 2 else "b") for p in range(1, 6)}
    result = benchmark(run_ac_round, 7, 2, values)
    assert result["results"]
