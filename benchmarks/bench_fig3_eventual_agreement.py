"""E3 — Figure 3: the eventual-agreement object under a minimal bisource.

Regenerates the liveness story of Section 5: with one ``<t+1>bisource``
(everything else asynchronous), the EA object reaches rounds where all
correct processes return one common value — and the convergence round
tracks the stabilization time ``tau`` of the bisource's channels.
"""

import pytest

from repro.core.eventual_agreement import EventualAgreement
from repro.net import single_bisource
from repro.sim import gather

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).parents[1]))
from tests.helpers import build_system  # noqa: E402


def drive_rounds(n, t, tau, seed, rounds=20):
    correct = set(range(1, n + 1))
    topo = single_bisource(n, t, bisource=1, correct=correct, tau=tau, delta=1.0)
    system = build_system(n, t, topology=topo, seed=seed)
    eas = {
        pid: EventualAgreement(proc, system.rbs[pid], n, t, m=2)
        for pid, proc in system.processes.items()
    }
    values = {pid: ("a" if pid % 2 else "b") for pid in eas}
    first_common = None
    stabilized_at = None
    for r in range(1, rounds + 1):
        tasks = [
            system.processes[pid].create_task(eas[pid].propose(r, values[pid]))
            for pid in sorted(eas)
        ]
        results = system.run(gather(system.sim, tasks), max_time=10_000_000.0)
        if stabilized_at is None and system.sim.now >= tau:
            stabilized_at = r
        if first_common is None and len(set(results)) == 1:
            first_common = r
            break
    return {
        "first_common": first_common,
        "virtual_time": system.sim.now,
        "messages": system.network.messages_sent,
    }


def test_fig3_table(capsys):
    n, t = 4, 1
    rows = []
    for tau in (0.0, 25.0, 100.0):
        outcomes = [drive_rounds(n, t, tau, seed) for seed in (1, 2, 3)]
        firsts = [o["first_common"] for o in outcomes]
        assert all(f is not None for f in firsts), f"no convergence, tau={tau}"
        rows.append([
            f"{tau:.0f}",
            min(firsts),
            max(firsts),
            f"{sum(o['virtual_time'] for o in outcomes)/3:.1f}",
        ])
    # Later stabilization cannot make convergence earlier on average.
    report(
        "fig3_eventual_agreement",
        "E3 / Figure 3 — EA convergence vs. stabilization time tau "
        "(n=4, t=1, single <2>bisource)",
        ["tau", "first common round (min over seeds)",
         "first common round (max)", "mean virtual time"],
        rows,
        notes=("Claim: EA-Eventual agreement holds with a single eventual "
               "<t+1>bisource; convergence follows stabilization."),
        capsys=capsys,
    )


def test_fig3_no_bisource_no_guarantee_but_safe(capsys):
    # Fully asynchronous: EA rounds still terminate (termination does not
    # need the bisource), only eventual agreement is at risk.
    from repro.net import fully_asynchronous

    n, t = 4, 1
    topo = fully_asynchronous(n)
    system = build_system(n, t, topology=topo, seed=5)
    eas = {
        pid: EventualAgreement(proc, system.rbs[pid], n, t, m=2)
        for pid, proc in system.processes.items()
    }
    values = {pid: ("a" if pid % 2 else "b") for pid in eas}
    for r in range(1, 6):
        tasks = [
            system.processes[pid].create_task(eas[pid].propose(r, values[pid]))
            for pid in sorted(eas)
        ]
        results = system.run(gather(system.sim, tasks), max_time=10_000_000.0)
        assert len(results) == n  # every invocation terminated


@pytest.mark.benchmark(group="fig3-ea")
def test_fig3_benchmark_one_ea_round(benchmark):
    def run_once():
        return drive_rounds(4, 1, tau=0.0, seed=7, rounds=4)

    result = benchmark(run_once)
    assert result["messages"] > 0
