"""E4 — Figure 4: the synchrony-optimal Byzantine consensus algorithm.

Regenerates, per system size and adversary:

* termination under the minimal <t+1>bisource topology;
* decision rounds, virtual latency and message cost (message complexity
  per round is Theta(n^3): n RB instances of Theta(n^2) messages each).

The grid is declared as a :class:`ScenarioMatrix` and executed on the
parallel sweep engine; results are identical to a serial run by
construction (per-scenario seeds are derived structurally).
"""

import pytest

from repro.orchestration.matrix import ScenarioMatrix, run_scenario

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import by_cell, report, run_matrix  # noqa: E402


SIZES = [(4, 1), (7, 2), (10, 3)]
ADVERSARIES = ["crash", "two_faced:evil", "mute_coord"]


def fig4_matrix(seeds=(1, 2)) -> ScenarioMatrix:
    return ScenarioMatrix(
        sizes=SIZES,
        topologies=["single_bisource"],
        adversaries=ADVERSARIES,
        value_counts=[2],
        seeds=seeds,
    )


def run_one(n, t, adversary, seed):
    [spec] = ScenarioMatrix(
        sizes=[(n, t)], topologies=["single_bisource"],
        adversaries=[adversary], value_counts=[2], seeds=(seed,),
    ).expand()
    return run_scenario(spec, check_invariants=True)


def test_fig4_table(capsys):
    sweep = run_matrix(fig4_matrix())
    assert sweep.report.decide_rate == 1.0
    assert sweep.report.all_safe
    rows = []
    for cell_id, outcomes in by_cell(sweep).items():
        spec = outcomes[0].spec
        rows.append([
            spec.n, spec.t, spec.adversary,
            max(o.max_round for o in outcomes),
            f"{max(o.finished_at for o in outcomes):.0f}",
            max(o.messages_sent for o in outcomes),
        ])
    report(
        "fig4_consensus",
        "E4 / Figure 4 — Byzantine consensus under a minimal <t+1>bisource",
        ["n", "t", "adversary", "max rounds", "virtual latency (max)",
         "messages (max)"],
        rows,
        notes=("Claim: consensus terminates with t<n/3 plus one eventual "
               "<t+1>bisource, under every adversary; safety re-checked "
               "per run."),
        capsys=capsys,
    )


def test_fig4_message_scaling(capsys):
    # Per-round message cost should scale roughly like n^3.
    small = run_one(4, 1, "crash", seed=3)
    large = run_one(10, 3, "crash", seed=3)
    per_round_small = small.messages_sent / max(1, small.max_round)
    per_round_large = large.messages_sent / max(1, large.max_round)
    ratio = per_round_large / per_round_small
    assert 4.0 < ratio < 60.0  # (10/4)^3 ~ 15.6, generous band
    report(
        "fig4_message_scaling",
        "E4b — per-round message cost scaling",
        ["n", "messages/round"],
        [[4, f"{per_round_small:.0f}"], [10, f"{per_round_large:.0f}"]],
        notes=f"ratio = {ratio:.1f} (Theta(n^3) predicts ~15.6)",
        capsys=capsys,
    )


@pytest.mark.benchmark(group="fig4-consensus")
def test_fig4_benchmark_n4(benchmark):
    result = benchmark(run_one, 4, 1, "crash", 1)
    assert result.decided


@pytest.mark.benchmark(group="fig4-consensus")
def test_fig4_benchmark_n7(benchmark):
    result = benchmark(run_one, 7, 2, "crash", 1)
    assert result.decided


@pytest.mark.benchmark(group="fig4-consensus")
def test_fig4_benchmark_n7_twofaced(benchmark):
    result = benchmark(run_one, 7, 2, "two_faced:evil", 1)
    assert result.decided
