"""E4 — Figure 4: the synchrony-optimal Byzantine consensus algorithm.

Regenerates, per system size and adversary:

* termination under the minimal <t+1>bisource topology;
* decision rounds, virtual latency and message cost (message complexity
  per round is Theta(n^3): n RB instances of Theta(n^2) messages each).
"""

import pytest

from repro import RunConfig, run_consensus, standard_proposals
from repro.adversary import crash, mute_coordinator, two_faced

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402


SIZES = [(4, 1), (7, 2), (10, 3)]
ADVERSARIES = {
    "crash": lambda: crash(),
    "two-faced": lambda: two_faced("evil"),
    "mute-coord": lambda: mute_coordinator(),
}


def run_one(n, t, adversary_name, seed):
    byz = {pid: ADVERSARIES[adversary_name]() for pid in range(n - t + 1, n + 1)}
    proposals = standard_proposals(range(1, n - t + 1), ["a", "b"])
    return run_consensus(
        RunConfig(n=n, t=t, proposals=proposals, adversaries=byz, seed=seed,
                  max_time=1_000_000.0)
    )


def test_fig4_table(capsys):
    rows = []
    for n, t in SIZES:
        for name in ADVERSARIES:
            results = [run_one(n, t, name, seed) for seed in (1, 2)]
            assert all(r.all_decided for r in results), (n, t, name)
            assert all(r.invariants.ok for r in results)
            rows.append([
                n, t, name,
                max(r.max_round for r in results),
                f"{max(r.finished_at for r in results):.0f}",
                max(r.messages_sent for r in results),
            ])
    report(
        "fig4_consensus",
        "E4 / Figure 4 — Byzantine consensus under a minimal <t+1>bisource",
        ["n", "t", "adversary", "max rounds", "virtual latency (max)",
         "messages (max)"],
        rows,
        notes=("Claim: consensus terminates with t<n/3 plus one eventual "
               "<t+1>bisource, under every adversary; safety re-checked "
               "per run."),
        capsys=capsys,
    )


def test_fig4_message_scaling(capsys):
    # Per-round message cost should scale roughly like n^3.
    small = run_one(4, 1, "crash", seed=3)
    large = run_one(10, 3, "crash", seed=3)
    per_round_small = small.messages_sent / max(1, small.max_round)
    per_round_large = large.messages_sent / max(1, large.max_round)
    ratio = per_round_large / per_round_small
    assert 4.0 < ratio < 60.0  # (10/4)^3 ~ 15.6, generous band
    report(
        "fig4_message_scaling",
        "E4b — per-round message cost scaling",
        ["n", "messages/round"],
        [[4, f"{per_round_small:.0f}"], [10, f"{per_round_large:.0f}"]],
        notes=f"ratio = {ratio:.1f} (Theta(n^3) predicts ~15.6)",
        capsys=capsys,
    )


@pytest.mark.benchmark(group="fig4-consensus")
def test_fig4_benchmark_n4(benchmark):
    result = benchmark(run_one, 4, 1, "crash", 1)
    assert result.all_decided


@pytest.mark.benchmark(group="fig4-consensus")
def test_fig4_benchmark_n7(benchmark):
    result = benchmark(run_one, 7, 2, "crash", 1)
    assert result.all_decided


@pytest.mark.benchmark(group="fig4-consensus")
def test_fig4_benchmark_n7_twofaced(benchmark):
    result = benchmark(run_one, 7, 2, "two-faced", 1)
    assert result.all_decided
