"""Perf-trajectory history: one line per PR, regressions visible at a glance.

Each PR regenerates ``BENCH_kernel.json`` (kernel events/sec
microbenchmarks, see ``bench_kernel_events.py``) and ``BENCH_sweep.json``
(end-to-end sweep throughput, see ``bench_sweep_throughput.py``) — but
those files only ever hold *one* PR's numbers, so a slow regression
across several PRs hides between baselines.  This script closes the
loop: it digests both JSONs into one compact record (geometric-mean
kernel throughput, speedup vs the frozen baseline, sweep
scenarios/sec) and appends it to ``benchmarks/results/history.jsonl``,
then renders the whole trajectory as a table
(``benchmarks/results/history.txt``).

Appending is idempotent per label: re-running with the same ``label``
replaces that label's entry instead of duplicating it, so CI can
regenerate freely.

The script is also the **trend gate**: after recording the new point
it compares its sweep serial scenarios/sec *and* its kernel speedup
geomean against the previous history point measured under the same
``quick`` mode and exits 2 when either dropped by more than
``--max-sweep-drop`` / ``--max-kernel-drop`` (default 15% each).
The PR4→PR5 sweep regression shipped because recording was not gating,
and the PR7 kernel regression shipped because only the sweep was gated;
see ``docs/profiling.md`` for the post-mortems.  Since PR 9 a third
gate pins kernel allocations-per-event (the freelist construction
counters from ``BENCH_kernel.json``'s ``alloc`` section):
``--max-alloc-rise`` is an *absolute* allowance because the pooled
kernel sits near zero allocs/event, where relative thresholds are
meaningless.  ``--no-gate`` restores record-only behaviour for
deliberately slower points.

Usage::

    PYTHONPATH=src python benchmarks/bench_history.py
        [--kernel PATH] [--sweep PATH] [--history PATH] [--label TEXT]
        [--max-sweep-drop FRACTION] [--max-kernel-drop FRACTION]
        [--max-alloc-rise ALLOCS] [--no-gate]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).parent.parent
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_HISTORY = RESULTS_DIR / "history.jsonl"


def geomean(values: list[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize(
    kernel: dict, sweep: dict, label: str | None, check: dict | None = None
) -> dict:
    """One history record from the per-PR bench JSONs.

    ``check`` (``BENCH_check.json``, see ``bench_check.py``) joined the
    trajectory in PR 10; older points simply lack the field.
    """
    metrics = kernel.get("metrics", {})
    events_geomean = geomean(
        [m["events_per_sec"] for m in metrics.values()]
    )
    sweep_metrics = sweep.get("metrics", {})
    record = {
        "label": label or kernel.get("label", "unlabeled"),
        "timestamp": kernel.get("timestamp"),
        "python": kernel.get("python"),
        "quick": bool(kernel.get("quick", False)),
        "kernel_events_per_sec_geomean": round(events_geomean, 1),
        "kernel_speedup_geomean": kernel.get("speedup_geomean"),
        "kernel_allocs_per_event": kernel.get("alloc", {})
        .get("flood", {})
        .get("allocs_per_event"),
        "sweep_serial_sps": sweep_metrics.get("serial", {}).get(
            "scenarios_per_sec"
        ),
        "sweep_parallel_sps": sweep_metrics.get("parallel", {}).get(
            "scenarios_per_sec"
        ),
        "sweep_cpu_count": sweep.get("cpu_count"),
        "sweep_bit_identical": sweep.get("bit_identical"),
    }
    if check is not None:
        record["check_states_per_sec"] = check.get("states_per_sec_geomean")
    return record


def load_history(path: pathlib.Path) -> list[dict]:
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def append_entry(history: list[dict], entry: dict) -> list[dict]:
    """Replace the entry with the same label, else append."""
    out = [e for e in history if e.get("label") != entry["label"]]
    out.append(entry)
    return out


def _previous_point(
    history: list[dict], entry: dict, metric: str
) -> dict | None:
    """The most recent *other* label recorded under the same ``quick``
    mode with ``metric`` present — CI's quick numbers are never judged
    against full local runs."""
    return next(
        (
            e
            for e in reversed(history)
            if e.get("label") != entry["label"]
            and e.get("quick") == entry.get("quick")
            and e.get(metric)
        ),
        None,
    )


def check_sweep_trend(
    history: list[dict], entry: dict, max_drop: float
) -> str | None:
    """The sweep gate: compare ``entry`` against the previous comparable
    point.

    Returns a failure message when the new point's sweep serial
    scenarios/sec dropped by more than ``max_drop`` (a fraction), else
    ``None``.  Missing numbers on either side skip the gate: the first
    point of a mode has nothing to regress from.
    """
    current = entry.get("sweep_serial_sps")
    if not current:
        return None
    previous = _previous_point(history, entry, "sweep_serial_sps")
    if previous is None:
        return None
    baseline = previous["sweep_serial_sps"]
    drop = (baseline - current) / baseline
    if drop <= max_drop:
        return None
    return (
        f"sweep throughput regression: serial {current:.2f} scenarios/s "
        f"is {drop:.1%} below '{previous['label']}' ({baseline:.2f}); "
        f"gate allows {max_drop:.0%}. Run `python -m repro profile` to "
        f"localise it (docs/profiling.md), or pass --no-gate for a "
        f"deliberate slowdown."
    )


def check_kernel_trend(
    history: list[dict], entry: dict, max_drop: float
) -> str | None:
    """The kernel gate: same shape as :func:`check_sweep_trend`, over
    the kernel speedup geomean (events/sec vs the frozen PR 1 baseline).

    The PR 7 telemetry hooks cost the kernel 14% and sailed through
    because only sweep throughput was gated; this closes that hole.
    """
    current = entry.get("kernel_speedup_geomean")
    if not current:
        return None
    previous = _previous_point(history, entry, "kernel_speedup_geomean")
    if previous is None:
        return None
    baseline = previous["kernel_speedup_geomean"]
    drop = (baseline - current) / baseline
    if drop <= max_drop:
        return None
    return (
        f"kernel throughput regression: speedup geomean {current:.3f}x "
        f"is {drop:.1%} below '{previous['label']}' ({baseline:.3f}x); "
        f"gate allows {max_drop:.0%}. Run "
        f"`python benchmarks/bench_kernel_events.py` per-case numbers to "
        f"localise it, or pass --no-gate for a deliberate slowdown."
    )


def check_alloc_trend(
    history: list[dict], entry: dict, max_rise: float
) -> str | None:
    """The allocation gate: allocations-per-event must not creep back.

    ``max_rise`` is an *absolute* allowance (allocs/event), not a
    fraction: a healthy pooled kernel sits near zero, where any relative
    threshold is numerically meaningless (0.003 → 0.006 is "100% worse"
    but still free).  Missing numbers on either side skip the gate.
    """
    current = entry.get("kernel_allocs_per_event")
    if current is None:
        return None
    # Not _previous_point: 0.0 allocs/event is a perfectly good (ideal!)
    # baseline, and that helper's truthiness test would skip it.
    previous = next(
        (
            e
            for e in reversed(history)
            if e.get("label") != entry["label"]
            and e.get("quick") == entry.get("quick")
            and e.get("kernel_allocs_per_event") is not None
        ),
        None,
    )
    if previous is None:
        return None
    baseline = previous["kernel_allocs_per_event"]
    rise = current - baseline
    if rise <= max_rise:
        return None
    return (
        f"allocation regression: {current:.4f} allocs/event is "
        f"{rise:.4f} above '{previous['label']}' ({baseline:.4f}); "
        f"gate allows +{max_rise:.4f}. Run `python -m repro profile "
        f"--alloc` to localise it (docs/profiling.md), or pass "
        f"--no-gate for a deliberate change."
    )


def render_table(history: list[dict]) -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.orchestration.sweeps import format_table

    def fmt(value: object, spec: str = "") -> str:
        if value is None:
            return "-"
        return format(value, spec) if spec else str(value)

    def fmt_parallel(e: dict) -> str:
        # Annotate with the measured host's core count: parallel ~= serial
        # on a 1-core container is expected pool overhead, not a
        # regression, and the annotation keeps that readable years later.
        sps = e.get("sweep_parallel_sps")
        if sps is None:
            return "-"
        cpus = e.get("sweep_cpu_count")
        if cpus is None:
            return str(sps)
        return f"{sps} ({cpus} cpu)"

    rows = [
        [
            e.get("label"),
            (e.get("timestamp") or "")[:10],
            fmt(e.get("kernel_events_per_sec_geomean"), ",.0f"),
            fmt(e.get("kernel_speedup_geomean")),
            fmt(e.get("kernel_allocs_per_event")),
            fmt(e.get("sweep_serial_sps")),
            fmt_parallel(e),
            fmt(e.get("check_states_per_sec"), ",.0f"),
        ]
        for e in history
    ]
    return format_table(
        ["PR label", "date", "kernel ev/s (geomean)",
         "vs baseline", "allocs/ev", "sweep serial/s", "sweep parallel/s",
         "check states/s"],
        rows,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--sweep", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_sweep.json")
    parser.add_argument("--check", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_check.json",
                        help="checker throughput JSON (bench_check.py); "
                             "optional — skipped when missing")
    parser.add_argument("--history", type=pathlib.Path,
                        default=DEFAULT_HISTORY)
    parser.add_argument("--label", default=None,
                        help="history label (default: the kernel "
                             "JSON's own label)")
    parser.add_argument("--table-out", type=pathlib.Path,
                        default=RESULTS_DIR / "history.txt")
    parser.add_argument("--max-sweep-drop", type=float, default=0.15,
                        help="fail when sweep serial scenarios/s drops "
                             "by more than this fraction vs the "
                             "previous same-mode point (default 0.15)")
    parser.add_argument("--max-kernel-drop", type=float, default=0.15,
                        help="fail when the kernel speedup geomean drops "
                             "by more than this fraction vs the "
                             "previous same-mode point (default 0.15)")
    parser.add_argument("--max-alloc-rise", type=float, default=0.25,
                        help="fail when kernel allocs/event rises by more "
                             "than this absolute amount vs the previous "
                             "same-mode point (default 0.25; absolute "
                             "because the pooled kernel sits near zero, "
                             "where fractions are meaningless)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record the point without enforcing the "
                             "trend gates")
    args = parser.parse_args(argv)

    try:
        kernel = json.loads(args.kernel.read_text(encoding="utf-8"))
        sweep = json.loads(args.sweep.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        print(f"missing bench JSON: {exc.filename}", file=sys.stderr)
        return 1
    check = (
        json.loads(args.check.read_text(encoding="utf-8"))
        if args.check.is_file()
        else None
    )

    entry = summarize(kernel, sweep, args.label, check)
    prior = load_history(args.history)
    history = append_entry(prior, entry)
    args.history.parent.mkdir(parents=True, exist_ok=True)
    args.history.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in history),
        encoding="utf-8",
    )
    table = render_table(history)
    text = f"\n=== Perf trajectory ({len(history)} PR point(s)) ===\n{table}\n"
    args.table_out.write_text(text, encoding="utf-8")
    print(text)
    print(f"history      : {args.history} ({len(history)} entr(ies))")

    if not args.no_gate:
        failures = [
            failure
            for failure in (
                check_sweep_trend(prior, entry, args.max_sweep_drop),
                check_kernel_trend(prior, entry, args.max_kernel_drop),
                check_alloc_trend(prior, entry, args.max_alloc_rise),
            )
            if failure is not None
        ]
        if failures:
            for failure in failures:
                print(f"TREND GATE FAILED: {failure}", file=sys.stderr)
            return 2
        print(f"trend gate   : OK (max sweep drop "
              f"{args.max_sweep_drop:.0%}, max kernel drop "
              f"{args.max_kernel_drop:.0%}, max alloc rise "
              f"+{args.max_alloc_rise})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
