"""Kernel events/sec microbenchmark — the fast-path perf trajectory.

Measures the simulation kernel's hot paths in isolation and end to end:

* ``cascade`` — same-instant ``call_soon`` chains, the dominant event
  shape under the paper's zero-local-processing model (Section 2.1);
* ``timers`` — heap-scheduled future events (the slow tier);
* ``cancel_churn`` — mass-cancelled timers, exercising lazy
  cancelled-entry handling in the scheduler;
* ``flood`` — network send→deliver ping-pong with **no** instrumentation
  attached (the zero-cost emit path);
* ``flood_counted`` — the same flood with a counting send/deliver sink
  attached, bounding the cost of *enabled* instrumentation;
* ``scenario`` — full ``run_scenario`` executions, the unit of work
  every sweep backend dispatches.

Running the script writes a machine-readable JSON report (default
``BENCH_kernel.json`` at the repo root) so each PR records its point on
the throughput trajectory.  When a baseline file exists (by default
``benchmarks/results/BENCH_kernel_baseline.json``, captured on the
pre-refactor kernel), per-metric and geometric-mean speedups are
included — the kernel-refactor acceptance bar is a >= 1.4x geomean.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_events.py [--quick]
        [--out PATH] [--baseline PATH] [--label TEXT]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys
import time
from typing import Any, Callable

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.net.network import Network  # noqa: E402
from repro.net.timing import Asynchronous, ConstantDelay  # noqa: E402
from repro.orchestration.matrix import ScenarioSpec, run_scenario  # noqa: E402
from repro.sim.loop import Simulator  # noqa: E402
from repro.sim.random import RngRegistry  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_kernel_baseline.json"

#: Best-of-N timing repeats (first repeat also warms allocator caches).
#: Best-of — not mean — because on shared/1-CPU containers the noise is
#: strictly additive (steal time, neighbours), so the minimum is the
#: closest observable to the true cost.
REPEATS = 5


def _time_best(fn: Callable[[], int]) -> tuple[int, float]:
    """Run ``fn`` REPEATS times; return (events, best wall seconds)."""
    best = math.inf
    events = 0
    for _ in range(REPEATS):
        started = time.perf_counter()
        events = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return events, best


def bench_cascade(n_events: int) -> Callable[[], int]:
    def run() -> int:
        sim = Simulator()
        remaining = [n_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_soon(tick)

        sim.call_soon(tick)
        sim.run()
        return sim.events_processed

    return run


def bench_timers(n_events: int) -> Callable[[], int]:
    def run() -> int:
        sim = Simulator()
        # A deterministic pseudo-random delay pattern: exercises real
        # heap reordering without an RNG in the timed region.
        for i in range(n_events):
            sim.call_at(float((i * 7919) % 104729), _noop)
        sim.run()
        return sim.events_processed

    return run


def bench_cancel_churn(n_events: int) -> Callable[[], int]:
    def run() -> int:
        sim = Simulator()
        handles = [
            sim.call_at(float(1 + (i * 7919) % 104729), _noop)
            for i in range(n_events)
        ]
        # Cancel 80%: a protocol run cancels most of its round timers.
        for i, handle in enumerate(handles):
            if i % 5 != 0:
                handle.cancel()
        sim.run()
        return n_events  # scheduled + cancelled work is the workload

    return run


def _noop() -> None:
    pass


def _build_flood(n_messages: int, counted: bool):
    def run() -> int:
        sim = Simulator()
        # recycle=True matches the consensus fast path (runner.py): the
        # counted variant's hooks keep every message alive anyway (the
        # never-recycle-observed contract), so flood vs flood_counted
        # also bounds what enabling instrumentation costs in allocation.
        network = Network(
            sim, 8,
            default_timing=Asynchronous(ConstantDelay(1.0)),
            rng=RngRegistry(0),
            recycle=True,
        )
        if counted:
            seen = [0]
            network.add_hook(lambda kind, message, now: seen.__setitem__(0, seen[0] + 1))
        budget = [n_messages]

        def on_message(message) -> None:
            if budget[0] > 0:
                budget[0] -= 1
                network.send(message.dest, 1 + message.uid % 8, "PING", None)

        for pid in range(1, 9):
            network.register_process(pid, on_message)
        budget[0] -= 8
        for pid in range(1, 9):
            network.send(pid, 1 + pid % 8, "PING", None)
        sim.run()
        return sim.events_processed

    return run


def bench_scenario(n_runs: int) -> Callable[[], int]:
    spec = ScenarioSpec(
        n=4, t=1, topology="single_bisource", adversary="two_faced:evil",
        num_values=2, seed=1234,
    )
    def run() -> int:
        events = 0
        for _ in range(n_runs):
            outcome = run_scenario(spec)
            assert outcome.decided and outcome.invariants_ok
            events += outcome.events_processed
        return events

    return run


def collect(quick: bool) -> dict[str, dict[str, float]]:
    scale = 0.1 if quick else 1.0
    sizes = {
        "cascade": int(200_000 * scale),
        "timers": int(100_000 * scale),
        "cancel_churn": int(100_000 * scale),
        "flood": int(60_000 * scale),
        "flood_counted": int(60_000 * scale),
        "scenario": max(3, int(40 * scale)),
    }
    builders: dict[str, Callable[[], int]] = {
        "cascade": bench_cascade(sizes["cascade"]),
        "timers": bench_timers(sizes["timers"]),
        "cancel_churn": bench_cancel_churn(sizes["cancel_churn"]),
        "flood": _build_flood(sizes["flood"], counted=False),
        "flood_counted": _build_flood(sizes["flood_counted"], counted=True),
        "scenario": bench_scenario(sizes["scenario"]),
    }
    metrics: dict[str, dict[str, float]] = {}
    for name, fn in builders.items():
        events, seconds = _time_best(fn)
        metrics[name] = {
            "events": events,
            "seconds": round(seconds, 6),
            "events_per_sec": round(events / seconds, 1) if seconds else 0.0,
        }
        print(f"{name:>14}: {events:>9} events  {seconds:8.4f}s  "
              f"{metrics[name]['events_per_sec']:>12,.0f} ev/s")
    return metrics


def collect_alloc(quick: bool) -> dict[str, dict[str, float]]:
    """Kernel-object allocations per event, from the pool counters.

    The freelist counters (:mod:`repro.sim.pool`) are exact and
    gc-independent — unlike net ``sys.getallocatedblocks()`` deltas,
    which miss churn that refcounting frees promptly — so they are the
    number the CI gate pins.  ``allocs_per_event`` counts handle +
    message *constructions* (pool misses) per simulator event; a warm
    freelist drives it toward zero.
    """
    scale = 0.1 if quick else 1.0
    out: dict[str, dict[str, float]] = {}

    # Flood shape: the send→deliver ping-pong of the flood metric.
    n_messages = int(60_000 * scale)
    sim = Simulator()
    network = Network(
        sim, 8,
        default_timing=Asynchronous(ConstantDelay(1.0)),
        rng=RngRegistry(0),
        recycle=True,
    )
    budget = [n_messages]

    def on_message(message) -> None:
        if budget[0] > 0:
            budget[0] -= 1
            network.send(message.dest, 1 + message.uid % 8, "PING", None)

    for pid in range(1, 9):
        network.register_process(pid, on_message)
    budget[0] -= 8
    for pid in range(1, 9):
        network.send(pid, 1 + pid % 8, "PING", None)
    sim.run()
    pools = sim.pools
    created = pools.created_total()
    reused = pools.reused_total()
    out["flood"] = {
        "events": sim.events_processed,
        "created": created,
        "reused": reused,
        "allocs_per_event": round(created / sim.events_processed, 4),
    }

    # Scenario shape: full runs through a shared KernelContext, whose
    # pools stay warm across runs exactly like a sweep worker's.
    from repro.orchestration.kernel import KernelContext
    from repro.orchestration.matrix import run_scenario as run_one

    context = KernelContext()
    spec = ScenarioSpec(
        n=4, t=1, topology="single_bisource", adversary="two_faced:evil",
        num_values=2, seed=1234,
    )
    n_runs = max(3, int(40 * scale))
    events = 0
    for _ in range(n_runs):
        outcome = run_one(spec, context=context)
        events += outcome.events_processed
    created = context.pools.created_total()
    reused = context.pools.reused_total()
    out["scenario"] = {
        "events": events,
        "created": created,
        "reused": reused,
        "allocs_per_event": round(created / events, 4) if events else 0.0,
    }
    for name, stats in out.items():
        print(f"{name:>14}: {stats['allocs_per_event']:.4f} allocs/event  "
              f"({stats['created']:,.0f} created, "
              f"{stats['reused']:,.0f} reused)")
    return out


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--label", default="kernel")
    parser.add_argument("--quick", action="store_true",
                        help="~10x smaller workloads (CI smoke)")
    args = parser.parse_args(argv)

    metrics = collect(args.quick)
    print()
    alloc = collect_alloc(args.quick)
    payload: dict[str, Any] = {
        "bench": "kernel_events",
        "label": args.label,
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": metrics,
        "alloc": alloc,
    }
    if args.baseline.is_file():
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        speedups = {}
        for name, stats in metrics.items():
            base = baseline.get("metrics", {}).get(name)
            if base and base.get("events_per_sec"):
                speedups[name] = round(
                    stats["events_per_sec"] / base["events_per_sec"], 3
                )
        payload["baseline_label"] = baseline.get("label")
        payload["speedup_vs_baseline"] = speedups
        payload["speedup_geomean"] = round(geomean(list(speedups.values())), 3)
        print(f"\nspeedup vs {baseline.get('label')}: "
              + ", ".join(f"{k}={v}x" for k, v in speedups.items()))
        print(f"geomean: {payload['speedup_geomean']}x")
    # Zero-sink overhead: enabled instrumentation cost, for the record.
    flood, counted = metrics.get("flood"), metrics.get("flood_counted")
    if flood and counted and counted["events_per_sec"]:
        payload["instrumentation_overhead"] = round(
            flood["events_per_sec"] / counted["events_per_sec"], 3
        )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
