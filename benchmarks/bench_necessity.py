"""E10 — the necessity direction: a ⟨t⟩bisource is not enough.

The paper's optimality argument: the ✸⟨t+1⟩bisource condition was shown
*necessary* in a strictly stronger model (Baldellon et al., ICDCN 2011),
hence also in this one.  A simulation cannot prove an impossibility, but
it can exhibit the mechanism: with only a ⟨t⟩bisource (one timely
output channel fewer), the Lemma 3 counting argument breaks — a relay
quorum of ``n - t`` messages need no longer contain any member of the
bisource's timely output set — and the legal worst-case schedule keeps
the EA object from ever converging, round after round.

Same harness as E8 (persistent aux split, EA_COORD starvation, ⊥-relay
quorum poisoning); the only difference between the two columns is one
timely channel.
"""

import pytest

from repro.core.eventual_agreement import EventualAgreement
from repro.core.values import BOT
from repro.net import (
    Asynchronous,
    EventuallyTimely,
    ExponentialDelay,
    PerTagTiming,
    ScriptedDelay,
    Topology,
)
from repro.sim import gather

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).parents[1]))
from tests.helpers import build_system  # noqa: E402

N, T = 7, 2
CORRECT = set(range(1, 6))
ROUNDS = 12


class SplitCB:
    """CB double pinning a persistent aux split."""

    def __init__(self, process, rb, n, t, instance, selector=None):
        self.process = process

    async def cb_broadcast(self, value):
        return "a" if self.process.pid % 2 == 1 else "b"

    def in_valid(self, value):
        return value in ("a", "b")

    @property
    def cb_valid(self):
        return ("a", "b")


class AdaptiveStarver(Asynchronous):
    """The adaptive worst-case scheduler for asynchronous channels.

    An asynchronous channel may delay *each message* by any finite
    amount, chosen with full knowledge of its content (the standard
    adaptive network adversary).  This one delivers ⊥ relays and regular
    traffic quickly but starves EA_COORD and every *championed* (non-⊥)
    EA_RELAY — exactly the schedule that forces convergence to flow
    through the bisource's timely channels.
    """

    def __init__(self) -> None:
        super().__init__(ExponentialDelay(mean=4.0))
        self._slow = ScriptedDelay(
            lambda send, rng: 100.0 + 2.0 * send, "starved"
        )

    def delivery_time_for(self, message, send_time, rng):
        tag = getattr(message, "tag", "")
        payload = getattr(message, "payload", None)
        starve = tag == "EA_COORD" or (
            tag == "EA_RELAY"
            and isinstance(payload, tuple)
            and len(payload) == 2
            and payload[1] is not BOT
        )
        if starve:
            return send_time + self._slow.sample(send_time, rng)
        return super().delivery_time(send_time, rng)

    def describe(self) -> str:
        return "AdaptiveStarver(coord + championed relays)"


def bisource_topology(out_width):
    """p1 with t timely in-channels and ``out_width - 1`` timely
    out-channels (out_width counts p1 itself); every asynchronous
    channel runs the adaptive starver.

    With ``out_width = t+1`` a relay quorum of ``n - t`` *must* contain
    a member of ``X+`` (only ``n - (t+1) < n - t`` processes are
    outside it), whose championed relay — slow but finite — eventually
    completes the quorum carrying the witness.  With ``out_width = t``
    the quorum fills with fast ⊥ relays and the witness never makes it.
    """
    overrides = {}
    x_minus = [2, 3][:T]
    for p in x_minus:
        overrides[(p, 1)] = EventuallyTimely(tau=0.0, delta=1.0)
    x_plus = [4, 5][: out_width - 1]
    for q in x_plus:
        overrides[(1, q)] = EventuallyTimely(tau=0.0, delta=1.0)
    return Topology(
        n=N, overrides=overrides, default=AdaptiveStarver(),
        description=f"<{out_width}>-wide output bisource at p1, adaptive starver",
    )


def convergence_profile(out_width, seed):
    system = build_system(N, T, topology=bisource_topology(out_width),
                          seed=seed, byzantine=(6, 7))
    for byz in system.byzantine.values():
        for r in range(1, ROUNDS + 1):
            byz.broadcast_raw("EA_RELAY", (r, BOT))
    eas = {
        pid: EventualAgreement(proc, system.rbs[pid], N, T, m=2,
                               cb_factory=SplitCB)
        for pid, proc in system.processes.items()
    }
    proposals = {pid: ("a" if pid % 2 == 1 else "b") for pid in eas}
    converged = []
    for r in range(1, ROUNDS + 1):
        tasks = [
            system.processes[pid].create_task(eas[pid].propose(r, proposals[pid]))
            for pid in sorted(eas)
        ]
        results = system.run(gather(system.sim, tasks), max_time=50_000_000.0)
        converged.append(len(set(results)) == 1)
    return converged


SEEDS = (1, 2, 3, 5, 8)


def test_e10_table(capsys):
    full = [sum(convergence_profile(T + 1, seed)) for seed in SEEDS]
    narrow = [sum(convergence_profile(T, seed)) for seed in SEEDS]
    rows = [
        [f"<{T + 1}>bisource (the paper's assumption)",
         f"{sum(full)}/{len(SEEDS) * ROUNDS}",
         "guaranteed (Lemma 3)"],
        [f"<{T}>bisource (one output channel fewer)",
         f"{sum(narrow)}/{len(SEEDS) * ROUNDS}",
         "not guaranteed (counting argument fails)"],
    ]
    # Wide: converges in every bisource-coordinated round (>= 1 per
    # seed); narrow: the witness never reaches a quorum in time.
    assert sum(full) >= len(SEEDS)
    assert sum(narrow) == 0, f"narrow converged: {narrow}"
    report(
        "necessity",
        "E10 — necessity flavour: one timely channel below the threshold "
        f"(n={N}, t={T}, {ROUNDS} rounds x {len(SEEDS)} seeds, worst-case "
        "schedule)",
        ["synchrony available", "convergence rounds", "status"],
        rows,
        notes=("With |X+| = t+1, any n-t relays include an X+ member "
               "(pigeonhole over n - (t+1) < n - t outsiders); with "
               "|X+| = t the adversary fills every quorum with ⊥."),
        capsys=capsys,
    )


@pytest.mark.benchmark(group="necessity")
def test_e10_benchmark_narrow(benchmark):
    result = benchmark(convergence_profile, T, 1)
    assert isinstance(result, list)
