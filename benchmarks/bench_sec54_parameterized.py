"""E6 — Section 5.4: the tuning parameter k.

Strengthening the synchrony assumption to a ``<t+1+k>bisource`` widens
the witness sets to ``n - t + k``, shrinking the number of witness sets
to ``beta = C(n, n-t+k)`` and the worst-case horizon to ``beta * n``
rounds; ``k = t`` gives the optimal ``n``.

Regenerates the k-sweep: analytic beta/bound and the measured EA
convergence round under the adversarial coordinator-starving schedule
(where the coordinator machinery, not schedule luck, must do the work).
"""

import pytest

from repro.analysis.combinatorics import beta, first_good_round, worst_case_round_bound
from repro.core.eventual_agreement import EventualAgreement
from repro.core.values import BOT
from repro.net import (
    Asynchronous,
    ExponentialDelay,
    PerTagTiming,
    ScriptedDelay,
    single_bisource,
)
from repro.sim import gather

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402

sys.path.insert(0, str(pathlib.Path(__file__).parents[1]))
from tests.helpers import build_system  # noqa: E402


class SplitCB:
    """CB double pinning a persistent aux split (see DESIGN.md E6/E8)."""

    def __init__(self, process, rb, n, t, instance, selector=None):
        self.process = process

    async def cb_broadcast(self, value):
        return "a" if self.process.pid % 2 == 1 else "b"

    def in_valid(self, value):
        return value in ("a", "b")

    @property
    def cb_valid(self):
        return ("a", "b")


def starved_topology(n, t, k):
    # Byzantine pids are LOW (1..t): the all-correct witness set is then
    # the lexicographically last combination, which maximises the k=0
    # guaranteed horizon and makes the k trade-off visible.
    correct = set(range(t + 1, n + 1))
    topo = single_bisource(n, t, bisource=t + 1, correct=correct, delta=1.0, k=k)
    slow_coord = Asynchronous(
        ScriptedDelay(lambda send, rng: 100.0 + 2.0 * send, "coord-starved")
    )
    topo.default = PerTagTiming(
        base=Asynchronous(ExponentialDelay(mean=4.0)),
        overrides={"EA_COORD": slow_coord},
    )
    return topo


def measure_convergence(n, t, k, seed, rounds=24):
    topo = starved_topology(n, t, k)
    byzantine = tuple(range(1, t + 1))
    system = build_system(n, t, topology=topo, seed=seed, byzantine=byzantine)
    for byz in system.byzantine.values():
        for r in range(1, rounds + 1):
            byz.broadcast_raw("EA_RELAY", (r, BOT))
    eas = {
        pid: EventualAgreement(proc, system.rbs[pid], n, t, m=2, k=k,
                               cb_factory=SplitCB)
        for pid, proc in system.processes.items()
    }
    proposals = {pid: ("a" if pid % 2 == 1 else "b") for pid in eas}
    for r in range(1, rounds + 1):
        tasks = [
            system.processes[pid].create_task(eas[pid].propose(r, proposals[pid]))
            for pid in sorted(eas)
        ]
        results = system.run(gather(system.sim, tasks), max_time=10_000_000.0)
        if len(set(results)) == 1:
            return r
    return None


def test_e6_table(capsys):
    n, t = 7, 2
    correct = set(range(t + 1, n + 1))
    rows = []
    analytic_rounds = []
    for k in (0, 1, 2):
        bound = worst_case_round_bound(n, t, k)
        topo = starved_topology(n, t, k)
        analytic = first_good_round(n, t, t + 1, topo.x_plus, correct, k=k)
        analytic_rounds.append(analytic)
        measured = [measure_convergence(n, t, k, seed) for seed in (1, 2, 3)]
        observed = [m for m in measured if m is not None]
        assert observed, f"k={k} never converged within the horizon"
        rows.append([
            k, t + 1 + k, beta(n, t, k), bound, analytic,
            f"{min(observed)}..{max(observed)}",
        ])
    # The guaranteed horizon shrinks strictly with k in this placement.
    assert analytic_rounds == sorted(analytic_rounds, reverse=True)
    assert analytic_rounds[0] > analytic_rounds[-1]
    bounds = [worst_case_round_bound(n, t, k) for k in (0, 1, 2)]
    assert bounds == sorted(bounds, reverse=True)
    assert bounds[-1] == n  # k = t gives the optimal n-round horizon
    report(
        "sec54_parameterized",
        "E6 / Section 5.4 — the k trade-off (n=7, t=2, coordinator-starved "
        "schedule)",
        ["k", "bisource width t+1+k", "beta", "bound beta*n",
         "analytic first good round", "measured convergence round (seeds)"],
        rows,
        notes=("Claim: paying for a stronger <t+1+k>bisource buys a "
               "beta*n = C(n, n-t+k)*n round horizon; k=t yields n."),
        capsys=capsys,
    )


@pytest.mark.benchmark(group="sec54-parameterized")
@pytest.mark.parametrize("k", [0, 2])
def test_e6_benchmark_convergence(benchmark, k):
    result = benchmark(measure_convergence, 7, 2, k, 1)
    assert result is not None
