"""E5 — Section 5.4: the alpha*n worst-case round bound.

With a ``<t+1>bisource`` *from the very beginning* the only uncertainty
is the bisource's identity and channel sets; the algorithm converges
within ``alpha * n`` rounds, ``alpha = C(n, n-t)``.

Regenerates, per (n, t):

* the analytic worst case over every (bisource, X+) placement — the
  latest first-good-round, which must stay within ``alpha * n``;
* a measured run at the analytically worst placement, checking the
  decision round never exceeds the bound.
"""

import itertools

import pytest

from repro import RunConfig, run_consensus, standard_proposals
from repro.adversary import crash
from repro.analysis.combinatorics import (
    alpha,
    first_good_round,
    worst_case_round_bound,
)
from repro.net import single_bisource

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402


def analytic_worst_placement(n, t, correct=None):
    """Maximize the first good round over bisource identity and X+."""
    if correct is None:
        correct = set(range(1, n - t + 1))
    worst = (0, None, None)
    for bisource in correct:
        others = sorted(set(correct) - {bisource})
        for extra in itertools.combinations(others, t):
            x_plus = frozenset({bisource, *extra})
            r = first_good_round(n, t, bisource, x_plus, correct)
            if r > worst[0]:
                worst = (r, bisource, x_plus)
    return worst


def run_worst_case(n, t, bisource, x_plus, seed):
    correct = set(range(1, n - t + 1))
    # x_minus auto-chosen; x_plus pinned to the analytically worst placement.
    topo = single_bisource(
        n, t, bisource=bisource, correct=correct, tau=0.0, delta=1.0,
        x_plus=x_plus,
    )
    byz = {pid: crash() for pid in range(n - t + 1, n + 1)}
    proposals = standard_proposals(correct, ["a", "b"])
    return run_consensus(
        RunConfig(n=n, t=t, proposals=proposals, adversaries=byz,
                  topology=topo, seed=seed, max_time=2_000_000.0)
    )


SIZES = [(4, 1), (5, 1), (7, 2)]


def test_e5_table(capsys):
    rows = []
    for n, t in SIZES:
        bound = worst_case_round_bound(n, t)
        for label, byz in (
            ("byz high", set(range(n - t + 1, n + 1))),
            ("byz low", set(range(1, t + 1))),
        ):
            correct = set(range(1, n + 1)) - byz
            worst_round, bisource, x_plus = analytic_worst_placement(
                n, t, correct=correct
            )
            assert worst_round <= bound
            if label == "byz high":
                measured = max(
                    run_worst_case(n, t, bisource, x_plus, seed).max_round
                    for seed in (1, 2)
                )
                assert measured <= bound, (
                    f"measured {measured} exceeds alpha*n = {bound} for "
                    f"n={n}, t={t}"
                )
                measured_cell = measured
            else:
                measured_cell = "-"
            rows.append([
                n, t, label, alpha(n, t), bound, worst_round,
                f"p{bisource}, X+={sorted(x_plus)}", measured_cell,
            ])
    report(
        "sec54_round_bounds",
        "E5 / Section 5.4 — worst-case round bound alpha*n "
        "(<t+1>bisource from the start)",
        ["n", "t", "fault placement", "alpha", "bound alpha*n",
         "analytic worst good round", "worst placement",
         "measured max rounds"],
        rows,
        notes=("Claim: with a bisource from the very beginning the "
               "algorithm terminates within alpha*n rounds, whatever the "
               "bisource placement.  Low-pid faults push the guaranteed "
               "good round towards the alpha*n bound (the witness-set "
               "cycle must reach the all-correct combination); measured "
               "rounds stay far below because convergence also happens "
               "opportunistically."),
        capsys=capsys,
    )


def test_e5_low_faults_approach_the_bound():
    # With byzantine pids 1..t, the only all-correct witness set is the
    # lexicographically last combination, so the guaranteed good round
    # lands in the final block of the alpha*n cycle.
    n, t = 7, 2
    correct = set(range(3, 8))
    worst_round, _, _ = analytic_worst_placement(n, t, correct=correct)
    assert worst_round > worst_case_round_bound(n, t) - n


@pytest.mark.benchmark(group="sec54-bounds")
def test_e5_benchmark_worst_case_n4(benchmark):
    worst_round, bisource, x_plus = analytic_worst_placement(4, 1)

    def run_once():
        return run_worst_case(4, 1, bisource, x_plus, seed=1)

    result = benchmark(run_once)
    assert result.all_decided
