"""E11 — sweep-engine throughput: scenarios/sec, serial vs parallel.

Runs one 64-scenario matrix through :func:`sweep_serial` and through
:func:`sweep_parallel` at 4 workers, reports scenarios/sec for each, and
verifies that the parallel path is (a) bit-identical to the serial one
and (b) actually faster when the hardware can deliver parallelism.

The speedup assertion is gated on the *schedulable* CPU count: a
single-core container cannot exhibit multi-process speedup no matter how
good the engine is, so there the benchmark only locks in equivalence and
reports the measured ratio.

Running the file as a script records the sweep-throughput point of the
perf trajectory as machine-readable JSON (default ``BENCH_sweep.json``
at the repo root)::

    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py [--quick]
"""

import sys, pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.orchestration.matrix import ScenarioMatrix
from repro.orchestration.parallel import (
    default_workers,
    sweep_parallel,
    sweep_serial,
)

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402

WORKERS = 4


def throughput_matrix() -> ScenarioMatrix:
    """2 sizes x 2 topologies x 4 adversaries x 2 diversities x 2 seeds = 64."""
    matrix = ScenarioMatrix(
        sizes=[(4, 1), (7, 2)],
        topologies=["single_bisource", "fully_timely"],
        adversaries=["crash", "two_faced:evil", "mute_coord", "collude:evil"],
        value_counts=[1, 2],
        seeds=range(2),
    )
    assert len(matrix) == 64
    return matrix


def identical(a, b) -> bool:
    return all(
        x.spec == y.spec and x.decisions == y.decisions and x.rounds == y.rounds
        for x, y in zip(a.outcomes, b.outcomes)
    )


def test_throughput_serial_vs_parallel(capsys):
    matrix = throughput_matrix()
    serial = sweep_serial(matrix)
    parallel = sweep_parallel(matrix, workers=WORKERS)
    assert len(serial.outcomes) == len(parallel.outcomes) == 64
    assert identical(serial, parallel), "parallel sweep must be bit-identical"
    assert serial.report.decide_rate == 1.0 and serial.report.all_safe
    speedup = (
        parallel.scenarios_per_second / serial.scenarios_per_second
        if serial.scenarios_per_second else 0.0
    )
    cores = default_workers()
    report(
        "sweep_throughput",
        f"E11 — sweep-engine throughput (64 scenarios, {cores} core(s))",
        ["executor", "workers", "wall s", "scenarios/s"],
        [
            ["serial", 1, f"{serial.elapsed:.2f}",
             f"{serial.scenarios_per_second:.1f}"],
            ["parallel", WORKERS, f"{parallel.elapsed:.2f}",
             f"{parallel.scenarios_per_second:.1f}"],
        ],
        notes=(f"speedup = {speedup:.2f}x at {WORKERS} workers; results "
               "bit-identical to serial (per-scenario seeds are derived "
               "structurally, not from execution order)"),
        capsys=capsys,
    )
    if cores >= WORKERS:
        assert speedup >= 2.0, f"expected >=2x at {WORKERS} workers, got {speedup:.2f}x"
    elif cores >= 2:
        assert speedup >= 1.2, f"expected >=1.2x on {cores} cores, got {speedup:.2f}x"


@pytest.mark.benchmark(group="sweep-throughput")
def test_benchmark_serial_chunk(benchmark):
    matrix = ScenarioMatrix(
        sizes=[(4, 1)],
        adversaries=["crash", "two_faced:evil"],
        value_counts=[2],
        seeds=range(2),
    )
    result = benchmark(sweep_serial, matrix)
    assert result.report.decide_rate == 1.0


def main(argv=None) -> int:
    """Record the sweep-throughput trajectory point as JSON."""
    import argparse
    import json
    import os
    import platform
    import time

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path,
                        default=repo_root / "BENCH_sweep.json")
    parser.add_argument("--quick", action="store_true",
                        help="quarter-size matrix (CI smoke)")
    args = parser.parse_args(argv)

    matrix = throughput_matrix() if not args.quick else ScenarioMatrix(
        sizes=[(4, 1)],
        topologies=["single_bisource", "fully_timely"],
        adversaries=["crash", "two_faced:evil"],
        value_counts=[2],
        seeds=range(2),
    )
    workers = default_workers()
    # Best-of-N per executor (same policy as bench_kernel_events): one
    # pass is ±5% scheduler noise on a small container, which is larger
    # than the regressions the trend gate is meant to catch.
    repeats = 1 if args.quick else 3
    serial = min((sweep_serial(matrix) for _ in range(repeats)),
                 key=lambda r: r.elapsed)
    # Cold pass spawns the shared pool (and pays for it); the warm passes
    # reuse it, which is the steady state every sweep after the first
    # sees — fleet runs (run_claims) share one pool across all units.
    cold = sweep_parallel(matrix, workers=workers)
    parallel = min((sweep_parallel(matrix, workers=workers)
                    for _ in range(repeats)), key=lambda r: r.elapsed)
    assert identical(serial, cold), "parallel sweep must be bit-identical"
    assert identical(serial, parallel), "parallel sweep must be bit-identical"
    scenarios = len(serial.outcomes)
    # Wall time the pooled sweep spends beyond perfectly-scaled serial
    # execution — transport, chunk round-trips, parent-side decode.  On
    # one core (inline dispatch) this is pure noise around zero.
    overhead = max(0.0, parallel.elapsed - serial.elapsed / max(1, workers))
    payload = {
        "bench": "sweep_throughput",
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
        "workers": workers,
        # Host core count, so a future reader of history.jsonl can tell
        # "parallel ~= serial" on a 1-core box from a real regression.
        "cpu_count": os.cpu_count(),
        "metrics": {
            "serial": {
                "wall_seconds": round(serial.elapsed, 4),
                "scenarios_per_sec": round(serial.scenarios_per_second, 2),
            },
            "parallel": {
                "wall_seconds": round(parallel.elapsed, 4),
                "scenarios_per_sec": round(parallel.scenarios_per_second, 2),
                "cold_wall_seconds": round(cold.elapsed, 4),
            },
        },
        "pool_startup_seconds": round(cold.pool_startup_seconds, 4),
        "dispatch_overhead_per_scenario": round(overhead / scenarios, 6),
        "parallel_speedup": round(
            parallel.scenarios_per_second / serial.scenarios_per_second, 3
        ) if serial.scenarios_per_second else 0.0,
        "bit_identical": True,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"serial   : {payload['metrics']['serial']['scenarios_per_sec']}/s")
    print(f"parallel : {payload['metrics']['parallel']['scenarios_per_sec']}/s "
          f"({workers} workers)")
    print(f"pool     : {payload['pool_startup_seconds'] * 1000.0:.1f}ms "
          f"startup, {payload['dispatch_overhead_per_scenario'] * 1e6:.0f}us "
          f"dispatch overhead/scenario (warm)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
