"""E9 — the Section 7 ⊥-default-validity variant.

Regenerates the variant's behavioural envelope:

* unanimity among correct processes never yields ⊥;
* arbitrary (feasibility-violating) proposal profiles still terminate,
  deciding either a correct proposal or ⊥;
* a value proposed only by Byzantine processes is never decided.
"""

import pytest

from repro import BOT, RunConfig, run_consensus
from repro.adversary import crash, noise, two_faced

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report  # noqa: E402


def run_bot(n, t, proposals, adversaries, seed):
    return run_consensus(
        RunConfig(n=n, t=t, proposals=proposals, adversaries=adversaries,
                  variant="bot", seed=seed, max_time=1_000_000.0)
    )


SEEDS = (1, 2, 3, 5, 8, 13)


def profile_outcomes(n, t, proposals, adversaries):
    decided = []
    for seed in SEEDS:
        result = run_bot(n, t, dict(proposals), dict(adversaries), seed)
        assert result.all_decided
        decided.append(result.decided_value)
    return decided


def test_e9_table(capsys):
    rows = []
    # Unanimous: never ⊥.
    unanimous = profile_outcomes(
        4, 1, {1: "v", 2: "v", 3: "v"}, {4: noise(0.4)}
    )
    assert all(v == "v" for v in unanimous)
    rows.append(["unanimous (m=1)", "n=4 t=1", "noise",
                 f"{sum(v is BOT for v in unanimous)}/{len(SEEDS)}",
                 "always 'v'"])
    # Feasible split: ⊥ possible but proposals admissible too.
    split = profile_outcomes(
        4, 1, {1: "a", 2: "a", 3: "b"}, {4: two_faced("evil")}
    )
    assert all(v is BOT or v in {"a", "b"} for v in split)
    assert all(v != "evil" for v in split)
    rows.append(["split (m=2)", "n=4 t=1", "two-faced",
                 f"{sum(v is BOT for v in split)}/{len(SEEDS)}",
                 "'a'/'b'/⊥, never 'evil'"])
    # Infeasible profile (m=3 > m_max=2): the classic algorithm cannot
    # even be configured; the variant terminates.
    distinct = profile_outcomes(
        4, 1, {1: "x", 2: "y", 3: "z"}, {4: crash()}
    )
    assert all(v is BOT or v in {"x", "y", "z"} for v in distinct)
    rows.append(["all distinct (m=3 > m_max)", "n=4 t=1", "crash",
                 f"{sum(v is BOT for v in distinct)}/{len(SEEDS)}",
                 "terminates despite infeasibility"])
    # Larger system, many distinct values.
    wide = profile_outcomes(
        7, 2, {1: "a", 2: "b", 3: "c", 4: "d", 5: "e"},
        {6: crash(), 7: crash()},
    )
    rows.append(["five distinct (m=5)", "n=7 t=2", "crash x2",
                 f"{sum(v is BOT for v in wide)}/{len(SEEDS)}",
                 "terminates despite infeasibility"])
    report(
        "variant_bot",
        "E9 / Section 7 — the ⊥-default-validity variant",
        ["profile", "system", "adversary", "⊥ decisions", "notes"],
        rows,
        notes=("Claims: unanimity never yields ⊥; arbitrary value "
               "diversity terminates; Byzantine-only values are never "
               "decided."),
        capsys=capsys,
    )


def test_e9_unanimity_never_bot_wide_sweep():
    for seed in range(10):
        result = run_bot(4, 1, {1: "v", 2: "v", 3: "v"},
                         {4: two_faced("evil")}, seed)
        assert result.decided_value == "v"


@pytest.mark.benchmark(group="variant-bot")
def test_e9_benchmark_infeasible_profile(benchmark):
    result = benchmark(run_bot, 4, 1, {1: "x", 2: "y", 3: "z"},
                       {4: crash()}, 1)
    assert result.all_decided
