"""E9 — the Section 7 ⊥-default-validity variant.

Regenerates the variant's behavioural envelope:

* unanimity among correct processes never yields ⊥;
* arbitrary (feasibility-violating) proposal profiles still terminate,
  deciding either a correct proposal or ⊥;
* a value proposed only by Byzantine processes is never decided.

Each profile row is one scenario-matrix cell (the ``bot`` variant
disables value-diversity clamping, so infeasible m are expressible) and
the whole table regenerates through the parallel sweep engine.
"""

import pytest

from repro.orchestration.matrix import ScenarioMatrix, run_scenario

import sys, pathlib
sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _common import report, run_matrix  # noqa: E402


SEEDS = (1, 2, 3, 5, 8, 13)
BOT_REPR = "⊥"  # ScenarioOutcome values are repr-rendered; repr(BOT) is ⊥


def bot_matrix(n, t, num_values, adversary, seeds=SEEDS) -> ScenarioMatrix:
    return ScenarioMatrix(
        sizes=[(n, t)],
        topologies=["single_bisource"],
        adversaries=[adversary],
        value_counts=[num_values],
        seeds=seeds,
        variant="bot",
    )


def profile_outcomes(n, t, num_values, adversary):
    sweep = run_matrix(bot_matrix(n, t, num_values, adversary))
    assert sweep.report.decide_rate == 1.0
    assert sweep.report.all_safe
    return [o.decided_value for o in sweep.outcomes]


def bot_count(decided):
    return sum(v == BOT_REPR for v in decided)


def test_e9_table(capsys):
    rows = []
    # Unanimous: never ⊥.
    unanimous = profile_outcomes(4, 1, 1, "noise:0.4")
    assert all(v == "'v0'" for v in unanimous)
    rows.append(["unanimous (m=1)", "n=4 t=1", "noise",
                 f"{bot_count(unanimous)}/{len(SEEDS)}",
                 "always 'v0'"])
    # Feasible split: ⊥ possible but proposals admissible too.
    split = profile_outcomes(4, 1, 2, "two_faced:evil")
    assert all(v in {"'v0'", "'v1'", BOT_REPR} for v in split)
    assert all(v != "'evil'" for v in split)
    rows.append(["split (m=2)", "n=4 t=1", "two-faced",
                 f"{bot_count(split)}/{len(SEEDS)}",
                 "'v0'/'v1'/⊥, never 'evil'"])
    # Infeasible profile (m=3 > m_max=2): the classic algorithm cannot
    # even be configured; the variant terminates.
    distinct = profile_outcomes(4, 1, 3, "crash")
    assert all(v in {"'v0'", "'v1'", "'v2'", BOT_REPR} for v in distinct)
    rows.append(["all distinct (m=3 > m_max)", "n=4 t=1", "crash",
                 f"{bot_count(distinct)}/{len(SEEDS)}",
                 "terminates despite infeasibility"])
    # Larger system, many distinct values.
    wide = profile_outcomes(7, 2, 5, "crash")
    rows.append(["five distinct (m=5)", "n=7 t=2", "crash x2",
                 f"{bot_count(wide)}/{len(SEEDS)}",
                 "terminates despite infeasibility"])
    report(
        "variant_bot",
        "E9 / Section 7 — the ⊥-default-validity variant",
        ["profile", "system", "adversary", "⊥ decisions", "notes"],
        rows,
        notes=("Claims: unanimity never yields ⊥; arbitrary value "
               "diversity terminates; Byzantine-only values are never "
               "decided."),
        capsys=capsys,
    )


def test_e9_unanimity_never_bot_wide_sweep():
    sweep = run_matrix(bot_matrix(4, 1, 1, "two_faced:evil", seeds=range(10)))
    assert len(sweep.outcomes) == 10
    for outcome in sweep.outcomes:
        assert outcome.decided_value == "'v0'", outcome.spec.seed_index


@pytest.mark.benchmark(group="variant-bot")
def test_e9_benchmark_infeasible_profile(benchmark):
    [spec] = bot_matrix(4, 1, 3, "crash", seeds=(1,)).expand()
    result = benchmark(run_scenario, spec)
    assert result.decided
