"""Benchmark-suite configuration.

The table-generating tests in this directory ARE the experiments: they
regenerate the paper's figures/claims and persist them under
``benchmarks/results/``.  ``pytest benchmarks/ --benchmark-only`` must
therefore run them too, so this hook (running after pytest-benchmark's)
strips the "non-benchmark" skip marker it adds to them.
"""

import pytest


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(config, items):
    session = getattr(config, "_benchmarksession", None)
    if session is None or not session.only:
        return
    for item in items:
        has_benchmark = (
            hasattr(item, "fixturenames") and "benchmark" in item.fixturenames
        )
        if not has_benchmark:
            item.own_markers = [
                marker
                for marker in item.own_markers
                if not (
                    marker.name == "skip"
                    and "non-benchmark" in str(marker.kwargs.get("reason", ""))
                )
            ]
