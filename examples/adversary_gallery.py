#!/usr/bin/env python
"""The adversary gallery: safety under every Byzantine strategy.

Runs the same consensus instance against each strategy in the adversary
library and shows that agreement and validity hold in every case — the
decided value is always one proposed by a correct process, never the
adversary's fake value, and every correct process decides the same thing.

Run:  python examples/adversary_gallery.py
"""

from repro import RunConfig, run_consensus
from repro.adversary import (
    bot_relays,
    collude,
    crash,
    crash_at,
    mute_coordinator,
    noise,
    spam_decide,
    two_faced,
)
from repro.orchestration.sweeps import format_table


STRATEGIES = {
    "crash (silent from start)": crash(),
    "noise (forged reflections)": noise(0.5),
    "crash at t=25 (mid-protocol)": crash_at(25.0),
    "two-faced (equivocation everywhere)": two_faced("evil"),
    "mute coordinator (sabotages own rounds)": mute_coordinator(),
    "collusion (proposes common fake value)": collude("evil"),
    "decide spam (forged DECIDE + relays)": spam_decide("evil"),
    "⊥-relay spam (quorum poisoning)": bot_relays(),
}


def main() -> None:
    rows = []
    for name, spec in STRATEGIES.items():
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "a", 2: "b", 3: "a"},
                      adversaries={4: spec}, seed=99)
        )
        assert result.all_decided
        assert result.decided_value in {"a", "b"}, name
        rows.append([
            name,
            result.decided_value,
            result.max_round,
            result.messages_sent,
            "OK" if result.invariants.ok else "VIOLATED",
        ])
    print(format_table(
        ["adversary", "decided", "rounds", "messages", "safety checks"],
        rows,
    ))
    print(
        "\nEvery strategy lost: agreement and validity held, and the fake\n"
        "value 'evil' was never decided.  The t < n/3 quorums plus the\n"
        "cooperative-broadcast validity filter do all the work."
    )


if __name__ == "__main__":
    main()
