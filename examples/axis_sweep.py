"""The scenario-axis registry: grid over any knob, register your own.

Every sweepable dimension is an :class:`~repro.orchestration.axes.Axis`
in the :data:`~repro.orchestration.axes.AXES` registry; a matrix's
``axes={...}`` mapping grids over any of them — the Section 5.4 ``k``
knob, per-cell Byzantine ``faults`` counts and ``placement``, proposal
``proposals`` profiles — with feasibility hooks pruning infeasible
combinations automatically.  Custom axes plug straight through the
matrix, the JSONL codec, the result cache and the CLI.

Run with ``PYTHONPATH=src python examples/axis_sweep.py``.
"""

from repro.analysis.aggregation import group_outcomes, render_group_table
from repro.orchestration import AXES, Axis, ScenarioMatrix, sweep_serial

# --- Grid over k and per-cell fault counts (ROADMAP "matrix vocabulary").
# At (7, 2): k in 0..2 is feasible, k=3 > t is dropped by the k axis's
# feasibility hook; faults grids the *actual* Byzantine count per cell.
matrix = ScenarioMatrix(
    sizes=[(7, 2)],
    adversaries=["two_faced:evil"],
    seeds=range(2),
    axes={"k": [0, 1, 2, 3], "faults": [0, 2]},
)
print(f"k x faults grid: {len(matrix.cell_dicts())} feasible cells, "
      f"{len(matrix)} scenarios")

sweep = sweep_serial(matrix)
print(render_group_table(group_outcomes(sweep.outcomes, ["k", "faults"])))

# --- Fault placement and proposal profiles are axes too.
shaped = ScenarioMatrix(
    sizes=[(7, 2)],
    seeds=range(2),
    axes={"placement": ["tail", "head", "spread"],
          "proposals": ["round_robin", "skewed"]},
)
outcomes = sweep_serial(shaped).outcomes
print()
print(render_group_table(group_outcomes(outcomes, ["placement", "proposals"])))

# --- Registering a custom axis: cap the per-process round budget.
# The apply hook patches RunConfig kwargs; parse makes it CLI-ready
# (`repro sweep --axis max_rounds=none,50`); the omit-defaults codec
# keeps default-valued cells byte-compatible with pre-registry stores.
AXES.register(Axis(
    name="max_rounds",
    default=None,
    parse=lambda text: None if text == "none" else int(text),
    apply=lambda kwargs, v: kwargs.__setitem__("max_rounds", v),
    help="cap on consensus rounds per process (none = unlimited)",
))
try:
    capped = ScenarioMatrix(
        sizes=[(4, 1)], seeds=range(2), axes={"max_rounds": [None, 3]}
    )
    outcomes = sweep_serial(capped).outcomes
    print()
    print(render_group_table(group_outcomes(outcomes, ["max_rounds"])))
    labels = sorted({o.spec.cell_id for o in outcomes})
    print(f"\ncustom-axis cell ids: {labels}")
finally:
    AXES.unregister("max_rounds")
