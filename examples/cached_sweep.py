"""Incremental sweeps with the persistent result store.

The sweep engine alone is fire-and-forget: every invocation re-executes
every cell.  ``repro.store`` makes experiments *incremental*: a
content-addressed :class:`ResultCache` remembers every executed
scenario, so re-running a sweep costs nothing, growing the grid runs
only the new cells, and JSONL shards from separate runs merge into one
report.  (On the CLI: ``repro sweep --cache DIR`` / ``repro merge``.)

Run with ``PYTHONPATH=src python examples/cached_sweep.py``.
"""

import tempfile
from pathlib import Path

from repro.orchestration import ScenarioMatrix, sweep_async, sweep_serial
from repro.store import ResultCache, merge_shards, plan_resume

workdir = Path(tempfile.mkdtemp(prefix="repro-cached-sweep-"))
cache = ResultCache(workdir / "cache")

matrix = ScenarioMatrix(
    sizes=[(4, 1)],
    topologies=["single_bisource", "fully_timely"],
    adversaries=["crash", "two_faced:evil"],
    value_counts=[2],
    seeds=range(3),
    base_seed=7,
)

# Cold: nothing cached yet, all 12 scenarios execute and are stored.
cold = sweep_serial(matrix, cache=cache)
print(f"cold sweep  : {cold.executed} executed, {cold.cache_hits} cached")
assert cold.executed == len(matrix) and cold.cache_hits == 0

# Warm: the same matrix again — zero scenarios execute, and the result
# (outcomes, aggregates, everything) is bit-identical to the cold run.
warm = sweep_async(matrix, cache=cache)
print(f"warm sweep  : {warm.executed} executed, {warm.cache_hits} cached")
assert warm.executed == 0 and warm.cache_hits == len(matrix)
assert warm.outcomes == cold.outcomes and warm.report == cold.report

# Grow the experiment: double the seed ensemble.  plan_resume shows the
# store diff, and the sweep runs only the 12 new scenarios.
bigger = ScenarioMatrix(
    sizes=matrix.sizes, topologies=matrix.topologies,
    adversaries=matrix.adversaries, value_counts=matrix.value_counts,
    seeds=range(6), base_seed=7,
)
plan = plan_resume(bigger, cache)
print(f"resume plan : {plan.describe()}")
extended = sweep_serial(bigger, cache=cache)
assert extended.cache_hits == len(matrix)
assert extended.executed == len(bigger) - len(matrix)
print(f"extension   : {extended.executed} new scenarios, "
      f"decide rate {extended.report.decide_rate:.0%}")

# Shard merging: two disjoint half-sweeps (think: two machines) fold
# into one deduplicated report equal to the full sweep's.
specs = bigger.expand()
half = len(specs) // 2
sweep_serial(specs[:half]).write_jsonl(workdir / "east.jsonl")
sweep_serial(specs[half:]).write_jsonl(workdir / "west.jsonl")
merged = merge_shards([workdir / "east.jsonl", workdir / "west.jsonl"])
print(f"merge       : {merged.total_records} records from 2 shards -> "
      f"{merged.report.runs} scenarios, "
      f"{merged.report.decided_runs} decided")
assert merged.report.runs == len(bigger)
assert merged.report.cells.keys() == extended.report.cells.keys()
assert merged.report.decided_runs == extended.report.decided_runs
print(f"store       : {len(cache)} entries on disk, "
      f"hit rate {cache.stats.hit_rate:.0%}")
