#!/usr/bin/env python
"""Ensemble reporting: comparing configurations across seed sweeps.

Runs four configurations (varying adversary and topology) over a common
seed ensemble, aggregates them with `repro.analysis.aggregate`, and
prints a comparison table — the workflow for answering "which setting is
harder?" questions quantitatively.

Also demonstrates the schedule-search helpers: finding the seed with the
slowest decision for a given configuration.

Run:  python examples/ensemble_report.py
"""

from repro import RunConfig, fully_timely, run_consensus
from repro.adversary import crash, mute_coordinator, two_faced
from repro.analysis import aggregate, find_worst_seed, render_ensemble_table

SEEDS = range(8)


def config(adversary, topology=None, seed=0):
    return RunConfig(
        n=4, t=1, proposals={1: "a", 2: "b", 3: "a"},
        adversaries={4: adversary}, topology=topology, seed=seed,
    )


def main() -> None:
    ensembles = [
        ("minimal bisource + crash",
         [run_consensus(config(crash(), seed=s)) for s in SEEDS]),
        ("minimal bisource + two-faced",
         [run_consensus(config(two_faced("evil"), seed=s)) for s in SEEDS]),
        ("minimal bisource + mute coordinator",
         [run_consensus(config(mute_coordinator(), seed=s)) for s in SEEDS]),
        ("fully timely + two-faced",
         [run_consensus(config(two_faced("evil"), fully_timely(4), seed=s))
          for s in SEEDS]),
    ]
    reports = [(label, aggregate(results)) for label, results in ensembles]
    print(render_ensemble_table(reports))

    worst = find_worst_seed(
        config(two_faced("evil")), seeds=SEEDS,
        cost=lambda r: r.finished_at,
    )
    print(
        f"\nSlowest two-faced schedule in the ensemble: seed {worst.seed} "
        f"(virtual time {worst.cost:.1f}, {worst.result.max_round} rounds). "
        f"Deterministic: re-run it to debug it."
    )


if __name__ == "__main__":
    main()
