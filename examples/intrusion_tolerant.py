#!/usr/bin/env python
"""The Section 7 variant: consensus with a default decision ⊥.

The m-valued algorithms cap the number of distinct correct proposals at
m_max = floor((n-t-1)/t) so that a Byzantine-only value can never be
decided.  The variant sketched in the paper's conclusion removes the cap:
correct processes may propose anything, and the decided value is either a
correct proposal or the default ⊥ — with ⊥ possible only when correct
processes disagree.

This example plays three workloads against the variant and prints the
decision envelope.

Run:  python examples/intrusion_tolerant.py
"""

from repro import BOT, RunConfig, run_consensus
from repro.adversary import crash, two_faced
from repro.analysis.feasibility import max_values
from repro.orchestration.sweeps import format_table


def run_bot(proposals, adversaries, seed):
    return run_consensus(
        RunConfig(n=4, t=1, proposals=proposals, adversaries=adversaries,
                  variant="bot", seed=seed)
    )


def main() -> None:
    print(f"m_max for n=4, t=1 is {max_values(4, 1)} — the classic algorithm")
    print("cannot run the third workload at all.\n")
    workloads = [
        ("unanimous", {1: "commit", 2: "commit", 3: "commit"}, {4: two_faced("evil")}),
        ("2-way split", {1: "commit", 2: "abort", 3: "commit"}, {4: two_faced("evil")}),
        ("all distinct (m=3 > m_max)", {1: "red", 2: "green", 3: "blue"}, {4: crash()}),
    ]
    rows = []
    for name, proposals, adversaries in workloads:
        outcomes = []
        for seed in range(6):
            result = run_bot(dict(proposals), dict(adversaries), seed)
            assert result.all_decided
            outcomes.append(result.decided_value)
        bots = sum(1 for v in outcomes if v is BOT)
        distinct = sorted({repr(v) for v in outcomes})
        rows.append([name, f"{bots}/6", ", ".join(distinct)])
        if name == "unanimous":
            assert all(v == "commit" for v in outcomes)
        assert all(v is BOT or v in proposals.values() for v in outcomes)
    print(format_table(
        ["workload", "⊥ decisions", "decided values across 6 seeds"], rows
    ))
    print(
        "\nUnanimity always wins outright; splits may fall back to ⊥; and\n"
        "even with every correct process proposing a different value the\n"
        "variant terminates — something the m-valued algorithm cannot do."
    )


if __name__ == "__main__":
    main()
