"""Scenario-matrix sweeps: declare a grid, run it on all cores.

A :class:`ScenarioMatrix` expands a declarative grid over system sizes,
synchrony topologies, adversary strategies, value diversity and seeds
into self-contained, picklable scenario specs.  ``sweep_parallel`` fans
them out over a process pool — and because every scenario's seed is
derived structurally from its grid cell, the results are bit-identical
to a serial run, whatever the worker count or scheduling.

Run with ``PYTHONPATH=src python examples/matrix_sweep.py``.
"""

from repro.analysis import render_matrix_table
from repro.orchestration import ScenarioMatrix, sweep_parallel, sweep_serial

# A 24-scenario grid: 2 sizes x 2 topologies x 3 adversaries, 2 seeds
# per cell.  Requested value diversity (3) exceeds the feasibility bound
# m_max = 2 at both sizes, so expansion clamps it (n - t > m*t, §2.3).
matrix = ScenarioMatrix(
    sizes=[(4, 1), (7, 2)],
    topologies=["single_bisource", "fully_timely"],
    adversaries=["crash", "two_faced:evil", "mute_coord"],
    value_counts=[3],
    seeds=range(2),
    base_seed=42,
)
print(f"grid: {len(matrix.cells())} cells, {len(matrix)} scenarios")
clamped = {spec.num_values for spec in matrix}
print(f"value diversity after feasibility clamping: {sorted(clamped)}")

# Run the whole matrix on 2 workers, streaming progress as cells finish.
done = []
sweep = sweep_parallel(
    matrix, workers=2, on_result=lambda outcome: done.append(outcome)
)
assert len(done) == len(matrix)

report = sweep.report
print(f"\ndecide rate : {report.decide_rate:.0%}  "
      f"(timeouts: {report.timed_out_runs}, safety: "
      f"{'OK' if report.all_safe else 'VIOLATED'})")
print(f"throughput  : {sweep.scenarios_per_second:.1f} scenarios/s "
      f"on {sweep.workers} workers")
print()
print(render_matrix_table(report))

# Same matrix, same results, one process: parallelism never changes what
# an experiment *means*.
serial = sweep_serial(matrix)
assert [o.decisions for o in serial.outcomes] == [
    o.decisions for o in sweep.outcomes
]
assert [o.rounds for o in serial.outcomes] == [o.rounds for o in sweep.outcomes]
print("\nserial == parallel: identical decisions and rounds per scenario")

# Every scenario is replayable on its own: the spec carries everything.
worst = max(sweep.outcomes, key=lambda o: o.messages_sent)
print(f"costliest cell      : {worst.spec.cell_id} "
      f"(seed {worst.spec.seed_index}, {worst.messages_sent} messages)")
