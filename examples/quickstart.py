#!/usr/bin/env python
"""Quickstart: one Byzantine consensus run in ten lines.

Four processes, one of which is Byzantine (fail-silent), agree on a value
under the *minimal* synchrony assumption: a single eventual <t+1>bisource
(every other channel fully asynchronous).

Run:  python examples/quickstart.py
"""

from repro import RunConfig, run_consensus
from repro.adversary import crash


def main() -> None:
    config = RunConfig(
        n=4,                                  # four processes, p1..p4
        t=1,                                  # at most one Byzantine
        proposals={1: "apply", 2: "apply", 3: "reject"},
        adversaries={4: crash()},             # p4 is fail-silent Byzantine
        seed=2015,                            # fully reproducible
    )
    result = run_consensus(config)

    print("Decisions        :", result.decisions)
    print("Common value     :", result.decided_value)
    print("Rounds executed  :", result.rounds)
    print("Messages sent    :", result.messages_sent)
    print("Virtual latency  :", f"{result.finished_at:.1f} time units")
    print("Safety re-check  :", "OK" if result.invariants.ok else "VIOLATED")

    assert result.all_decided
    assert result.decided_value in {"apply", "reject"}


if __name__ == "__main__":
    main()
