#!/usr/bin/env python
"""State-machine replication on top of repeated Byzantine consensus.

The paper's consensus object is the classic building block for
replicating a service: replicas agree, slot by slot, on the next client
command to apply.  This example replicates a tiny key-value store across
n = 4 replicas while one replica is Byzantine (fail-silent), using only
the public API: simulator, network, processes, reliable broadcast and
namespaced consensus instances (one per log slot, all in one simulation).

Run:  python examples/state_machine_replication.py
"""

from repro import Network, Process, Simulator, single_bisource
from repro.adversary import RawByzantine
from repro.broadcast import ReliableBroadcast
from repro.core import Consensus
from repro.sim import RngRegistry, gather


class KeyValueStore:
    """The replicated state machine: a dict with set/del commands."""

    def __init__(self) -> None:
        self.data: dict[str, str] = {}
        self.applied: list[str] = []

    def apply(self, command: str) -> None:
        self.applied.append(command)
        parts = command.split()
        if parts[0] == "set":
            key, value = parts[1].split("=")
            self.data[key] = value
        elif parts[0] == "del":
            self.data.pop(parts[1], None)


# One batch of (possibly conflicting) client commands per log slot.
SLOTS = [
    {1: "set x=1", 2: "set x=2", 3: "set x=1"},
    {1: "set y=9", 2: "set y=9", 3: "set y=9"},
    {1: "del x", 2: "set z=5", 3: "del x"},
    {1: "set w=0", 2: "set w=0", 3: "set z=7"},
]


def main() -> None:
    n, t = 4, 1
    correct = {1, 2, 3}

    # Substrate: virtual-time simulator + minimal-synchrony network.
    sim = Simulator()
    rng = RngRegistry(7)
    topo = single_bisource(n, t, bisource=1, correct=correct)
    network = Network(sim, n, timing=topo.overrides,
                      default_timing=topo.default, rng=rng)

    # p4 is Byzantine: registered so the network accepts traffic to it,
    # but it never participates.
    RawByzantine(4, sim, network, rng.stream("adv", 4))

    processes = {pid: Process(pid, sim, network) for pid in correct}
    rbs = {pid: ReliableBroadcast(processes[pid], n, t) for pid in correct}
    stores = {pid: KeyValueStore() for pid in correct}

    async def replica(pid: int):
        process, rb = processes[pid], rbs[pid]
        for slot, commands in enumerate(SLOTS):
            consensus = Consensus(process, rb, n, t, m=2,
                                  namespace=f"slot{slot}")
            decided = await consensus.propose(commands[pid])
            stores[pid].apply(decided)
        return stores[pid].data

    tasks = [processes[pid].create_task(replica(pid)) for pid in sorted(correct)]
    states = sim.run_until_complete(gather(sim, tasks), max_time=10_000_000.0)

    print("Replicated log (identical on every correct replica):")
    for slot, command in enumerate(stores[1].applied):
        proposals = ", ".join(f"p{p}:'{c}'" for p, c in SLOTS[slot].items())
        print(f"  slot {slot}: decided '{command}'   (proposed: {proposals})")
    print("\nFinal key-value state per replica:")
    for pid, state in zip(sorted(correct), states):
        print(f"  replica {pid}: {state}")

    reference = stores[1].applied
    assert all(stores[pid].applied == reference for pid in stores)
    print("\nAll replica logs identical — state machine replicated. ✓")


if __name__ == "__main__":
    main()
