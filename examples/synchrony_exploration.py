#!/usr/bin/env python
"""Exploring the synchrony spectrum — the paper's central question.

"When considering the synchrony-to-asynchrony axis, which is the weakest
synchrony assumption that allows Byzantine consensus to be solved?"

This example walks the axis experimentally on n = 7, t = 2:

1. fully timely network (classic synchrony) — decides fast;
2. a single eventual <t+1>bisource, stabilizing late — decides after
   stabilization;
3. the same minimal bisource, stabilizing immediately — decides;
4. no synchrony anywhere — termination is no longer *guaranteed* (FLP);
   on friendly random schedules the run may still decide, but no bound
   exists, and safety never breaks either way.  (The benchmark suite's
   E8 experiment constructs the adversarial schedules under which the
   guarantee actually makes the difference.)

Run:  python examples/synchrony_exploration.py
"""

from repro import (
    RunConfig,
    fully_asynchronous,
    fully_timely,
    run_consensus,
    single_bisource,
)
from repro.adversary import crash, two_faced
from repro.orchestration.sweeps import format_table


N, T = 7, 2
CORRECT = {1, 2, 3, 4, 5}
PROPOSALS = {1: "a", 2: "b", 3: "a", 4: "b", 5: "a"}
ADVERSARIES = {6: two_faced("evil"), 7: crash()}


def run_on(topology, budget=60_000.0, seed=11):
    return run_consensus(
        RunConfig(n=N, t=T, proposals=dict(PROPOSALS),
                  adversaries=dict(ADVERSARIES), topology=topology,
                  seed=seed, max_time=budget),
        check_invariants=True,
    )


def main() -> None:
    scenarios = [
        ("fully timely", fully_timely(N, delta=1.0)),
        ("<3>bisource, stabilizes at tau=200",
         single_bisource(N, T, bisource=1, correct=CORRECT, tau=200.0)),
        ("<3>bisource from the start",
         single_bisource(N, T, bisource=1, correct=CORRECT, tau=0.0)),
        ("fully asynchronous (no bisource)", fully_asynchronous(N)),
    ]
    guarantees = ["yes (synchrony)", "yes (eventual bisource)",
                  "yes (bisource)", "NO (FLP)"]
    rows = []
    for (name, topology), guaranteed in zip(scenarios, guarantees):
        result = run_on(topology)
        decided = result.all_decided
        rows.append([
            name,
            "yes" if decided else "no (budget hit)",
            guaranteed,
            result.decided_value if result.decisions else "-",
            result.max_round,
            f"{result.finished_at:.0f}",
            "OK" if result.invariants.ok else "VIOLATED",
        ])
    print(format_table(
        ["topology", "decided this run", "termination guaranteed?", "value",
         "rounds", "virtual time", "safety"],
        rows,
    ))
    print(
        "\nReading: one eventual <t+1>bisource — t timely in-channels and t\n"
        "timely out-channels at a single correct process — is all the\n"
        "synchrony Byzantine consensus needs (and, by the paper's matching\n"
        "lower bound, the least it can need).  Without any synchrony the\n"
        "algorithm stays safe and may decide on friendly schedules, but no\n"
        "schedule-independent guarantee exists (FLP)."
    )


if __name__ == "__main__":
    main()
