#!/usr/bin/env python
"""Tracing a consensus run: what actually happened, round by round.

Enables full tracing on a run, then reconstructs the story: the EA round
diagnostics of each process (who championed, who relayed what, which
timers fired) and the decision events, finally exporting the raw trace
as JSON for external tooling.

Run:  python examples/trace_debugging.py
"""

import json

from repro import BOT, RunConfig, run_consensus
from repro.adversary import mute_coordinator


def main() -> None:
    result = run_consensus(
        RunConfig(
            n=4, t=1,
            proposals={2: "a", 3: "b", 4: "a"},
            adversaries={1: mute_coordinator()},  # sabotages round 1!
            seed=21,
            trace=True,
        )
    )
    print(f"Decided {result.decided_value!r} after {result.max_round} round(s); "
          f"{result.messages_sent} messages, "
          f"{len(result.trace.events)} trace events.\n")

    for r in range(1, result.max_round + 1):
        print(f"--- round {r} ---")
        for pid in sorted(result.consensi):
            diag = result.consensi[pid].ea.round_diagnostics(r)
            if diag is None:
                continue
            relays = {
                sender: ("⊥" if value is BOT else value)
                for sender, value in diag["relays"].items()
            }
            print(
                f"  p{pid}: coord=p{diag['coordinator']}"
                f" champion={'seen' if diag['coord_seen'] else 'MISSING'}"
                f" timer={diag['timer']}"
                f" relays={relays}"
                f" -> returned {diag['returned']!r}"
            )
    print("\nDecision events:")
    for event in result.trace.filter(kind="decide"):
        print(f"  t={event.time:8.2f}  p{event.pid} decides "
              f"{event.detail['value']!r}")

    from repro.analysis import render_timeline

    print("\nTimeline (first send / first RB delivery / decision per lane):")
    print(render_timeline(result.trace, sorted(result.consensi)))

    # Export for external analysis (first three events shown).
    exported = json.loads(result.trace.to_json())
    print(f"\nJSON export: {len(exported)} events; first three:")
    for event in exported[:3]:
        print(" ", json.dumps(event))

    # The muted coordinator left its mark: in round 1 (which p1
    # coordinates) correct processes relayed ⊥ after their timers fired.
    diag = result.consensi[2].ea.round_diagnostics(1)
    assert not diag["coord_seen"]
    print("\nRound 1's coordinator was muted — the ⊥/timer path is visible "
          "above. ✓")


if __name__ == "__main__":
    main()
