"""repro — a reproduction of *Minimal Synchrony for Byzantine Consensus*.

Bouzid, Mostéfaoui, Raynal (PODC 2015): deterministic, signature-free
Byzantine consensus for asynchronous message-passing systems whose only
synchrony requirement is one eventual ``<t+1>bisource`` — the weakest
assumption under which the problem is solvable.

The library provides, on a deterministic virtual-time simulator:

* the full broadcast stack (best-effort, Bracha reliable broadcast, the
  paper's cooperative broadcast — Figure 1);
* the Byzantine adopt-commit object (Figure 2);
* the eventual-agreement object with rotating coordinators and witness
  sets (Figure 3), including the Section 5.4 parameterization;
* the synchrony-optimal consensus algorithm (Figure 4) and the Section 7
  ⊥-validity variant;
* an adversary library, baselines, analytic predictions, invariant
  checkers and an experiment runner;
* a scenario-matrix sweep engine: declare a grid over sizes, synchrony
  topologies, adversaries, value diversity and seeds, and run thousands
  of scenarios serially or across a process pool with bit-identical
  results either way.

Quickstart::

    from repro import RunConfig, run_consensus
    from repro.adversary import crash

    config = RunConfig(
        n=4, t=1,
        proposals={1: "apply", 2: "apply", 3: "apply"},
        adversaries={4: crash()},
    )
    result = run_consensus(config)
    print(result.decisions)       # {1: 'apply', 2: 'apply', 3: 'apply'}

Batch experiments go through the sweep engine (see
``examples/matrix_sweep.py`` and the ``repro sweep`` CLI command)::

    from repro.orchestration import ScenarioMatrix, sweep_parallel

    matrix = ScenarioMatrix(
        sizes=[(4, 1), (7, 2)],
        topologies=["single_bisource", "fully_timely"],
        adversaries=["crash", "two_faced:evil"],
        value_counts=[2],
        seeds=range(25),
    )
    sweep = sweep_parallel(matrix)        # one worker per CPU
    print(sweep.report.decide_rate, sweep.report.cells.keys())

Scenario expansion applies the paper's feasibility condition
(``n - t > m*t``) to the requested value diversity, and each scenario's
seed is derived structurally from its grid cell — execution order and
worker count can never change what an experiment means.

Sweeps are *incremental* through the persistent result store
(:mod:`repro.store`): a content-addressed :class:`~repro.store.ResultCache`
keyed on each scenario's full semantic identity (config + seed + a
code-version salt) lets any backend — ``sweep_serial``, the cooperative
in-process ``sweep_async``, or ``sweep_parallel`` — skip
already-executed cells with bit-identical results (``repro sweep
--cache DIR`` on the CLI), while :func:`repro.store.merge_shards` /
``repro merge`` folds JSONL shards from separate runs or machines into
one deduplicated :class:`~repro.analysis.aggregation.MatrixReport`::

    from repro.orchestration import sweep_async
    from repro.store import ResultCache

    cache = ResultCache("results/cache")
    sweep_async(matrix, cache=cache)   # cold: executes everything
    again = sweep_async(matrix, cache=cache)
    assert again.cache_hits == len(matrix)   # warm: executes nothing
"""

from . import adversary, analysis, baselines, broadcast, core, net, orchestration
from . import runtime, sim, store
from .instrumentation import InstrumentationBus, Probe
from .store import ResultCache
from .analysis import (
    MessageCounter,
    Tracer,
    first_good_round,
    is_feasible,
    max_values,
    verify_consensus_run,
    worst_case_round_bound,
)
from .core import (
    BOT,
    AdoptCommit,
    BotConsensus,
    Consensus,
    EventualAgreement,
    ParameterizedEventualAgreement,
    Tag,
    alpha,
    beta,
    coordinator,
    f_set,
)
from .errors import (
    ConfigurationError,
    DeadlineExceeded,
    FeasibilityError,
    InvariantViolation,
    ProtocolViolation,
    ReproError,
    SimulationError,
)
from .net import (
    Asynchronous,
    EventuallyTimely,
    Network,
    Timely,
    Topology,
    fully_asynchronous,
    fully_timely,
    is_bisource,
    single_bisource,
)
from .orchestration import (
    ConsensusRunResult,
    RunConfig,
    run_consensus,
    run_randomized,
    standard_proposals,
)
from .runtime import Process, RoundTimer
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    # subpackages
    "adversary",
    "analysis",
    "baselines",
    "broadcast",
    "core",
    "net",
    "orchestration",
    "runtime",
    "sim",
    "store",
    # frequently used names
    "InstrumentationBus",
    "Probe",
    "ResultCache",
    "MessageCounter",
    "Tracer",
    "first_good_round",
    "is_feasible",
    "max_values",
    "verify_consensus_run",
    "worst_case_round_bound",
    "BOT",
    "AdoptCommit",
    "BotConsensus",
    "Consensus",
    "EventualAgreement",
    "ParameterizedEventualAgreement",
    "Tag",
    "alpha",
    "beta",
    "coordinator",
    "f_set",
    "ConfigurationError",
    "DeadlineExceeded",
    "FeasibilityError",
    "InvariantViolation",
    "ProtocolViolation",
    "ReproError",
    "SimulationError",
    "Asynchronous",
    "EventuallyTimely",
    "Network",
    "Timely",
    "Topology",
    "fully_asynchronous",
    "fully_timely",
    "is_bisource",
    "single_bisource",
    "ConsensusRunResult",
    "RunConfig",
    "run_consensus",
    "run_randomized",
    "standard_proposals",
    "Process",
    "RoundTimer",
    "Simulator",
    "__version__",
]
