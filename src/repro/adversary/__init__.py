"""Byzantine adversary library: actors, outbound filters, named strategies."""

from .behaviors import DROP, MisbehavingProcess, OutboundFilter, RawByzantine
from .strategies import (
    AdversarySpec,
    bot_relays,
    collude,
    compose_filters,
    crash,
    crash_at,
    crash_at_filter,
    flip_flop,
    flip_flop_filter,
    honest_filter,
    mute_coordinator,
    mute_coordinator_filter,
    noise,
    spam_decide,
    two_faced,
    two_faced_filter,
)

__all__ = [
    "DROP",
    "MisbehavingProcess",
    "OutboundFilter",
    "RawByzantine",
    "AdversarySpec",
    "bot_relays",
    "collude",
    "compose_filters",
    "crash",
    "crash_at",
    "crash_at_filter",
    "flip_flop",
    "flip_flop_filter",
    "honest_filter",
    "mute_coordinator",
    "mute_coordinator_filter",
    "noise",
    "spam_decide",
    "two_faced",
    "two_faced_filter",
]
