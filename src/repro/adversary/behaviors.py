"""Byzantine process machinery.

Two complementary kinds of adversarial actors:

* :class:`MisbehavingProcess` — a process that *runs the real protocol*
  but passes every outgoing message through an outbound filter which may
  drop or rewrite it (per destination).  This produces realistic,
  protocol-aware Byzantine behaviour — equivocation inside reliable
  broadcast, muting the coordinator role, crashing mid-run — without
  reimplementing the protocols.
* :class:`RawByzantine` — a message-level actor that does not run any
  protocol: it stays silent (crash from the start) or sprays noise.

Both respect the model's hard limits (Section 2.1): they send under their
own identity only and have no influence over the message schedule.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable

from ..net.messages import Message
from ..runtime.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network
    from ..sim.loop import Simulator

__all__ = ["DROP", "OutboundFilter", "MisbehavingProcess", "RawByzantine"]


class _Drop:
    """Sentinel returned by outbound filters to suppress a message."""

    def __repr__(self) -> str:
        return "<DROP>"


DROP = _Drop()

#: ``filter(dst, tag, payload, now) -> payload' | DROP``
OutboundFilter = Callable[[int, str, Any, float], Any]


class MisbehavingProcess(Process):
    """A protocol-running process whose outgoing traffic is adversarial.

    The outbound filter sees every message (including reliable-broadcast
    echoes and readies) just before transmission and may rewrite the
    payload differently per destination, or drop it.  Broadcasts are
    expanded into per-destination sends *before* filtering, so a filter
    can equivocate: same protocol step, different value per receiver.
    """

    def __init__(
        self,
        pid: int,
        sim: "Simulator",
        network: "Network",
        outbound_filter: OutboundFilter,
    ) -> None:
        super().__init__(pid, sim, network)
        self._outbound_filter = outbound_filter

    def send(self, dst: int, tag: str, payload: Any) -> None:
        filtered = self._outbound_filter(dst, tag, payload, self.sim.now)
        if filtered is DROP:
            return
        super().send(dst, tag, filtered)

    def broadcast(self, tag: str, payload: Any) -> None:
        # Expand so the filter can treat each destination differently.
        for dst in range(1, self.network.n + 1):
            self.send(dst, tag, payload)

    def __repr__(self) -> str:
        return f"MisbehavingProcess(pid={self.pid})"


class RawByzantine:
    """A non-protocol Byzantine actor.

    With ``noise_probability = 0`` it is a from-the-start crash: it
    registers with the network (so deliveries to it are well defined) and
    never sends anything.  With a positive probability it answers each
    received message with forged traffic built by ``forge`` — by default a
    structurally valid-looking payload mutation sent to a random process.
    """

    def __init__(
        self,
        pid: int,
        sim: "Simulator",
        network: "Network",
        rng: random.Random,
        noise_probability: float = 0.0,
        forge: Callable[["RawByzantine", Message], None] | None = None,
    ) -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self.rng = rng
        self.noise_probability = noise_probability
        self._forge = forge if forge is not None else _default_forge
        self.received = 0
        network.register_process(pid, self._on_message)

    def send_raw(self, dst: int, tag: str, payload: Any) -> None:
        """Send an arbitrary message under this actor's own identity."""
        self.network.send(self.pid, dst, tag, payload)

    def broadcast_raw(self, tag: str, payload: Any) -> None:
        """Send an arbitrary message to every process."""
        for dst in range(1, self.network.n + 1):
            self.send_raw(dst, tag, payload)

    def _on_message(self, message: Message) -> None:
        self.received += 1
        if self.noise_probability > 0 and self.rng.random() < self.noise_probability:
            self._forge(self, message)


def _default_forge(actor: RawByzantine, message: Message) -> None:
    """Reflect a mutated copy of the received message at a random process.

    Keeps the tag (so correct handlers actually parse it) but garbles the
    value position of tuple payloads; non-tuple payloads are replayed
    verbatim under the actor's identity.
    """
    payload = message.payload
    if isinstance(payload, tuple) and payload:
        payload = payload[:-1] + (("byz", actor.pid, actor.rng.randrange(1000)),)
    target = actor.rng.randrange(1, actor.network.n + 1)
    actor.send_raw(target, message.tag, payload)
