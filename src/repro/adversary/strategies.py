"""Named Byzantine strategies used by tests, benchmarks and examples.

Each strategy is a recipe the orchestration runner knows how to deploy:

============== ================================================================
``crash``       never sends anything (fail-silent from the start)
``noise``       answers received messages with forged mutations (no protocol)
``crash_at``    runs the real protocol, then goes silent at a given time
``two_faced``   runs the real protocol but equivocates: rewrites the value
                position of every outgoing payload for half the receivers
``mute_coord``  runs the real protocol but never sends EA_COORD — sabotages
                every round it coordinates (forces the timer/⊥ path)
``collude``     runs the protocol honestly but proposes a common fake value
                (tests that a t-supported value never enters cb_valid)
``spam_decide`` crash-silent except it RB-broadcasts a forged DECIDE, and
                floods forged relays (must never trick a correct process)
``bot_relays``  crash-silent except it pre-poisons every round's EA relay
                quorum with ⊥ relays — the schedule that separates the
                paper's F(r)-witness rule from the t+1-witness baseline
============== ================================================================

The filter functions are exported separately so custom scenarios can
compose them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.eventual_agreement import EventualAgreement
from .behaviors import DROP, OutboundFilter

__all__ = [
    "AdversarySpec",
    "PLACEMENTS",
    "normalize_placement",
    "place_adversaries",
    "crash",
    "noise",
    "crash_at",
    "two_faced",
    "flip_flop",
    "flip_flop_filter",
    "mute_coordinator",
    "collude",
    "spam_decide",
    "bot_relays",
    "two_faced_filter",
    "mute_coordinator_filter",
    "crash_at_filter",
    "compose_filters",
    "honest_filter",
]


@dataclass(frozen=True)
class AdversarySpec:
    """A deployable description of one Byzantine process's behaviour.

    Attributes:
        kind: One of the strategy names in the module docstring.
        proposal: Value the adversary proposes when it runs the protocol
            (ignored by non-protocol strategies).
        params: Strategy-specific parameters (e.g. ``crash_time``,
            ``fake_value``, ``noise_probability``).
        runs_protocol: Whether the runner should instantiate the real
            protocol stack for this process.
    """

    kind: str
    proposal: Any = None
    params: dict[str, Any] = field(default_factory=dict)
    runs_protocol: bool = True


# ----------------------------------------------------------------------
# Fault placement
# ----------------------------------------------------------------------
#: Where a cell's Byzantine processes sit in the pid space.  ``tail``
#: (the historical default) corrupts the highest pids, ``head`` the
#: lowest (displacing the default single-bisource, which is the lowest
#: *correct* pid), and ``spread`` distributes faults evenly across the
#: ring.  The ``placement`` scenario axis grids over these.
PLACEMENTS = ("tail", "head", "spread")


def normalize_placement(name: str) -> str:
    """Validate a fault-placement name (the ``placement`` axis codec)."""
    if name not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {name!r} (known: {', '.join(PLACEMENTS)})"
        )
    return name


def place_adversaries(placement: str, n: int, faults: int) -> list[int]:
    """The pids a cell's ``faults`` Byzantine processes occupy.

    Deterministic in ``(placement, n, faults)`` — placement is part of a
    scenario's semantic identity, so it must not consume randomness.
    """
    normalize_placement(placement)
    if faults <= 0:
        return []
    if faults >= n:
        raise ValueError(f"cannot place {faults} faults among {n} processes")
    if placement == "tail":
        return list(range(n - faults + 1, n + 1))
    if placement == "head":
        return list(range(1, faults + 1))
    # spread: march down from pid n in even steps; step >= 1 and
    # (faults - 1) * step < n keep the pids distinct and in 1..n.
    step = max(1, n // faults)
    return sorted(n - i * step for i in range(faults))


# ----------------------------------------------------------------------
# Strategy constructors
# ----------------------------------------------------------------------
def crash() -> AdversarySpec:
    """Fail-silent from the start (the mildest Byzantine behaviour)."""
    return AdversarySpec(kind="crash", runs_protocol=False)


def noise(probability: float = 0.5) -> AdversarySpec:
    """Reply to received traffic with forged mutations."""
    return AdversarySpec(
        kind="noise",
        params={"noise_probability": probability},
        runs_protocol=False,
    )


def crash_at(time: float, proposal: Any = None) -> AdversarySpec:
    """Participate correctly until ``time``, then go silent."""
    return AdversarySpec(kind="crash_at", proposal=proposal, params={"time": time})


def two_faced(fake_value: Any, proposal: Any = None) -> AdversarySpec:
    """Equivocate: send ``fake_value`` instead of the real value to every
    even-numbered receiver, at every protocol layer."""
    return AdversarySpec(
        kind="two_faced", proposal=proposal, params={"fake_value": fake_value}
    )


def mute_coordinator(proposal: Any = None) -> AdversarySpec:
    """Suppress all EA_COORD messages (never help any round converge)."""
    return AdversarySpec(kind="mute_coord", proposal=proposal)


def collude(fake_value: Any) -> AdversarySpec:
    """Run the protocol honestly but propose a common fake value."""
    return AdversarySpec(kind="collude", proposal=fake_value)


def spam_decide(fake_value: Any) -> AdversarySpec:
    """Forge DECIDE broadcasts and relays for a value nobody proposed."""
    return AdversarySpec(
        kind="spam_decide",
        params={"fake_value": fake_value},
        runs_protocol=False,
    )


def bot_relays(max_round: int = 500) -> AdversarySpec:
    """Pre-poison rounds ``1..max_round`` with instant ⊥ relays.

    Byzantine ⊥ relays are protocol-legal (a correct process sends ⊥ when
    its timer expires), so correct processes count them toward the
    ``n - t`` relay quorum of Figure 3 line 6.  Arriving instantly, they
    crowd the quorum snapshot so that it contains exactly one member of
    the bisource's timely output set — enough for the paper's line-7 rule
    (one F(r) witness suffices) but not for the ``t + 1``-witness rule of
    the strong-bisource baseline.  This is the legal worst-case schedule
    behind the E8 separation benchmark.
    """
    return AdversarySpec(
        kind="bot_relays",
        params={"max_round": max_round},
        runs_protocol=False,
    )


# ----------------------------------------------------------------------
# Outbound filters (building blocks for MisbehavingProcess)
# ----------------------------------------------------------------------
def honest_filter(dst: int, tag: str, payload: Any, now: float) -> Any:
    """Pass-through filter (an honest process in filter clothing)."""
    return payload


def flip_flop_filter(values: list[Any]) -> OutboundFilter:
    """Rotate through ``values`` as the payload value, per message sent.

    A restless equivocator: consecutive messages (to any destinations)
    carry different forged values, exercising the per-sender dedup and
    quorum intersection arguments differently from the destination-parity
    equivocator.
    """
    state = {"i": 0}

    def filt(dst: int, tag: str, payload: Any, now: float) -> Any:
        if isinstance(payload, tuple) and payload:
            value = values[state["i"] % len(values)]
            state["i"] += 1
            return payload[:-1] + (value,)
        return payload

    return filt


def flip_flop(values: list[Any] | None = None, proposal: Any = None) -> AdversarySpec:
    """Run the protocol but rotate forged values across all messages."""
    return AdversarySpec(
        kind="flip_flop",
        proposal=proposal,
        params={"values": values if values is not None else ["evil1", "evil2"]},
    )


def two_faced_filter(fake_value: Any) -> OutboundFilter:
    """Rewrite the value position of tuple payloads for even receivers.

    All protocol payloads in this library are tuples whose last element
    is the value being communicated, so this single rule equivocates at
    every layer: RB INIT/ECHO/READY, CB values, EA prop/coord/relay.
    """

    def filt(dst: int, tag: str, payload: Any, now: float) -> Any:
        if dst % 2 == 0 and isinstance(payload, tuple) and payload:
            return payload[:-1] + (fake_value,)
        return payload

    return filt


def mute_coordinator_filter() -> OutboundFilter:
    """Drop every EA_COORD message this process would send."""

    def filt(dst: int, tag: str, payload: Any, now: float) -> Any:
        # startswith: namespaced EA objects use "EA_COORD:<namespace>".
        if tag.startswith(EventualAgreement.COORD):
            return DROP
        return payload

    return filt


def crash_at_filter(crash_time: float) -> OutboundFilter:
    """Drop everything once virtual time reaches ``crash_time``."""

    def filt(dst: int, tag: str, payload: Any, now: float) -> Any:
        if now >= crash_time:
            return DROP
        return payload

    return filt


def compose_filters(*filters: OutboundFilter) -> OutboundFilter:
    """Chain filters left to right; a DROP anywhere wins."""

    def filt(dst: int, tag: str, payload: Any, now: float) -> Any:
        current = payload
        for one in filters:
            current = one(dst, tag, current, now)
            if current is DROP:
                return DROP
        return current

    return filt
