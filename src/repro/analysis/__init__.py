"""Analytics: feasibility bounds, round predictions, metrics, invariants."""

from .aggregation import (
    CellStats,
    MatrixReport,
    aggregate_outcomes,
    render_matrix_table,
)
from .complexity import (
    ConsensusBudget,
    consensus_budget,
    consensus_round_messages,
    rb_instance_messages,
)
from .combinatorics import (
    alpha,
    beta,
    cycle_length,
    first_good_round,
    good_round_density,
    is_good_round,
    worst_case_round_bound,
)
from .feasibility import check_feasibility, is_feasible, max_values, min_processes
from .invariants import (
    InvariantReport,
    Violation,
    check_agreement,
    check_validity,
    verify_consensus_run,
)
from .metrics import LatencySummary, MessageCounter, summarize
from .reporting import EnsembleReport, aggregate, render_ensemble_table
from .search import SearchOutcome, find_non_converging_seed, find_worst_seed
from .timeline import render_timeline
from .traces import TraceEvent, Tracer

__all__ = [
    "CellStats",
    "MatrixReport",
    "aggregate_outcomes",
    "render_matrix_table",
    "ConsensusBudget",
    "consensus_budget",
    "consensus_round_messages",
    "rb_instance_messages",
    "alpha",
    "beta",
    "cycle_length",
    "first_good_round",
    "good_round_density",
    "is_good_round",
    "worst_case_round_bound",
    "check_feasibility",
    "is_feasible",
    "max_values",
    "min_processes",
    "InvariantReport",
    "Violation",
    "check_agreement",
    "check_validity",
    "verify_consensus_run",
    "LatencySummary",
    "MessageCounter",
    "summarize",
    "EnsembleReport",
    "aggregate",
    "render_ensemble_table",
    "SearchOutcome",
    "find_non_converging_seed",
    "find_worst_seed",
    "render_timeline",
    "TraceEvent",
    "Tracer",
]
