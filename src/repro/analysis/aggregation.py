"""Aggregation over scenario-matrix sweeps.

:mod:`repro.analysis.reporting` aggregates ensembles of *live*
:class:`~repro.orchestration.runner.ConsensusRunResult` objects; this
module does the analogous job for the picklable
:class:`~repro.orchestration.matrix.ScenarioOutcome` digests produced by
the sweep engine — including per-cell breakdowns, which is what turns a
flat list of thousands of runs into a readable scenario report.

It is also the single aggregation path for the persistent result store:
cache-served and freshly executed outcomes (:mod:`repro.store.cache`),
and outcomes merged from JSONL shards (:func:`repro.store.merge_shards`),
all flow through :func:`aggregate_outcomes`, so a resumed or merged
sweep reports through exactly the same code as a fresh one.

Reports can additionally be regrouped along *any* registered scenario
axis (:mod:`repro.orchestration.axes`): :func:`group_outcomes` buckets
outcomes by one or more axis values (``k``, ``faults``, ``placement``,
a custom axis, ...) and aggregates each bucket into its own
:class:`MatrixReport` — ``repro sweep --group-by k`` is the CLI face.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from .metrics import LatencySummary, summarize

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.matrix import ScenarioOutcome

__all__ = [
    "CellStats",
    "MatrixReport",
    "aggregate_outcomes",
    "group_outcomes",
    "render_group_table",
    "render_matrix_table",
]


@dataclass
class CellStats:
    """Aggregates for one grid cell (all seeds of one configuration)."""

    cell_id: str
    runs: int = 0
    decided_runs: int = 0
    timed_out_runs: int = 0
    error_runs: int = 0
    #: Outcomes whose post-hoc safety checks failed (never expected).
    invariant_failures: int = 0
    rounds: LatencySummary = field(default_factory=LatencySummary)
    latency: LatencySummary = field(default_factory=LatencySummary)
    messages: LatencySummary = field(default_factory=LatencySummary)
    #: Histogram of decided values (``repr``-rendered).
    values: dict[str, int] = field(default_factory=dict)

    @property
    def decide_rate(self) -> float:
        """Fraction of this cell's runs in which every process decided."""
        return self.decided_runs / self.runs if self.runs else 0.0


@dataclass
class MatrixReport:
    """Aggregates over a whole scenario-matrix sweep."""

    runs: int = 0
    decided_runs: int = 0
    timed_out_runs: int = 0
    error_runs: int = 0
    invariant_failures: int = 0
    rounds: LatencySummary = field(default_factory=LatencySummary)
    latency: LatencySummary = field(default_factory=LatencySummary)
    messages: LatencySummary = field(default_factory=LatencySummary)
    values: dict[str, int] = field(default_factory=dict)
    #: Per-cell breakdown, in first-seen (grid) order.
    cells: dict[str, CellStats] = field(default_factory=dict)

    @property
    def decide_rate(self) -> float:
        """Fraction of runs in which every correct process decided."""
        return self.decided_runs / self.runs if self.runs else 0.0

    @property
    def all_safe(self) -> bool:
        """Whether no run falsified a safety invariant."""
        return self.invariant_failures == 0


def aggregate_outcomes(outcomes: Iterable["ScenarioOutcome"]) -> MatrixReport:
    """Aggregate scenario outcomes globally and per grid cell."""
    report = MatrixReport()
    rounds: list[float] = []
    latencies: list[float] = []
    messages: list[float] = []
    per_cell: dict[str, tuple[CellStats, list[float], list[float], list[float]]] = {}
    for outcome in outcomes:
        cell_id = outcome.spec.cell_id
        if cell_id not in per_cell:
            per_cell[cell_id] = (CellStats(cell_id=cell_id), [], [], [])
        cell, cell_rounds, cell_latencies, cell_messages = per_cell[cell_id]
        report.runs += 1
        cell.runs += 1
        if not outcome.invariants_ok:
            report.invariant_failures += 1
            cell.invariant_failures += 1
        if outcome.error is not None:
            report.error_runs += 1
            cell.error_runs += 1
            continue
        if outcome.timed_out:
            report.timed_out_runs += 1
            cell.timed_out_runs += 1
        if not outcome.decided:
            continue
        report.decided_runs += 1
        cell.decided_runs += 1
        if outcome.decided_value is not None:
            report.values[outcome.decided_value] = (
                report.values.get(outcome.decided_value, 0) + 1
            )
            cell.values[outcome.decided_value] = (
                cell.values.get(outcome.decided_value, 0) + 1
            )
        for sink, value in (
            (rounds, float(outcome.max_round)),
            (latencies, outcome.finished_at),
            (messages, float(outcome.messages_sent)),
        ):
            sink.append(value)
        cell_rounds.append(float(outcome.max_round))
        cell_latencies.append(outcome.finished_at)
        cell_messages.append(float(outcome.messages_sent))
    report.rounds = summarize(rounds)
    report.latency = summarize(latencies)
    report.messages = summarize(messages)
    for cell, cell_rounds, cell_latencies, cell_messages in per_cell.values():
        cell.rounds = summarize(cell_rounds)
        cell.latency = summarize(cell_latencies)
        cell.messages = summarize(cell_messages)
        report.cells[cell.cell_id] = cell
    return report


def group_outcomes(
    outcomes: Iterable["ScenarioOutcome"], by: Sequence[str]
) -> dict[str, MatrixReport]:
    """Regroup outcomes along arbitrary scenario axes.

    ``by`` names registered axes (or their aliases); each distinct value
    combination becomes one group keyed by a readable label like
    ``"k=1/faults=2"``, aggregated into its own :class:`MatrixReport`.
    Groups appear in first-seen (matrix) order.  Unknown axis names
    raise ``ValueError`` with the registered vocabulary.
    """
    from ..orchestration.axes import AXES

    axes = [AXES.resolve(name) for name in by]
    buckets: dict[str, list["ScenarioOutcome"]] = {}
    for outcome in outcomes:
        label = "/".join(
            f"{axis.name}={axis.of_spec(outcome.spec)}" for axis in axes
        )
        buckets.setdefault(label, []).append(outcome)
    return {label: aggregate_outcomes(group) for label, group in buckets.items()}


def render_group_table(grouped: dict[str, MatrixReport]) -> str:
    """Render a :func:`group_outcomes` result as an aligned text table
    (one row per group, same placeholder conventions as
    :func:`render_matrix_table`)."""
    from ..orchestration.sweeps import format_table

    if not grouped:
        return "(no scenarios)"
    rows: list[Sequence[object]] = []
    for label, report in grouped.items():
        rows.append([
            label,
            f"{report.decided_runs}/{report.runs}",
            f"{report.rounds.mean:.2f}" if report.rounds.count else "-",
            f"{report.messages.mean:.0f}" if report.messages.count else "-",
            report.timed_out_runs,
            "OK" if report.all_safe else "VIOLATED",
        ])
    return format_table(
        ["group", "decided", "mean rounds", "mean messages", "timeouts",
         "safety"],
        rows,
    )


def render_matrix_table(report: MatrixReport) -> str:
    """Render the per-cell breakdown as an aligned text table.

    Cells without timing samples (every run timed out, errored, or the
    report is empty) render ``-`` placeholders rather than fake zeros;
    an empty report yields just the header with a note.
    """
    from ..orchestration.sweeps import format_table

    if not report.cells:
        return "(no scenarios)"
    rows: list[Sequence[object]] = []
    for cell in report.cells.values():
        rows.append([
            cell.cell_id,
            f"{cell.decided_runs}/{cell.runs}",
            f"{cell.rounds.mean:.2f}" if cell.rounds.count else "-",
            f"{cell.rounds.p90:.0f}" if cell.rounds.count else "-",
            f"{cell.messages.mean:.0f}" if cell.messages.count else "-",
            cell.timed_out_runs,
            "OK" if cell.invariant_failures == 0 else "VIOLATED",
        ])
    return format_table(
        ["cell", "decided", "mean rounds", "p90 rounds", "mean messages",
         "timeouts", "safety"],
        rows,
    )
