"""Analytic predictions from Sections 5.2 and 5.4.

These functions compute, without running the simulator, the quantities
the round-complexity experiments (E5, E6) compare against:

* ``alpha``/``beta`` witness-set counts and the ``beta * n`` worst-case
  horizon (re-exported from :mod:`repro.core.coord`);
* the *first good round* for a concrete fault pattern and bisource
  placement — the round at which Lemma 3's conditions are first met, a
  sharp per-configuration prediction of the EA convergence round in the
  timely-from-the-start model.
"""

from __future__ import annotations

from typing import Iterable

from ..core.coord import (  # noqa: F401  (re-exported analytic surface)
    alpha,
    beta,
    combination_unrank,
    coordinator,
    f_set,
    f_set_index,
    worst_case_round_bound,
)
from ..errors import ConfigurationError

__all__ = [
    "alpha",
    "beta",
    "combination_unrank",
    "coordinator",
    "f_set",
    "f_set_index",
    "worst_case_round_bound",
    "cycle_length",
    "is_good_round",
    "first_good_round",
    "good_round_density",
]


def cycle_length(n: int, t: int, k: int = 0) -> int:
    """Rounds after which the (coordinator, F) pair sequence repeats."""
    return worst_case_round_bound(n, t, k)


def is_good_round(
    r: int,
    n: int,
    t: int,
    bisource: int,
    x_plus: Iterable[int],
    correct: Iterable[int],
    k: int = 0,
) -> bool:
    """Whether round ``r`` satisfies Lemma 3's structural conditions.

    A round is *good* when (a) its coordinator is the bisource, (b) its
    witness set contains the bisource's timely output set ``X+``, and
    (c) the witness set contains at most ``k`` faulty processes (for
    ``k = 0`` this is the paper's ``F(r) ⊆ C``).
    """
    correct_set = frozenset(correct)
    x_plus_set = frozenset(x_plus)
    if coordinator(r, n) != bisource:
        return False
    members = f_set(r, n, t, k)
    if not x_plus_set <= members:
        return False
    return len(members - correct_set) <= k


def first_good_round(
    n: int,
    t: int,
    bisource: int,
    x_plus: Iterable[int],
    correct: Iterable[int],
    k: int = 0,
) -> int:
    """The first good round for this configuration.

    In the ``<t+1+k>bisource``-from-the-start model with round timeouts
    exceeding ``2 * delta`` by that round, the EA object returns a common
    value at the first good round at the latest, so this is the analytic
    convergence-round prediction for experiment E5/E6.  Searches one full
    (coordinator, F) cycle; a good round always exists within it.
    """
    horizon = cycle_length(n, t, k)
    for r in range(1, horizon + 1):
        if is_good_round(r, n, t, bisource, x_plus, correct, k):
            return r
    raise ConfigurationError(
        f"no good round within {horizon} rounds — x_plus must contain only "
        f"correct processes and have at most n - t members"
    )


def good_round_density(
    n: int,
    t: int,
    bisource: int,
    x_plus: Iterable[int],
    correct: Iterable[int],
    k: int = 0,
) -> float:
    """Fraction of rounds in one full cycle that are good.

    A coarse indicator of how often the algorithm gets a convergence
    opportunity once stabilized.
    """
    horizon = cycle_length(n, t, k)
    good = sum(
        1
        for r in range(1, horizon + 1)
        if is_good_round(r, n, t, bisource, x_plus, correct, k)
    )
    return good / horizon
