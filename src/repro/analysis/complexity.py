"""Analytic message-complexity accounting.

The algorithms' costs decompose cleanly:

* one Bracha RB instance: ``n`` INIT + ``n²`` ECHO + ``n²`` READY sends
  when every process participates (Byzantine silence only lowers this);
* one CB instance: ``n`` RB instances (one per proposer);
* one adopt-commit: one CB instance + ``n`` RB instances (the AC_EST
  messages are RB-broadcast);
* one EA round: one CB instance + three plain all-to-all stages
  (EA_PROP2, EA_COORD — coordinator only, EA_RELAY);
* one consensus round: one EA round + one adopt-commit;
* consensus setup/closure: the ``CB[0]`` instance plus up to ``n - t``
  DECIDE RB instances.

These formulas give the Θ(n³)-per-round shape the E4 experiment
measures; helpers here expose the per-abstraction budget so tests and
benchmarks can assert measured counts against predicted ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "rb_instance_messages",
    "cb_instance_messages",
    "adopt_commit_messages",
    "ea_round_messages",
    "consensus_round_messages",
    "consensus_overhead_messages",
    "ConsensusBudget",
    "consensus_budget",
]


def rb_instance_messages(n: int) -> int:
    """Upper bound on sends in one fully-participated RB instance."""
    return n + 2 * n * n


def cb_instance_messages(n: int) -> int:
    """Upper bound on sends in one CB instance (n proposer RBs)."""
    return n * rb_instance_messages(n)


def adopt_commit_messages(n: int) -> int:
    """Upper bound for one adopt-commit: its CB + n AC_EST RBs."""
    return cb_instance_messages(n) + n * rb_instance_messages(n)


def ea_round_messages(n: int) -> int:
    """Upper bound for one EA round.

    One CB instance, an EA_PROP2 all-to-all (n² sends), one EA_COORD
    broadcast (n sends) and an EA_RELAY all-to-all (n² sends).
    """
    return cb_instance_messages(n) + n * n + n + n * n


def consensus_round_messages(n: int) -> int:
    """Upper bound for one consensus round (EA round + adopt-commit)."""
    return ea_round_messages(n) + adopt_commit_messages(n)


def consensus_overhead_messages(n: int, t: int) -> int:
    """Setup + closure outside the round loop: CB[0] + DECIDE RBs."""
    return cb_instance_messages(n) + (n - t) * rb_instance_messages(n)


@dataclass(frozen=True)
class ConsensusBudget:
    """Predicted message budget for a whole consensus run."""

    n: int
    t: int
    rounds: int
    per_round: int
    overhead: int

    @property
    def total(self) -> int:
        """Ceiling on total sends for the run."""
        return self.rounds * self.per_round + self.overhead


def consensus_budget(n: int, t: int, rounds: int) -> ConsensusBudget:
    """The full predicted budget for a run of ``rounds`` rounds."""
    return ConsensusBudget(
        n=n,
        t=t,
        rounds=rounds,
        per_round=consensus_round_messages(n),
        overhead=consensus_overhead_messages(n, t),
    )
