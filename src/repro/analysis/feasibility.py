"""The m-valued feasibility condition (paper Sections 2.3 and 3).

CB-broadcast, adopt-commit and m-valued consensus exclude values proposed
only by Byzantine processes; this is possible iff some value is proposed
by at least ``t + 1`` correct processes, which — with ``n - t`` correct
processes proposing at most ``m`` distinct values — is guaranteed exactly
when ``n - t > m * t``.
"""

from __future__ import annotations

from ..errors import FeasibilityError

__all__ = [
    "is_feasible",
    "check_feasibility",
    "max_values",
    "min_processes",
    "feasible_cell",
    "clamp_values",
]


def is_feasible(n: int, t: int, m: int) -> bool:
    """Whether ``m`` distinct correct proposals are admissible: ``n-t > m*t``.

    ``t = 0`` systems are always feasible (no Byzantine noise to exclude).
    """
    if m < 1:
        return False
    if t == 0:
        return True
    return n - t > m * t


def check_feasibility(n: int, t: int, m: int) -> None:
    """Raise :class:`FeasibilityError` unless ``is_feasible(n, t, m)``."""
    if not is_feasible(n, t, m):
        raise FeasibilityError(
            f"m-valued feasibility violated: need n - t > m*t, got "
            f"n={n}, t={t}, m={m} (n-t={n - t}, m*t={m * t}); "
            f"max admissible m is {max_values(n, t)}"
        )


def max_values(n: int, t: int) -> int:
    """Largest admissible ``m``: ``floor((n - (t+1)) / t)`` (paper §2.3).

    Returns a large sentinel when ``t = 0`` (no restriction).
    """
    if t == 0:
        return n  # no Byzantine processes: any profile is fine
    return (n - (t + 1)) // t


def feasible_cell(
    n: int, t: int, k: int = 0, faults: int | None = None
) -> bool:
    """Whether one scenario cell satisfies every structural bound.

    Combines the resilience bound ``n > 3t``, the Section 5.4 knob bound
    ``0 <= k <= t`` (a ``<t+1+k>bisource`` needs at least ``t + 1 + k``
    processes worth of slack), and the fault-count bounds
    ``0 <= faults <= t`` and ``faults < n`` (``faults=None`` means the
    full budget ``t``).  The scenario-axis registry uses this as the
    shared feasibility hook for the ``size``, ``k`` and ``faults`` axes.
    """
    f = t if faults is None else faults
    return n > 3 * t and 0 <= k <= t and 0 <= f <= t and f < n


def clamp_values(
    n: int,
    t: int,
    requested: int,
    faults: int | None = None,
    variant: str = "standard",
) -> int:
    """Clamp a requested value diversity ``m`` for one cell.

    The standard variant is bounded by :func:`max_values` (the ⊥ variant
    tolerates any diversity), and every variant is bounded by the number
    of correct processes ``n - faults`` — you cannot deal more distinct
    values than there are proposers.  Always at least 1.
    """
    m = requested
    if variant == "standard":
        m = max(1, min(m, max_values(n, t)))
    f = t if faults is None else faults
    return max(1, min(m, n - f))


def min_processes(t: int, m: int) -> int:
    """Smallest ``n`` supporting ``m``-valued agreement with ``t`` faults.

    Combines the resilience bound ``n > 3t`` with the feasibility bound
    ``n > m*t + t``.
    """
    return max(3 * t + 1, m * t + t + 1)
