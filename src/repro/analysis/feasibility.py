"""The m-valued feasibility condition (paper Sections 2.3 and 3).

CB-broadcast, adopt-commit and m-valued consensus exclude values proposed
only by Byzantine processes; this is possible iff some value is proposed
by at least ``t + 1`` correct processes, which — with ``n - t`` correct
processes proposing at most ``m`` distinct values — is guaranteed exactly
when ``n - t > m * t``.
"""

from __future__ import annotations

from ..errors import FeasibilityError

__all__ = [
    "is_feasible",
    "check_feasibility",
    "max_values",
    "min_processes",
]


def is_feasible(n: int, t: int, m: int) -> bool:
    """Whether ``m`` distinct correct proposals are admissible: ``n-t > m*t``.

    ``t = 0`` systems are always feasible (no Byzantine noise to exclude).
    """
    if m < 1:
        return False
    if t == 0:
        return True
    return n - t > m * t


def check_feasibility(n: int, t: int, m: int) -> None:
    """Raise :class:`FeasibilityError` unless ``is_feasible(n, t, m)``."""
    if not is_feasible(n, t, m):
        raise FeasibilityError(
            f"m-valued feasibility violated: need n - t > m*t, got "
            f"n={n}, t={t}, m={m} (n-t={n - t}, m*t={m * t}); "
            f"max admissible m is {max_values(n, t)}"
        )


def max_values(n: int, t: int) -> int:
    """Largest admissible ``m``: ``floor((n - (t+1)) / t)`` (paper §2.3).

    Returns a large sentinel when ``t = 0`` (no restriction).
    """
    if t == 0:
        return n  # no Byzantine processes: any profile is fine
    return (n - (t + 1)) // t


def min_processes(t: int, m: int) -> int:
    """Smallest ``n`` supporting ``m``-valued agreement with ``t`` faults.

    Combines the resilience bound ``n > 3t`` with the feasibility bound
    ``n > m*t + t``.
    """
    return max(3 * t + 1, m * t + t + 1)
