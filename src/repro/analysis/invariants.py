"""Machine-checkable protocol properties, re-verified after every run.

The paper's theorems are universally quantified over schedules; a
simulation cannot prove them, but it can *falsify* them cheaply.  These
checkers inspect the final state of the correct processes' protocol
objects and flag any violation of:

* CONS-Agreement / CONS-Validity (Theorem 4);
* AC-Quasi-agreement / AC-Obligation, via the per-round history;
* RB-Unicity consistency across processes (no two correct processes
  RB-delivered different values for one instance);
* CB-Set Validity (``cb_valid`` of a correct process contains only
  correct proposals, plus ⊥ for the Section 7 variant).

Integration tests and benchmarks call :func:`verify_consensus_run` on
every run, so any safety regression in any module surfaces immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import InvariantViolation

# NOTE: ``repro.core`` imports the feasibility module from this package, so
# anything from ``repro.core`` (Tag, BOT) is imported lazily inside the
# checkers to keep the import graph acyclic.

__all__ = [
    "Violation",
    "InvariantReport",
    "check_agreement",
    "check_validity",
    "check_rb_consistency",
    "check_cb_validity",
    "check_ac_round_safety",
    "verify_consensus_run",
]


@dataclass(frozen=True)
class Violation:
    """A single falsified property."""

    check: str
    description: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.description}"


@dataclass
class InvariantReport:
    """The outcome of a batch of checks."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no property was falsified."""
        return not self.violations

    def extend(self, violations: list[Violation]) -> None:
        """Accumulate more findings."""
        self.violations.extend(violations)

    def raise_if_failed(self) -> None:
        """Raise :class:`InvariantViolation` listing every finding."""
        if self.violations:
            summary = "; ".join(str(v) for v in self.violations)
            raise InvariantViolation(f"{len(self.violations)} violation(s): {summary}")


def check_agreement(decisions: Mapping[int, Any]) -> list[Violation]:
    """CONS-Agreement: all decided (correct) processes decided equally."""
    distinct: dict[Any, list[int]] = {}
    for pid, value in decisions.items():
        distinct.setdefault(value, []).append(pid)
    if len(distinct) > 1:
        return [
            Violation(
                "agreement",
                f"correct processes decided differently: "
                + ", ".join(f"{v!r} by {pids}" for v, pids in distinct.items()),
            )
        ]
    return []


def check_validity(
    decisions: Mapping[int, Any],
    correct_proposals: Mapping[int, Any],
    allow_bot: bool = False,
) -> list[Violation]:
    """CONS-Validity: each decided value was proposed by a correct process
    (⊥ additionally allowed for the Section 7 variant)."""
    from ..core.values import BOT

    admissible = set(correct_proposals.values())
    violations = []
    for pid, value in decisions.items():
        if value in admissible:
            continue
        if allow_bot and value is BOT:
            continue
        violations.append(
            Violation(
                "validity",
                f"p{pid} decided {value!r}, which no correct process proposed "
                f"(correct proposals: {sorted(map(repr, admissible))})",
            )
        )
    return violations


def check_rb_consistency(rb_engines: Mapping[int, Any]) -> list[Violation]:
    """No two correct processes RB-delivered different values for one
    (origin, instance) — the cross-process face of RB-Unicity/T2."""
    seen: dict[Any, tuple[int, Any]] = {}
    violations = []
    for pid, rb in rb_engines.items():
        for key, value in rb.delivered.items():
            if key not in seen:
                seen[key] = (pid, value)
            else:
                other_pid, other_value = seen[key]
                if other_value != value:
                    violations.append(
                        Violation(
                            "rb-consistency",
                            f"instance {key!r}: p{other_pid} delivered "
                            f"{other_value!r} but p{pid} delivered {value!r}",
                        )
                    )
    return violations


def check_cb_validity(
    cb_instances: Mapping[int, Any],
    correct_proposals: Mapping[int, Any],
    allow_bot: bool = False,
) -> list[Violation]:
    """CB-Set Validity on the initial CB[0]: every value in a correct
    process's ``cb_valid`` was proposed by a correct process."""
    from ..core.values import BOT

    admissible = set(correct_proposals.values())
    violations = []
    for pid, cb in cb_instances.items():
        for value in cb.cb_valid:
            if value in admissible:
                continue
            if allow_bot and value is BOT:
                continue
            violations.append(
                Violation(
                    "cb-set-validity",
                    f"p{pid} holds {value!r} in cb_valid, proposed by no "
                    f"correct process",
                )
            )
    return violations


def check_ac_round_safety(consensi: Mapping[int, Any]) -> list[Violation]:
    """AC-Quasi-agreement via history: if any correct process committed
    ``v`` in round ``r``, every correct outcome at ``r`` carries ``v``."""
    from ..core.adopt_commit import Tag

    per_round: dict[int, list[tuple[int, Any, Any]]] = {}
    for pid, consensus in consensi.items():
        for r, tag, est in consensus.est_history:
            per_round.setdefault(r, []).append((pid, tag, est))
    violations = []
    for r, outcomes in per_round.items():
        committed = {est for _, tag, est in outcomes if tag is Tag.COMMIT}
        if not committed:
            continue
        if len(committed) > 1:
            violations.append(
                Violation(
                    "ac-quasi-agreement",
                    f"round {r}: two different values committed: {committed!r}",
                )
            )
            continue
        (value,) = committed
        for pid, tag, est in outcomes:
            if est != value:
                violations.append(
                    Violation(
                        "ac-quasi-agreement",
                        f"round {r}: p{pid} returned <{tag.value}, {est!r}> "
                        f"while {value!r} was committed",
                    )
                )
    return violations


def verify_consensus_run(
    decisions: Mapping[int, Any],
    correct_proposals: Mapping[int, Any],
    consensi: Mapping[int, Any] | None = None,
    rb_engines: Mapping[int, Any] | None = None,
    allow_bot: bool = False,
) -> InvariantReport:
    """Run every applicable checker; returns the combined report."""
    report = InvariantReport()
    report.extend(check_agreement(decisions))
    report.extend(check_validity(decisions, correct_proposals, allow_bot=allow_bot))
    if rb_engines is not None:
        report.extend(check_rb_consistency(rb_engines))
    if consensi is not None:
        report.extend(check_ac_round_safety(consensi))
        report.extend(
            check_cb_validity(
                {pid: c.cb0 for pid, c in consensi.items()},
                correct_proposals,
                allow_bot=allow_bot,
            )
        )
    return report
