"""Run metrics: message counts, decision latency, round statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..net.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network

__all__ = ["MessageCounter", "summarize", "LatencySummary"]


class MessageCounter:
    """Instrumentation sink counting sends/deliveries by tag and sender.

    Attaches to a network's ``net.send`` / ``net.deliver`` probes (one
    sink per probe, no ``kind`` string dispatch).  The network itself
    already counts ``messages_sent`` / ``sent_by_tag`` natively; attach
    a counter only when delivery counts or per-sender breakdowns are
    actually needed — a detached probe costs nothing.
    """

    def __init__(self) -> None:
        self.sends_by_tag: dict[str, int] = {}
        self.delivers_by_tag: dict[str, int] = {}
        self.sends_by_sender: dict[int, int] = {}
        self.total_sends = 0
        self.total_delivers = 0

    def attach(self, network: "Network") -> "MessageCounter":
        """Register this counter on a network; returns self for chaining."""
        from ..instrumentation import NET_DELIVER, NET_SEND

        network.bus.attach(NET_SEND, self.on_send)
        network.bus.attach(NET_DELIVER, self.on_deliver)
        return self

    def detach(self, network: "Network") -> None:
        """Remove this counter's sinks from a network's probes."""
        from ..instrumentation import NET_DELIVER, NET_SEND

        network.bus.detach(NET_SEND, self.on_send)
        network.bus.detach(NET_DELIVER, self.on_deliver)

    def reset(self) -> None:
        """Zero every counter (for reuse across runs)."""
        self.sends_by_tag.clear()
        self.delivers_by_tag.clear()
        self.sends_by_sender.clear()
        self.total_sends = 0
        self.total_delivers = 0

    def on_send(self, message: Message, time: float) -> None:
        """``net.send`` probe sink."""
        self.total_sends += 1
        self.sends_by_tag[message.tag] = self.sends_by_tag.get(message.tag, 0) + 1
        self.sends_by_sender[message.sender] = (
            self.sends_by_sender.get(message.sender, 0) + 1
        )

    def on_deliver(self, message: Message, time: float) -> None:
        """``net.deliver`` probe sink."""
        self.total_delivers += 1
        self.delivers_by_tag[message.tag] = (
            self.delivers_by_tag.get(message.tag, 0) + 1
        )


@dataclass
class LatencySummary:
    """Five-number-ish summary of a sample of latencies/rounds."""

    count: int = 0
    mean: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    values: list[float] = field(default_factory=list, repr=False)


def summarize(values: list[float]) -> LatencySummary:
    """Summarize a sample (empty input yields an all-zero summary)."""
    if not values:
        return LatencySummary()
    ordered = sorted(values)

    def percentile(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(0.5),
        p90=percentile(0.9),
        values=list(values),
    )
