"""Run metrics: message counts, decision latency, round statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..net.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network

__all__ = ["MessageCounter", "summarize", "LatencySummary"]


class MessageCounter:
    """Network hook counting sends and deliveries by tag and by sender."""

    def __init__(self) -> None:
        self.sends_by_tag: dict[str, int] = {}
        self.delivers_by_tag: dict[str, int] = {}
        self.sends_by_sender: dict[int, int] = {}
        self.total_sends = 0
        self.total_delivers = 0

    def attach(self, network: "Network") -> "MessageCounter":
        """Register this counter on a network; returns self for chaining."""
        network.add_hook(self._on_event)
        return self

    def _on_event(self, kind: str, message: Message, time: float) -> None:
        if kind == "send":
            self.total_sends += 1
            self.sends_by_tag[message.tag] = self.sends_by_tag.get(message.tag, 0) + 1
            self.sends_by_sender[message.sender] = (
                self.sends_by_sender.get(message.sender, 0) + 1
            )
        elif kind == "deliver":
            self.total_delivers += 1
            self.delivers_by_tag[message.tag] = (
                self.delivers_by_tag.get(message.tag, 0) + 1
            )


@dataclass
class LatencySummary:
    """Five-number-ish summary of a sample of latencies/rounds."""

    count: int = 0
    mean: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    values: list[float] = field(default_factory=list, repr=False)


def summarize(values: list[float]) -> LatencySummary:
    """Summarize a sample (empty input yields an all-zero summary)."""
    if not values:
        return LatencySummary()
    ordered = sorted(values)

    def percentile(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(0.5),
        p90=percentile(0.9),
        values=list(values),
    )
