"""Textual progress rendering for long-running commands.

``repro dispatch status`` and ``repro collect --follow`` both need the
same thing: a compact, dependency-free progress line that reads well in
a terminal, a CI log and a file.  This module is deliberately generic —
it knows about counts and elapsed seconds, not about shards or units —
so any layer can use it without importing orchestration machinery.
"""

from __future__ import annotations

import shutil

__all__ = ["format_eta", "render_progress", "terminal_bar_width"]

#: The classic bar width, used when the terminal is wide enough (or its
#: width is unknowable).
_DEFAULT_WIDTH = 30


def terminal_bar_width(reserve: int = 30) -> int:
    """A bar width that fits the current terminal, ``reserve`` columns
    left for the counts/percent suffix.

    Environments without a real terminal (CI logs, pipes, exotic
    platforms where ``get_terminal_size`` itself fails) fall back to the
    default width rather than raising — a progress line must never be
    the thing that crashes a sweep.
    """
    try:
        columns = shutil.get_terminal_size().columns
    except (ValueError, OSError):  # pragma: no cover - platform quirks
        return _DEFAULT_WIDTH
    return max(1, min(_DEFAULT_WIDTH, columns - reserve))


def render_progress(done: int, total: int, width: int = _DEFAULT_WIDTH) -> str:
    """A fixed-width bar: ``[######........] 12/40 (30%)``.

    Degrades instead of raising on every odd input: ``total <= 0``
    (nothing to do, or size unknown) renders an indefinite form,
    negative ``done`` clamps to 0, ``done > total`` clamps to full, and
    ``width < 1`` (a too-narrow terminal fed through
    :func:`terminal_bar_width` arithmetic) clamps to a single cell.
    """
    width = max(1, width)
    if total <= 0:
        return f"[{'-' * width}] {max(0, done)}/?"
    done = max(0, min(done, total))
    filled = (done * width) // total
    percent = (100 * done) // total
    return f"[{'#' * filled}{'.' * (width - filled)}] {done}/{total} ({percent}%)"


def format_eta(done: int, total: int, elapsed: float) -> str:
    """Naive linear ETA from progress so far: ``~12s left`` (empty when
    no rate is observable yet or the work is finished)."""
    if done <= 0 or elapsed <= 0 or total <= done:
        return ""
    remaining = (total - done) * (elapsed / done)
    if remaining >= 90:
        return f"~{remaining / 60:.1f}min left"
    return f"~{remaining:.0f}s left"
