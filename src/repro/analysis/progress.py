"""Textual progress rendering for long-running commands.

``repro dispatch status`` and ``repro collect --follow`` both need the
same thing: a compact, dependency-free progress line that reads well in
a terminal, a CI log and a file.  This module is deliberately generic —
it knows about counts and elapsed seconds, not about shards or units —
so any layer can use it without importing orchestration machinery.
"""

from __future__ import annotations

__all__ = ["format_eta", "render_progress"]


def render_progress(done: int, total: int, width: int = 30) -> str:
    """A fixed-width bar: ``[######........] 12/40 (30%)``.

    ``total <= 0`` (nothing to do, or size unknown) renders an indefinite
    form instead of dividing by zero.
    """
    if total <= 0:
        return f"[{'-' * width}] {done}/?"
    done = max(0, min(done, total))
    filled = (done * width) // total
    percent = (100 * done) // total
    return f"[{'#' * filled}{'.' * (width - filled)}] {done}/{total} ({percent}%)"


def format_eta(done: int, total: int, elapsed: float) -> str:
    """Naive linear ETA from progress so far: ``~12s left`` (empty when
    no rate is observable yet or the work is finished)."""
    if done <= 0 or elapsed <= 0 or total <= done:
        return ""
    remaining = (total - done) * (elapsed / done)
    if remaining >= 90:
        return f"~{remaining / 60:.1f}min left"
    return f"~{remaining:.0f}s left"
