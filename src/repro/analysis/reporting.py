"""Aggregation and reporting over ensembles of consensus runs.

The benchmarks and the CLI sweep command need the same small set of
aggregates over a list of :class:`~repro.orchestration.runner.ConsensusRunResult`:
decision rate, round/latency/message summaries, decided-value histogram,
and a rendered table.  This module centralises them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .metrics import LatencySummary, summarize

__all__ = ["EnsembleReport", "aggregate", "render_ensemble_table"]


@dataclass
class EnsembleReport:
    """Aggregates over one ensemble of runs (typically a seed sweep)."""

    #: Total runs aggregated.
    runs: int = 0
    #: Runs in which every correct process decided.
    decided_runs: int = 0
    #: Histogram of decided values (keyed by ``repr``).
    values: dict[str, int] = field(default_factory=dict)
    #: Summary of the max round reached per decided run.
    rounds: LatencySummary = field(default_factory=LatencySummary)
    #: Summary of virtual decision latency per decided run.
    latency: LatencySummary = field(default_factory=LatencySummary)
    #: Summary of total messages per decided run.
    messages: LatencySummary = field(default_factory=LatencySummary)
    #: Whether every run passed its invariant checks.
    all_safe: bool = True
    #: Spread between the first and last decision within a run (max).
    max_decision_spread: float = 0.0

    @property
    def decision_rate(self) -> float:
        """Fraction of runs in which every correct process decided."""
        return self.decided_runs / self.runs if self.runs else 0.0


def aggregate(results: Iterable[Any]) -> EnsembleReport:
    """Aggregate an iterable of :class:`ConsensusRunResult` objects."""
    report = EnsembleReport()
    rounds: list[float] = []
    latencies: list[float] = []
    messages: list[float] = []
    for result in results:
        report.runs += 1
        report.all_safe = report.all_safe and result.invariants.ok
        if not result.all_decided:
            continue
        report.decided_runs += 1
        key = repr(result.decided_value)
        report.values[key] = report.values.get(key, 0) + 1
        rounds.append(float(result.max_round))
        latencies.append(max(result.decision_times.values()))
        messages.append(float(result.messages_sent))
        if len(result.decision_times) > 1:
            spread = max(result.decision_times.values()) - min(
                result.decision_times.values()
            )
            report.max_decision_spread = max(report.max_decision_spread, spread)
    report.rounds = summarize(rounds)
    report.latency = summarize(latencies)
    report.messages = summarize(messages)
    return report


def render_ensemble_table(
    labelled_reports: Sequence[tuple[str, EnsembleReport]],
) -> str:
    """Render labelled ensemble reports as an aligned text table."""
    from ..orchestration.sweeps import format_table

    rows = []
    for label, report in labelled_reports:
        rows.append([
            label,
            f"{report.decided_runs}/{report.runs}",
            f"{report.rounds.mean:.2f}" if report.rounds.count else "-",
            f"{report.latency.mean:.1f}" if report.latency.count else "-",
            f"{report.messages.mean:.0f}" if report.messages.count else "-",
            "OK" if report.all_safe else "VIOLATED",
        ])
    return format_table(
        ["configuration", "decided", "mean rounds", "mean latency",
         "mean messages", "safety"],
        rows,
    )
