"""Schedule search: hunt for slow or non-converging executions.

The worst case of an eventually-synchronous algorithm hides in specific
schedules.  These helpers sweep seeds to find the execution that
maximises a cost (rounds, latency) or fails to decide within a budget —
useful for regression-hunting and for calibrating the benchmark budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    # Imported lazily at call time: repro.core depends on this package's
    # feasibility module, so a module-level orchestration import would
    # close an import cycle.
    from ..orchestration.config import RunConfig
    from ..orchestration.runner import ConsensusRunResult

__all__ = ["SearchOutcome", "find_worst_seed", "find_non_converging_seed"]


@dataclass
class SearchOutcome:
    """The result of a seed search."""

    seed: int
    cost: float
    result: "ConsensusRunResult"


def find_worst_seed(
    config: "RunConfig",
    seeds: Iterable[int],
    cost: "Callable[[ConsensusRunResult], float] | None" = None,
) -> SearchOutcome:
    """Run ``config`` across ``seeds``; return the costliest execution.

    The default cost is the largest round number any correct process
    entered (timed-out runs cost ``inf`` — they are the worst by
    definition).  Invariant checks stay on: a safety violation raises
    immediately whatever the search is optimising.
    """
    from ..orchestration.runner import run_consensus

    def default_cost(result) -> float:
        if not result.all_decided:
            return float("inf")
        return float(result.max_round)

    cost_fn = cost if cost is not None else default_cost
    worst: SearchOutcome | None = None
    for seed in seeds:
        result = run_consensus(replace(config, seed=seed))
        value = cost_fn(result)
        if worst is None or value > worst.cost:
            worst = SearchOutcome(seed=seed, cost=value, result=result)
    if worst is None:
        raise ValueError("seed search needs at least one seed")
    return worst


def find_non_converging_seed(
    config: "RunConfig",
    seeds: Iterable[int],
) -> SearchOutcome | None:
    """Return the first seed whose run fails to fully decide, or None.

    Used to demonstrate liveness gaps (e.g. baselines under minimal
    synchrony) and to validate that the paper's algorithm has none
    within a seed ensemble.
    """
    from ..orchestration.runner import run_consensus

    for seed in seeds:
        result = run_consensus(replace(config, seed=seed))
        if not result.all_decided:
            return SearchOutcome(seed=seed, cost=float("inf"), result=result)
    return None
