"""ASCII timelines from execution traces.

Renders selected trace events on one lane per process, scaled to
virtual time — a quick visual answer to "who was doing what when"
without leaving the terminal.

Example output::

    virtual time 0.0 .. 49.9
    p1 |S···········R·······D|
    p2 |S········R······D····|
    p3 |S·············R····D·|
      markers: S=first send, R=first rb_deliver, D=decide
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .traces import Tracer

__all__ = ["render_timeline", "DEFAULT_MARKERS"]

#: Default mapping of trace-event kinds to single-character markers.
DEFAULT_MARKERS: dict[str, str] = {
    "send": "S",
    "deliver": "d",
    "rb_deliver": "R",
    "decide": "D",
}


def render_timeline(
    tracer: Tracer,
    pids: Iterable[int],
    markers: Mapping[str, str] | None = None,
    width: int = 72,
    first_only: bool = True,
) -> str:
    """Render one text lane per process.

    Args:
        tracer: The trace to visualise.
        pids: Which process lanes to draw, in order.
        markers: ``kind -> single char``; kinds absent from the mapping
            are skipped.  Defaults to :data:`DEFAULT_MARKERS`.
        width: Character width of each lane.
        first_only: Plot only the first occurrence of each (pid, kind) —
            the usual view; ``False`` plots every event (later events
            overwrite earlier ones in a shared cell).

    Returns:
        The multi-line drawing, including a legend.
    """
    marks = dict(DEFAULT_MARKERS if markers is None else markers)
    pid_list = list(pids)
    events = [
        event
        for event in tracer.events
        if event.kind in marks and event.pid in pid_list
    ]
    if not events:
        return "(no matching trace events)"
    start = min(event.time for event in events)
    end = max(event.time for event in events)
    span = max(end - start, 1e-9)

    def column(time: float) -> int:
        return min(width - 1, int((time - start) / span * (width - 1)))

    lanes = {pid: ["·"] * width for pid in pid_list}
    seen: set[tuple[int, str]] = set()
    for event in events:
        key = (event.pid, event.kind)
        if first_only and key in seen:
            continue
        seen.add(key)
        lanes[event.pid][column(event.time)] = marks[event.kind]

    label_width = max(len(f"p{pid}") for pid in pid_list)
    lines = [f"virtual time {start:g} .. {end:g}"]
    for pid in pid_list:
        label = f"p{pid}".rjust(label_width)
        lines.append(f"{label} |{''.join(lanes[pid])}|")
    legend = ", ".join(
        f"{char}={kind}" for kind, char in sorted(marks.items(), key=lambda x: x[1])
    )
    lines.append(f"{' ' * label_width}  markers: {legend}")
    return "\n".join(lines)
