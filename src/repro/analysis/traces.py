"""Structured execution traces with JSON export.

A :class:`Tracer` can be attached to a network (recording every send and
delivery) and fed protocol-level events (RB deliveries, decisions).  The
invariant checkers and the debugging examples consume these traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from ..net.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event.

    ``kind`` is one of ``"send"``, ``"deliver"``, ``"rb_deliver"``,
    ``"decide"`` or any protocol-chosen label; ``detail`` is a flat,
    JSON-friendly mapping.
    """

    time: float
    kind: str
    pid: int | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> dict[str, Any]:
        """A JSON-serializable representation (values coerced to strings
        when they are not primitive)."""
        def coerce(value: Any) -> Any:
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            return repr(value)

        return {
            "time": self.time,
            "kind": self.kind,
            "pid": self.pid,
            "detail": {key: coerce(val) for key, val in self.detail.items()},
        }


class Tracer:
    """An append-only event log.

    Attach to a network with :meth:`attach_network`; record protocol
    events with :meth:`record`.  ``max_events`` guards memory on long
    runs (oldest events are *not* evicted; recording just stops, and
    :attr:`truncated` flags it).
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self.truncated = False

    def attach_network(self, network: "Network") -> "Tracer":
        """Record every network send/delivery; returns self.

        Implemented as two instrumentation-bus sinks (``net.send`` /
        ``net.deliver``), so an unattached tracer costs the network
        nothing at all.
        """
        from ..instrumentation import NET_DELIVER, NET_SEND

        network.bus.attach(NET_SEND, self._on_send)
        network.bus.attach(NET_DELIVER, self._on_deliver)
        return self

    def record(
        self, time: float, kind: str, pid: int | None = None, **detail: Any
    ) -> None:
        """Append one event (no-op once ``max_events`` is reached)."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(TraceEvent(time=time, kind=kind, pid=pid, detail=detail))

    def _on_send(self, message: Message, time: float) -> None:
        self.record(
            time, "send", pid=message.sender,
            sender=message.sender, dest=message.dest, tag=message.tag,
            uid=message.uid, payload=message.payload,
        )

    def _on_deliver(self, message: Message, time: float) -> None:
        self.record(
            time, "deliver", pid=message.dest,
            sender=message.sender, dest=message.dest, tag=message.tag,
            uid=message.uid, payload=message.payload,
        )

    def filter(self, kind: str | None = None, pid: int | None = None) -> Iterator[TraceEvent]:
        """Iterate events matching the given kind and/or pid."""
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if pid is not None and event.pid != pid:
                continue
            yield event

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the whole trace to a JSON array."""
        return json.dumps([event.to_json_obj() for event in self.events], indent=indent)

    def __len__(self) -> int:
        return len(self.events)
