"""Comparator algorithms for the separation experiments (DESIGN.md E8)."""

from .randomized import BinaryValueBroadcast, CommonCoin, RandomizedBinaryConsensus
from .strong_bisource import StrongBisourceEA

__all__ = [
    "BinaryValueBroadcast",
    "CommonCoin",
    "RandomizedBinaryConsensus",
    "StrongBisourceEA",
]
