"""Randomized binary Byzantine consensus baseline (paper reference [22]).

The paper's introduction contrasts its deterministic, synchrony-minimal
algorithm with randomized algorithms that need *no* synchrony but only
terminate with probability 1.  This module implements the signature-free
binary algorithm of Mostéfaoui, Moumen and Raynal (PODC 2014) — reference
[22] of the paper — on the same simulation substrate:

* **BV-broadcast**: an all-to-all binary broadcast whose output set
  ``bin_values`` eventually contains only values proposed by correct
  processes (a binary sibling of the paper's CB-broadcast);
* per round: BV-broadcast the estimate, exchange AUX messages supported
  by ``bin_values``, then compare the surviving value set with a common
  coin — deciding when they match.

**Substitution note (DESIGN.md):** the common coin is a Rabin-style
shared random oracle, simulated by a seeded stream all processes share;
the adversary cannot read or bias it.  This is the standard idealisation
used by [22] itself.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from ..net.messages import Message
from ..runtime.process import Process
from ..sim.futures import Future
from ..sim.random import substream

__all__ = ["CommonCoin", "BinaryValueBroadcast", "RandomizedBinaryConsensus"]


class CommonCoin:
    """A perfect common coin: one shared random bit per round.

    All processes observing the same ``seed`` see identical, unbiased,
    adversary-independent bits — the random-oracle idealisation of [22].
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def flip(self, round_number: int) -> int:
        """The common bit for ``round_number`` (deterministic in seed)."""
        return substream(self.seed, "common-coin", round_number).randrange(2)


class BinaryValueBroadcast:
    """BV-broadcast ([22]): per-round all-to-all binary value filtering.

    Rules for value ``b`` in round ``r``:

    * relay ``BV(r, b)`` after receiving it from ``t + 1`` distinct
      senders (if not yet relayed);
    * add ``b`` to ``bin_values[r]`` after ``2t + 1`` distinct senders.

    Guarantees: ``bin_values`` only ever contains values BV-broadcast by
    correct processes; if all correct processes BV-broadcast ``b`` then
    ``b`` eventually joins every correct ``bin_values``; the sets
    converge.
    """

    TAG = "BV_VAL"

    def __init__(self, process: Process, n: int, t: int) -> None:
        self.process = process
        self.n = n
        self.t = t
        # (round, value) -> senders
        self._support: dict[tuple[int, int], set[int]] = {}
        self._relayed: set[tuple[int, int]] = set()
        self._bin_values: dict[int, set[int]] = {}
        process.register_handler(self.TAG, self._on_message)

    def broadcast(self, round_number: int, value: int) -> None:
        """BV-broadcast ``value`` for ``round_number``."""
        self._relayed.add((round_number, value))
        self.process.broadcast(self.TAG, (round_number, value))

    def bin_values(self, round_number: int) -> set[int]:
        """The live ``bin_values`` set for a round."""
        return self._bin_values.setdefault(round_number, set())

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or not isinstance(payload[0], int)
            or payload[1] not in (0, 1)
        ):
            return  # malformed Byzantine payload
        round_number, value = payload
        senders = self._support.setdefault((round_number, value), set())
        if message.sender in senders:
            return
        senders.add(message.sender)
        if len(senders) >= self.t + 1 and (round_number, value) not in self._relayed:
            self._relayed.add((round_number, value))
            self.process.broadcast(self.TAG, (round_number, value))
        if len(senders) >= 2 * self.t + 1:
            self.bin_values(round_number).add(value)


class RandomizedBinaryConsensus:
    """The MMR round loop: BV-broadcast, AUX exchange, common coin.

    Termination is probabilistic (expected O(1) rounds with a perfect
    coin) and requires **no synchrony whatsoever** — the baseline's
    selling point; the price is randomization and a binary value domain.
    """

    AUX = "RBC_AUX"

    def __init__(
        self,
        process: Process,
        n: int,
        t: int,
        coin: CommonCoin,
        max_rounds: int | None = None,
    ) -> None:
        if not n > 3 * t:
            raise ConfigurationError(f"requires n > 3t, got n={n}, t={t}")
        self.process = process
        self.n = n
        self.t = t
        self.coin = coin
        self.max_rounds = max_rounds
        self.bv = BinaryValueBroadcast(process, n, t)
        # round -> {sender: value} (first AUX per sender per round)
        self._aux: dict[int, dict[int, int]] = {}
        #: Resolves with the decided bit.
        self.decision: Future = Future(name=f"p{process.pid}.rbc-decision")
        #: Round at which this process decided (None before).
        self.decided_round: int | None = None
        #: Rounds entered so far.
        self.rounds_executed = 0
        process.register_handler(self.AUX, self._on_aux)

    async def propose(self, value: int) -> int:
        """Propose a bit; returns the decided bit (probabilistically)."""
        if value not in (0, 1):
            raise ConfigurationError(f"binary consensus takes 0 or 1, got {value!r}")
        est = value
        r = 0
        while self.max_rounds is None or r < self.max_rounds:
            r += 1
            self.rounds_executed = r
            self.bv.broadcast(r, est)
            await self.process.wait_until(lambda: bool(self.bv.bin_values(r)))
            # Broadcast one supported value (deterministic pick).
            w = min(self.bv.bin_values(r))
            self.process.broadcast(self.AUX, (r, w))
            values = await self.process.wait_until(lambda: self._aux_quorum(r))
            s = self.coin.flip(r)
            if len(values) == 1:
                (b,) = values
                est = b
                if b == s and not self.decision.done():
                    self.decided_round = r
                    self.decision.set_result(b)
                if self.decision.done() and self.decision.result() == est:
                    # Everyone with a singleton {b} decided or adopted b;
                    # keep looping so laggards can finish, unless capped.
                    if self.max_rounds is None and r >= (self.decided_round or r) + 2:
                        return self.decision.result()
            else:
                est = s
        if self.decision.done():
            return self.decision.result()
        raise ConfigurationError(
            f"randomized consensus did not decide within {self.max_rounds} rounds"
        )

    def _aux_quorum(self, r: int) -> frozenset[int] | None:
        """``n - t`` AUX values, every one inside ``bin_values[r]``."""
        received = self._aux.setdefault(r, {})
        bin_values = self.bv.bin_values(r)
        qualifying = {
            sender: value
            for sender, value in received.items()
            if value in bin_values
        }
        if len(qualifying) >= self.n - self.t:
            return frozenset(qualifying.values())
        return None

    def _on_aux(self, message: Message) -> None:
        payload = message.payload
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or not isinstance(payload[0], int)
            or payload[1] not in (0, 1)
        ):
            return
        round_number, value = payload
        per_round = self._aux.setdefault(round_number, {})
        if message.sender not in per_round:
            per_round[message.sender] = value
