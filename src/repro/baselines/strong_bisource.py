"""Baseline EA requiring the *stronger* pre-2015 synchrony assumption.

Aguilera et al. (DSN 2006, the paper's reference [1]) solve signature-free
Byzantine consensus assuming an eventual ``<n - t>bisource`` — a correct
process with eventually timely channels to and from essentially *all*
correct processes.  The headline of the reproduced paper is that a
``<t+1>bisource`` suffices.

To exhibit the separation on our substrate we use a *structural ablation*
of Figure 3 rather than a reimplementation of [1]: the witness-set
machinery (the ``F(r)`` sets, whose rotation is exactly what converts
``t`` timely output channels into eventual convergence) is removed, and a
round converges only when a process collects ``t + 1`` matching non-⊥
relays from *anywhere*.

* With an ``<n - t>source`` coordinator (timely output channels to all
  correct processes), every correct process relays the championed value,
  so any ``n - t`` relays contain at least ``n - 2t >= t + 1`` matching
  non-⊥ entries and the round converges — the assumption of [1] is
  enough, as expected.
* Under the *minimal* ``<t+1>bisource`` topology only the ``t + 1``
  members of ``X+`` are guaranteed a timely EA_COORD; a quorum of
  ``n - t`` relays is only guaranteed to contain **one** of them, so
  convergence is not guaranteed — benchmark E8 measures exactly this
  failure.

Safety is unaffected: ``t + 1`` matching relays include one from a
correct process, so the returned value was championed by the round
coordinator, and the consensus layer's validity filter (Figure 4, line 5)
still applies.
"""

from __future__ import annotations

from typing import Any

from ..core.eventual_agreement import EventualAgreement, _RoundState

__all__ = ["StrongBisourceEA"]


class StrongBisourceEA(EventualAgreement):
    """Figure 3 without witness sets: needs an ``<n-t>source`` coordinator."""

    def _round(self, r: int) -> _RoundState:
        state = super()._round(r)
        if len(state.f_members) != self.n:
            # No F(r) gating: the coordinator champions the first
            # EA_PROP2 from anyone, and every relay counts at line 7.
            state.f_members = frozenset(range(1, self.n + 1))
        return state

    def _relay_witness_value(self, state: _RoundState) -> Any | None:
        """Accept a value only with ``t + 1`` matching non-⊥ relays."""
        counts: dict[Any, int] = {}
        from ..core.values import BOT

        for sender, value in state.relays.items():
            if value is not BOT:
                counts[value] = counts.get(value, 0) + 1
                if counts[value] >= self.t + 1:
                    return value
        return None
