"""Broadcast stack: best-effort, Bracha reliable, cooperative (Figure 1)."""

from .cooperative import (
    BotCooperativeBroadcast,
    CooperativeBroadcast,
    bot_witness_exists,
)
from .reliable import ReliableBroadcast, rb_quorums
from .unreliable import BestEffortBroadcast

__all__ = [
    "BestEffortBroadcast",
    "ReliableBroadcast",
    "rb_quorums",
    "CooperativeBroadcast",
    "BotCooperativeBroadcast",
    "bot_witness_exists",
]
