"""Cooperative broadcast (CB) — paper Section 2.3, Figure 1.

A one-shot all-to-all abstraction.  Each correct process cb-broadcasts a
value; the operation returns a value cb-broadcast by a *correct* process,
and every process additionally gets a growing read-only set ``cb_valid``
whose contents converge at all correct processes to values proposed by
correct processes only.

Implementation = Figure 1 verbatim: RB-broadcast the value; a value joins
``cb_valid`` once RB-delivered from ``t+1`` distinct origins (at least one
of which is then correct); the operation returns as soon as ``cb_valid``
is non-empty.

Feasibility: the abstraction is implementable iff some value is proposed
by at least ``t+1`` correct processes, guaranteed when at most
``m <= floor((n-(t+1))/t)`` distinct values are proposed by correct
processes (equivalently ``n - t > m*t``).

The module also provides :class:`BotCooperativeBroadcast`, the ⊥-capable
extension used by the Section 7 variant: ``BOT`` joins ``cb_valid`` once
the process can exhibit ``n-t`` delivered proposals among which no value
reaches ``t+1`` support — a monotone predicate, so the sets still
converge, and if all correct processes propose the same value ⊥ provably
stays out.
"""

from __future__ import annotations

from typing import Any

from ..core.values import BOT, Selector, first_added
from ..runtime.process import Process
from .reliable import ReliableBroadcast

__all__ = ["CooperativeBroadcast", "BotCooperativeBroadcast", "bot_witness_exists"]


def bot_witness_exists(support_counts: list[int], n: int, t: int) -> bool:
    """Whether ⊥ may join ``cb_valid`` given per-value support counts.

    True iff there exist ``n - t`` delivered proposals among which no
    value reaches ``t + 1`` support — equivalently, capping each value's
    contribution at ``t`` still covers ``n - t`` proposals.  The
    predicate is monotone in every count, which is what makes the
    ⊥-extension convergent across processes (CB-Set Agreement).
    """
    return sum(min(count, t) for count in support_counts) >= n - t


class CooperativeBroadcast:
    """One CB instance bound to one process (Figure 1).

    Args:
        process: The owning process.
        rb: The process's reliable-broadcast engine.
        n, t: System parameters (``t < n/3``).
        instance: Hashable identifier of this CB instance; all correct
            processes must use equal identifiers for the same instance.
        selector: Deterministic choice among ``cb_valid`` for the return
            value of :meth:`cb_broadcast` (paper: "any value"; default:
            first value added).
    """

    def __init__(
        self,
        process: Process,
        rb: ReliableBroadcast,
        n: int,
        t: int,
        instance: Any,
        selector: Selector = first_added,
    ) -> None:
        self.process = process
        self.rb = rb
        self.n = n
        self.t = t
        self.instance = instance
        self.selector = selector
        # Values in cb_valid, in the order they were added.
        self._valid_order: list[Any] = []
        self._valid_set: set[Any] = set()
        # value -> origins whose CB_VAL carried it.
        self._support: dict[Any, set[int]] = {}
        rb.subscribe(("CB_VAL", instance), self._on_rb_deliver)

    # ------------------------------------------------------------------
    # The cb_valid read-only view
    # ------------------------------------------------------------------
    @property
    def cb_valid(self) -> tuple[Any, ...]:
        """Snapshot of the ``cb_valid`` set, in insertion order."""
        return tuple(self._valid_order)

    def in_valid(self, value: Any) -> bool:
        """Membership test against the live ``cb_valid`` set."""
        return value in self._valid_set

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    async def cb_broadcast(self, value: Any) -> Any:
        """Figure 1 lines 1-3: RB-broadcast, wait, return a valid value."""
        self.rb.broadcast(("CB_VAL", self.instance), value)
        await self.process.wait_until(lambda: bool(self._valid_order))
        return self.selector(self.cb_valid)

    # ------------------------------------------------------------------
    # Figure 1 line 4
    # ------------------------------------------------------------------
    def _on_rb_deliver(self, origin: int, instance_key: Any, value: Any) -> None:
        supporters = self._support.setdefault(value, set())
        supporters.add(origin)
        if len(supporters) >= self.t + 1 and value not in self._valid_set:
            self._add_valid(value)
        self._after_delivery()

    def _add_valid(self, value: Any) -> None:
        self._valid_set.add(value)
        self._valid_order.append(value)
        # cb_valid growth can satisfy waits in *other* protocol layers
        # (e.g. AC line 3), so recheck the process's predicates.
        self.process.notify()

    def _after_delivery(self) -> None:
        """Extension hook for subclasses (runs after every RB delivery)."""

    @property
    def support(self) -> dict[Any, frozenset[int]]:
        """Read-only view of per-value supporting origins (diagnostics)."""
        return {value: frozenset(origins) for value, origins in self._support.items()}


class BotCooperativeBroadcast(CooperativeBroadcast):
    """CB extended with the default value ⊥ (Section 7 variant).

    In addition to Figure 1's rule, ``BOT`` joins ``cb_valid`` as soon as
    the sum over values of ``min(support(value), t)`` reaches ``n - t``:
    this holds iff there exist ``n - t`` delivered proposals among which
    no value has ``t + 1`` support (cap each value's contribution at
    ``t``), and is monotone in the delivery history, so CB-Set Agreement
    is preserved.

    *If all correct processes propose the same value* ``v``: the capped
    sum is at most ``min(c_v, t) + t <= 2t < n - t`` (using ``n > 3t``),
    so ⊥ never becomes valid and the classic obligation survives.

    *Termination without feasibility*: once all ``n - t`` correct
    proposals are delivered, either some value has ``t+1`` support (it
    becomes valid) or the capped sum over correct proposals alone is
    already ``n - t`` (⊥ becomes valid).
    """

    def _after_delivery(self) -> None:
        if BOT in self._valid_set:
            return
        counts = [len(origins) for origins in self._support.values()]
        if bot_witness_exists(counts, self.n, self.t):
            self._add_valid(BOT)
