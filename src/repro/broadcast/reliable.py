"""Bracha's reliable broadcast (RB) — paper Section 2.2.

One engine per process multiplexes any number of RB instances.  An
instance is identified by ``(origin, instance_key)``: ``origin`` is the
broadcasting process and ``instance_key`` a protocol-chosen hashable key
(for example ``("AC_EST", round)``).

Protocol (for each instance, with ``n > 3t``):

* the origin broadcasts ``RB_INIT(v)``;
* on the first ``RB_INIT(v)`` from the origin, echo ``RB_ECHO(v)``;
* on ``RB_ECHO(v)`` from ``floor((n+t)/2) + 1`` distinct processes,
  broadcast ``RB_READY(v)`` (if not done yet);
* on ``RB_READY(v)`` from ``t+1`` distinct processes, broadcast
  ``RB_READY(v)`` (amplification, if not done yet);
* on ``RB_READY(v)`` from ``2t+1`` distinct processes, RB-deliver ``v``.

This satisfies RB-Validity, RB-Unicity, RB-Termination-1 and
RB-Termination-2 for ``t < n/3`` (Bracha 1987).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ConfigurationError
from ..net.messages import Message
from ..runtime.process import Process

__all__ = ["ReliableBroadcast", "rb_quorums"]

DeliverCallback = Callable[[int, Any, Any], None]


def rb_quorums(n: int, t: int) -> tuple[int, int, int]:
    """Return (echo quorum, ready amplification, delivery quorum).

    The echo quorum ``floor((n+t)/2) + 1`` guarantees any two echo quorums
    intersect in a correct process; ``t+1`` readies prove one correct
    process sent ready; ``2t+1`` readies guarantee ``t+1`` correct readies,
    enough for every correct process to eventually reach the amplification
    step.
    """
    return ((n + t) // 2 + 1, t + 1, 2 * t + 1)


class _InstanceState:
    """Per-(origin, instance_key) bookkeeping."""

    __slots__ = ("echoes", "readies", "echoed", "readied", "delivered")

    def __init__(self) -> None:
        # value -> set of senders whose (first) ECHO/READY carried it.
        self.echoes: dict[Any, set[int]] = {}
        self.readies: dict[Any, set[int]] = {}
        # first ECHO/READY sender set, for per-sender dedup.
        self.echoed: set[int] = set()
        self.readied: set[int] = set()
        self.delivered = False


class ReliableBroadcast:
    """A multi-instance Bracha reliable-broadcast engine for one process."""

    INIT = "RB_INIT"
    ECHO = "RB_ECHO"
    READY = "RB_READY"

    def __init__(self, process: Process, n: int, t: int) -> None:
        if not 0 <= t or not n > 3 * t:
            raise ConfigurationError(
                f"reliable broadcast requires n > 3t, got n={n}, t={t}"
            )
        self.process = process
        self.n = n
        self.t = t
        self.echo_quorum, self.ready_amplify, self.deliver_quorum = rb_quorums(n, t)
        self._states: dict[tuple[int, Any], _InstanceState] = {}
        self._my_echo: dict[tuple[int, Any], Any] = {}
        self._my_ready: dict[tuple[int, Any], Any] = {}
        #: (origin, instance_key) -> delivered value.
        self.delivered: dict[tuple[int, Any], Any] = {}
        #: instance_key -> {origin: value} in delivery order.
        self._delivered_by_key: dict[Any, dict[int, Any]] = {}
        self._subscribers: dict[Any, list[DeliverCallback]] = {}
        self._global_subscribers: list[DeliverCallback] = []
        process.register_handler(self.INIT, self._on_init)
        process.register_handler(self.ECHO, self._on_echo)
        process.register_handler(self.READY, self._on_ready)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def broadcast(self, instance_key: Any, value: Any) -> None:
        """RB-broadcast ``value`` for ``instance_key`` (origin = this pid)."""
        self.process.broadcast(self.INIT, (instance_key, value))

    def delivered_value(self, origin: int, instance_key: Any) -> Any | None:
        """Value RB-delivered from ``origin`` for ``instance_key``, if any."""
        return self.delivered.get((origin, instance_key))

    def delivered_from(self, instance_key: Any) -> dict[int, Any]:
        """Live ``{origin: value}`` map for ``instance_key``, delivery order."""
        return self._delivered_by_key.setdefault(instance_key, {})

    def subscribe(self, instance_key: Any, callback: DeliverCallback) -> None:
        """Call ``callback(origin, instance_key, value)`` on each delivery.

        Deliveries that happened before subscription are replayed
        immediately, so late-constructed protocol objects (e.g. the
        adopt-commit object of a round another process already reached)
        observe the full history.
        """
        self._subscribers.setdefault(instance_key, []).append(callback)
        for origin, value in list(self.delivered_from(instance_key).items()):
            callback(origin, instance_key, value)

    def subscribe_all(self, callback: DeliverCallback) -> None:
        """Call ``callback`` for every delivery of every instance (tracing)."""
        self._global_subscribers.append(callback)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _state(self, origin: int, instance_key: Any) -> _InstanceState:
        key = (origin, instance_key)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _InstanceState()
        return state

    def _on_init(self, message: Message) -> None:
        instance_key, value = message.payload
        origin = message.sender
        key = (origin, instance_key)
        # Echo only the *first* INIT from this origin for this instance —
        # a Byzantine origin sending several INITs gets exactly one echo.
        if key in self._my_echo:
            return
        self._my_echo[key] = value
        self.process.broadcast(self.ECHO, (origin, instance_key, value))

    def _on_echo(self, message: Message) -> None:
        origin, instance_key, value = message.payload
        state = self._state(origin, instance_key)
        if message.sender in state.echoed:
            return
        state.echoed.add(message.sender)
        supporters = state.echoes.setdefault(value, set())
        supporters.add(message.sender)
        if len(supporters) >= self.echo_quorum:
            self._send_ready(origin, instance_key, value)

    def _on_ready(self, message: Message) -> None:
        origin, instance_key, value = message.payload
        state = self._state(origin, instance_key)
        if message.sender in state.readied:
            return
        state.readied.add(message.sender)
        supporters = state.readies.setdefault(value, set())
        supporters.add(message.sender)
        if len(supporters) >= self.ready_amplify:
            self._send_ready(origin, instance_key, value)
        if len(supporters) >= self.deliver_quorum and not state.delivered:
            state.delivered = True
            self._deliver(origin, instance_key, value)

    def _send_ready(self, origin: int, instance_key: Any, value: Any) -> None:
        key = (origin, instance_key)
        if key in self._my_ready:
            return
        self._my_ready[key] = value
        self.process.broadcast(self.READY, (origin, instance_key, value))

    def _deliver(self, origin: int, instance_key: Any, value: Any) -> None:
        self.delivered[(origin, instance_key)] = value
        self._delivered_by_key.setdefault(instance_key, {})[origin] = value
        for callback in self._subscribers.get(instance_key, []):
            callback(origin, instance_key, value)
        for callback in self._global_subscribers:
            callback(origin, instance_key, value)
