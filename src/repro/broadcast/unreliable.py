"""Best-effort (unreliable) broadcast — paper Section 2.1.

``broadcast TAG(m)`` is a macro for sending ``TAG(m)`` to every process.
A message broadcast by a correct process is received by all correct
processes; a *faulty* process may instead send different messages to
different processes, or none at all (it simply does not use the macro).

This thin layer also provides first-message-per-sender bookkeeping, which
implements the model's rule that when a process is supposed to send a
single ``TAG()`` message, only the first copy from each sender is
processed and the rest are discarded.
"""

from __future__ import annotations

from typing import Any

from ..net.messages import Message
from ..runtime.process import Process

__all__ = ["BestEffortBroadcast"]


class BestEffortBroadcast:
    """Named best-effort broadcast with per-sender dedup per instance.

    Payloads are ``(instance, value)`` pairs; for each ``instance`` only
    the first value received from each sender is retained, in arrival
    order (Python dicts preserve insertion order, which the quorum
    predicates rely on for determinism).
    """

    def __init__(self, process: Process, tag: str) -> None:
        self.process = process
        self.tag = tag
        self._received: dict[Any, dict[int, Any]] = {}
        process.register_handler(tag, self._on_message)

    def broadcast(self, instance: Any, value: Any) -> None:
        """Send ``(instance, value)`` to every process, self included."""
        self.process.broadcast(self.tag, (instance, value))

    def received(self, instance: Any) -> dict[int, Any]:
        """First value received from each sender for ``instance``.

        The returned mapping is live (it grows as messages arrive); quorum
        predicates should copy it when they fire.
        """
        return self._received.setdefault(instance, {})

    def _on_message(self, message: Message) -> None:
        instance, value = message.payload
        per_sender = self._received.setdefault(instance, {})
        if message.sender not in per_sender:
            per_sender[message.sender] = value
