"""Exhaustive small-model schedule checking (``repro check``).

The sampling stack (:mod:`repro.orchestration.sweeps`) draws delivery
*delays* from seeded distributions; each seed is one schedule out of an
astronomical space.  This package instead *enumerates* the space for
small ``n``: with every channel instant (:class:`repro.net.timing.Instant`)
the only nondeterminism left in a run is the order in which same-instant
deliveries are popped from the scheduler's ready tier, which the
simulator exposes as explicit choice points
(:meth:`repro.sim.loop.Simulator.set_chooser`).

A *schedule* is the list of choice indices taken at successive choice
points.  :class:`~repro.checking.explorer.Explorer` drives an iterative
DFS over schedule prefixes with hash-based visited-state deduplication
(:mod:`repro.checking.fingerprint`) and sleep-set partial-order pruning,
verifying :mod:`repro.analysis.invariants` after every event.  On a
violation it shrinks the schedule to a locally minimal counterexample
that the ordinary runner replays bit-identically
(``RunConfig.check_schedule`` / the ``schedule`` scenario axis).

See ``docs/checking.md`` for the state-fingerprint model and the
pruning-soundness argument.
"""

from .choice import ScheduleChooser, ScheduleDivergence, message_key
from .explorer import CheckResult, CheckStats, Explorer, minimize_counterexample
from .fingerprint import canon, state_fingerprint
from .harness import RunOutcome, execute_run
from .mutants import MUTANTS, Mutant, apply_mutant
from .sharding import ShardRoots, schedule_prefix_roots, shard_roots_slice

__all__ = [
    "CheckResult",
    "CheckStats",
    "Explorer",
    "MUTANTS",
    "Mutant",
    "RunOutcome",
    "apply_mutant",
    "ScheduleChooser",
    "ScheduleDivergence",
    "ShardRoots",
    "canon",
    "execute_run",
    "message_key",
    "minimize_counterexample",
    "schedule_prefix_roots",
    "shard_roots_slice",
    "state_fingerprint",
]
