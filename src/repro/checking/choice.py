"""Choice-point identification and schedule replay.

A *choice point* is a ready-tier event whose order against its siblings
is genuinely nondeterministic in the modelled system: the delivery of a
message between two distinct processes.  Everything else on the ready
tier — task steps, callbacks, and self-deliveries — runs eagerly in FIFO
order, because in the sampled system same-instant cascades always drain
before any positive-delay delivery (the virtual self channel's ``1e-9``
delta beats every cross-process delay floor).

A *schedule* is the tuple of candidate indices chosen at successive
**branching** choice points — a lone candidate is a forced move and
consumes no index, so schedules name only real decisions.  Candidates
are presented in ready-tier (scheduling) order, which is itself a pure
function of the choices made so far, so a schedule identifies one
execution exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import SimulationError
from .fingerprint import canon

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network
    from ..sim.handles import EventHandle

__all__ = ["MessageKey", "ScheduleChooser", "ScheduleDivergence", "message_key"]

#: Semantic identity of a pending delivery: ``(sender, dest, tag,
#: canonical payload)``.  Stable across executions (unlike kernel uids),
#: so sleep sets keyed by it compare across DFS branches.
MessageKey = tuple


class ScheduleDivergence(SimulationError):
    """A replayed schedule index fell outside the candidate set.

    Raised when a schedule recorded against one model is replayed
    against a different one (wrong config, mutated protocol, stale
    counterexample) — the choice tree no longer has the recorded shape.
    """


def message_key(message: Any) -> MessageKey:
    """The semantic identity of one pending delivery."""
    return (message.sender, message.dest, message.tag, canon(message.payload))


class BaseChooser:
    """Shared choice-point detection and task tracking for choosers."""

    _deliver_cb: Any = None

    def __init__(self) -> None:
        #: Tasks created while this chooser was installed: fingerprint
        #: input, and closed by the harness when an execution is
        #: discarded (a never-started ``_round_loop`` coroutine would
        #: otherwise warn at garbage collection).
        self.tasks: list[Any] = []
        self.frame: Any = None
        #: Whether the model's channels are FIFO: only per-channel head
        #: deliveries are enabled transitions then.
        self.fifo: bool = False

    def attach(self, frame: Any) -> None:
        """Receive the runtime frame the harness built for this run."""
        self.frame = frame

    def on_task(self, task: Any) -> None:
        self.tasks.append(task)

    def bind(self, network: "Network") -> None:
        """Anchor choice detection to ``network``'s delivery callback."""
        self._deliver_cb = network._deliver_cb
        self.fifo = bool(getattr(network, "_fifo", False))

    def channel_heads(self, candidates: list["EventHandle"]) -> list[int]:
        """Indices of the *enabled* candidate deliveries.

        Without FIFO every pending delivery may go next.  With FIFO only
        the oldest pending message of each ``(sender, dest)`` channel is
        enabled — candidates sit in the ready deque in send order, so
        the first occurrence per channel is that channel's head.
        """
        if not self.fifo:
            return list(range(len(candidates)))
        heads: list[int] = []
        seen: set[tuple[int, int]] = set()
        for index, handle in enumerate(candidates):
            message = handle._args[0]
            channel = (message.sender, message.dest)
            if channel in seen:
                continue
            seen.add(channel)
            heads.append(index)
        return heads

    def is_choice(self, handle: "EventHandle") -> bool:
        """Whether a ready handle is a cross-process message delivery."""
        if handle._callback is not self._deliver_cb:
            return False
        message = handle._args[0]
        return message.sender != message.dest


class ScheduleChooser(BaseChooser):
    """Replay a recorded schedule, then continue first-candidate.

    The continuation rule matters: a checker counterexample ends at the
    violating event, and the remainder of the run (the ordinary runner
    verifies invariants post-hoc) must be deterministic — index 0 at
    every further choice point is the canonical continuation both the
    explorer's default descent and minimization replays use.
    """

    def __init__(self, schedule: tuple[int, ...]) -> None:
        super().__init__()
        self.schedule = tuple(int(c) for c in schedule)
        self.position = 0
        #: Every choice actually taken, forced and default alike.
        self.trail: list[int] = []

    def choose(self, candidates: list["EventHandle"]) -> int:
        heads = self.channel_heads(candidates)
        if len(heads) == 1:
            # Forced move: no index consumed, none recorded.  Schedules
            # stay short and survive model edits that only change the
            # length of forced corridors between branch points.
            return heads[0]
        if self.position < len(self.schedule):
            index = self.schedule[self.position]
            self.position += 1
            if not 0 <= index < len(candidates):
                raise ScheduleDivergence(
                    f"schedule index {index} out of range at choice point "
                    f"{self.position - 1} ({len(candidates)} candidates) — "
                    f"the schedule was recorded against a different model"
                )
        else:
            index = heads[0]
        self.trail.append(index)
        return index
