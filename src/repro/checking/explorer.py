"""Bounded-DFS exhaustive exploration of the small-model schedule space.

The explorer re-executes schedules (stateless model checking): a DFS
*stack entry* is ``(prefix, sleep)`` — replay the choice prefix, then
descend first-candidate, pushing one sibling entry per unexplored
alternative at every choice point passed.  Runs are cheap (a few hundred
events) and the kernel is deterministic, so re-execution beats
snapshotting process state.

Two classic reductions keep the tree tractable:

* **Visited-state dedup** — a SHA-256 fingerprint of the semantic global
  state (:mod:`repro.checking.fingerprint`) at every newly reached
  *branching* choice point (a lone candidate is a forced move: the
  corridor to the next branch is deterministic, so fingerprinting it
  buys nothing); re-reaching a fingerprint aborts the run.  Sound
  because the kernel is deterministic: the subtree under an equal state
  is equal.
* **Sleep sets** — after exploring delivery ``c`` at a node, the sibling
  branches carry ``c`` in their sleep set: delivering an *independent*
  message first and ``c`` second commutes with the explored order, so
  branches that would only re-derive it are pruned.  Two deliveries are
  dependent iff they target the same process (handlers touch only their
  own process's state; sends commute into the sorted pending multiset).
  Sleep members are dropped when a dependent delivery executes.

The two interact: a sleep set *restricts* what a visit explored, so
dedup only aborts when the stored sleep set is a subset of the current
one (the prior visit explored at least as much); otherwise the state is
re-explored and the stored set shrinks to the intersection.

On a violation the raw trail is shrunk by greedy single-choice removal
to a *locally minimal* counterexample: removing any one choice no longer
reproduces the violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .choice import BaseChooser, ScheduleChooser, message_key
from .fingerprint import state_fingerprint
from .harness import DEFAULT_MAX_STEPS, RunAbort, RunOutcome, execute_run

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.config import RunConfig
    from ..orchestration.kernel import KernelContext
    from ..sim.handles import EventHandle

__all__ = [
    "CheckResult",
    "CheckStats",
    "ExplorationChooser",
    "Explorer",
    "minimize_counterexample",
]


@dataclass
class CheckStats:
    """Exploration counters (the CLI's explored/deduped/pruned report)."""

    #: Schedules executed (including aborted ones).
    executions: int = 0
    #: Distinct state fingerprints recorded.
    states: int = 0
    #: Branching choice points (two or more candidates) passed across
    #: all executions; forced singleton deliveries are not counted.
    choice_points: int = 0
    #: Executions aborted because their state was already visited.
    deduped: int = 0
    #: Branches never taken thanks to sleep sets / duplicate candidates
    #: (including executions aborted with every candidate slept).
    pruned: int = 0
    #: Executions that ran to all-decided termination.
    completed: int = 0
    #: Executions that drained the queue with undecided processes.
    quiescent: int = 0
    #: Violating executions found.
    violations: int = 0
    #: Simulator events executed across all executions.
    steps: int = 0
    #: Deepest choice point reached.
    max_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "executions": self.executions,
            "states": self.states,
            "choice_points": self.choice_points,
            "deduped": self.deduped,
            "pruned": self.pruned,
            "completed": self.completed,
            "quiescent": self.quiescent,
            "violations": self.violations,
            "steps": self.steps,
            "max_depth": self.max_depth,
        }


@dataclass
class CheckResult:
    """Outcome of one (possibly sharded) exploration."""

    #: ``"ok"`` — no violation found; ``"violation"`` — counterexample
    #: below reproduces one.
    verdict: str
    #: Whether the schedule space was exhausted (no budget tripped and
    #: no violation cut the search short).
    exhausted: bool
    stats: CheckStats
    #: Locally minimal violating schedule (``None`` when verdict is ok).
    counterexample: tuple[int, ...] | None = None
    #: ``str(Violation)`` lines of the counterexample's violating step.
    violations: tuple[str, ...] = ()
    #: Whether the counterexample went through minimization.
    minimized: bool = False
    #: Raw (pre-minimization) violating trail.
    raw_counterexample: tuple[int, ...] | None = None
    #: Visited fingerprints (sharding equivalence checks); empty when
    #: ``keep_states`` was off.
    visited: frozenset[str] = frozenset()

    def as_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "exhausted": self.exhausted,
            "stats": self.stats.as_dict(),
            "counterexample": (
                None if self.counterexample is None else list(self.counterexample)
            ),
            "violations": list(self.violations),
            "minimized": self.minimized,
        }


class ExplorationChooser(BaseChooser):
    """The DFS's working chooser: replay a prefix, then descend
    first-unslept while pushing sibling entries onto the explorer's
    stack (reverse order, so LIFO pops explore them in candidate
    order — the sleep-set accumulation below relies on it)."""

    def __init__(
        self,
        explorer: "Explorer",
        prefix: tuple[int, ...],
        sleep: frozenset,
    ) -> None:
        super().__init__()
        self.explorer = explorer
        self.prefix = prefix
        self.sleep = sleep
        self.depth = 0
        self.trail: list[int] = []

    def choose(self, candidates: list["EventHandle"]) -> int:
        explorer = self.explorer
        stats = explorer.stats
        depth = self.depth
        heads = self.channel_heads(candidates)
        if len(heads) == 1:
            # Forced move (lone candidate, or FIFO left one enabled
            # head): no index, no fingerprint — but the delivery still
            # wakes dependent (same-dest) sleep members, and past the
            # prefix a *slept* forced delivery means this branch can
            # only re-derive an interleaving a sibling order already
            # covered (classic sleep-set leaf).
            index = heads[0]
            key = message_key(candidates[index]._args[0])
            if key in self.sleep and depth >= len(self.prefix):
                stats.pruned += 1
                raise RunAbort("pruned")
            self.sleep = frozenset(
                k for k in self.sleep if k[1] != key[1]
            )
            return index
        self.depth = depth + 1
        stats.choice_points += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        if depth < len(self.prefix):
            # Retraced ground: dedup/sleep ran when it was first crossed.
            index = self.prefix[depth]
            self.trail.append(index)
            return index
        if explorer.max_depth is not None and depth >= explorer.max_depth:
            raise RunAbort("depth")
        keys = {
            index: message_key(candidates[index]._args[0])
            for index in heads
        }
        if explorer.dedup:
            fingerprint = state_fingerprint(
                self.frame,
                candidates,
                tasks=self.tasks,
                extra_stacks=[
                    self.frame.adversary_consensi[pid]
                    for pid in sorted(self.frame.adversary_consensi)
                ],
                fifo=self.fifo,
            )
            stored = explorer.visited.get(fingerprint)
            if stored is not None and stored <= self.sleep:
                stats.deduped += 1
                raise RunAbort("deduped")
            explorer.visited[fingerprint] = (
                self.sleep if stored is None else stored & self.sleep
            )
            stats.states = len(explorer.visited)
            if (
                explorer.max_states is not None
                and stats.states > explorer.max_states
            ):
                raise RunAbort("budget")
        sleep = self.sleep
        explorable: list[int] = []
        seen_keys: set = set()
        for index in heads:
            key = keys[index]
            if key in sleep or key in seen_keys:
                # Slept: covered by an already-explored sibling order.
                # Duplicate key: delivering either copy first leads to
                # fingerprint-identical states.
                stats.pruned += 1
                continue
            seen_keys.add(key)
            explorable.append(index)
        if not explorable:
            raise RunAbort("pruned")
        chosen = explorable[0]
        chosen_key = keys[chosen]
        # Sibling entries: sibling j sleeps on every explorable key that
        # will have been explored before it (the chosen branch and the
        # siblings popped earlier), minus keys dependent on (same dest
        # as) its own first delivery.
        earlier: list = [chosen_key]
        siblings: list[tuple[tuple[int, ...], frozenset]] = []
        base_trail = tuple(self.trail)
        for index in explorable[1:]:
            dest = keys[index][1]
            sibling_sleep = frozenset(
                key for key in sleep.union(earlier) if key[1] != dest
            )
            siblings.append((base_trail + (index,), sibling_sleep))
            earlier.append(keys[index])
        if explorer.prune:
            for entry in reversed(siblings):
                explorer.stack.append(entry)
        else:
            # Pruning disabled: siblings still explored, but with empty
            # sleep sets (plain DFS + dedup).
            for trail, _ in reversed(siblings):
                explorer.stack.append((trail, frozenset()))
        self.sleep = frozenset(
            key for key in sleep if key[1] != chosen_key[1]
        )
        self.trail.append(chosen)
        return chosen


class Explorer:
    """Iterative bounded-DFS over the schedule space of one config.

    Args:
        config: The run configuration (check-mode semantics are forced;
            any ``topology`` is ignored in favour of instant channels).
        context: Optional shared kernel context (pools/bus reuse).
        max_executions: Budget on schedules executed.
        max_depth: Budget on choice points per run.
        max_states: Budget on distinct fingerprints.
        max_steps: Per-run event ceiling (livelock guard).
        prune: Sleep-set partial-order pruning (on by default).
        dedup: Visited-state deduplication (on by default).
        minimize: Shrink counterexamples to local minimality.
        keep_states: Retain the visited fingerprint set on the result.
        progress: Optional callback ``(stats, done)`` invoked every
            ``progress_every`` executions and once at the end.
        on_execution: Optional callback ``(prefix, outcome)`` invoked
            after every execution — the exploration journal the golden
            determinism fixture pins.
        roots: Initial DFS entries as schedule prefixes (sharding);
            default is the single empty prefix.
    """

    def __init__(
        self,
        config: "RunConfig",
        context: "KernelContext | None" = None,
        *,
        max_executions: int | None = None,
        max_depth: int | None = None,
        max_states: int | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        prune: bool = True,
        dedup: bool = True,
        minimize: bool = True,
        keep_states: bool = False,
        progress: Callable[[CheckStats, bool], None] | None = None,
        progress_every: int = 50,
        on_execution: Callable[[tuple[int, ...], RunOutcome], None] | None = None,
        roots: tuple[tuple[int, ...], ...] = ((),),
    ) -> None:
        self.config = config
        self.context = context
        self.max_executions = max_executions
        self.max_depth = max_depth
        self.max_states = max_states
        self.max_steps = max_steps
        self.prune = prune
        self.dedup = dedup
        self.minimize = minimize
        self.keep_states = keep_states
        self.progress = progress
        self.progress_every = progress_every
        self.on_execution = on_execution
        self.stats = CheckStats()
        self.visited: dict[str, frozenset] = {}
        self.stack: list[tuple[tuple[int, ...], frozenset]] = [
            (tuple(root), frozenset()) for root in reversed(roots)
        ]

    def run(self) -> CheckResult:
        """Explore until the stack drains, a budget trips, or a
        violation is found (and minimized)."""
        stats = self.stats
        exhausted = True
        counterexample: tuple[int, ...] | None = None
        raw_counterexample: tuple[int, ...] | None = None
        violations: tuple[str, ...] = ()
        minimized = False
        while self.stack:
            if (
                self.max_executions is not None
                and stats.executions >= self.max_executions
            ):
                exhausted = False
                break
            prefix, sleep = self.stack.pop()
            chooser = ExplorationChooser(self, prefix, sleep)
            outcome = execute_run(
                self.config, chooser, context=self.context,
                max_steps=self.max_steps,
            )
            stats.executions += 1
            stats.steps += outcome.steps
            if self.on_execution is not None:
                self.on_execution(prefix, outcome)
            status = outcome.status
            if status == "complete":
                stats.completed += 1
            elif status == "quiescent":
                stats.quiescent += 1
            elif status in ("depth", "steps", "budget"):
                exhausted = False
                if status == "budget":
                    break
            elif status == "violation":
                stats.violations += 1
                raw_counterexample = outcome.trail
                violations = tuple(str(v) for v in outcome.violations)
                if self.minimize:
                    counterexample = minimize_counterexample(
                        self.config,
                        raw_counterexample,
                        frozenset(v.check for v in outcome.violations),
                        context=self.context,
                        max_steps=self.max_steps,
                    )
                    minimized = True
                else:
                    counterexample = raw_counterexample
                exhausted = False
                break
            # "deduped"/"pruned" already counted by the chooser.
            if (
                self.progress is not None
                and stats.executions % self.progress_every == 0
            ):
                self.progress(stats, False)
        if self.progress is not None:
            self.progress(stats, True)
        return CheckResult(
            verdict="violation" if counterexample is not None else "ok",
            exhausted=exhausted,
            stats=stats,
            counterexample=counterexample,
            violations=violations,
            minimized=minimized,
            raw_counterexample=raw_counterexample,
            visited=(
                frozenset(self.visited) if self.keep_states else frozenset()
            ),
        )


def _reproduces(
    config: "RunConfig",
    schedule: tuple[int, ...],
    target_checks: frozenset[str],
    context: "KernelContext | None",
    max_steps: int,
) -> bool:
    """Whether replaying ``schedule`` (default continuation) still hits
    a violation of one of the target invariant checks."""
    outcome = execute_run(
        config, ScheduleChooser(schedule), context=context, max_steps=max_steps
    )
    if outcome.status != "violation":
        return False
    return bool({v.check for v in outcome.violations} & target_checks)


def minimize_counterexample(
    config: "RunConfig",
    schedule: tuple[int, ...],
    target_checks: frozenset[str],
    context: "KernelContext | None" = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> tuple[int, ...]:
    """Greedy single-choice removal to a locally minimal schedule.

    Repeatedly drops any choice whose removal still reproduces one of
    ``target_checks`` (replay uses first-candidate continuation past the
    shortened schedule) until no single removal survives — the result is
    locally minimal by construction: removing any one choice no longer
    violates.
    """
    current = list(schedule)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = tuple(current[:index] + current[index + 1 :])
            if _reproduces(config, candidate, target_checks, context, max_steps):
                current = list(candidate)
                changed = True
            else:
                index += 1
    return tuple(current)
