"""Canonical state fingerprints for visited-state deduplication.

Two executions that reach *semantically identical* global states must
produce identical fingerprints even though their kernels differ in
bookkeeping (message uids, scheduling sequence numbers, pool contents,
deque order).  The fingerprint therefore hashes only:

* the virtual clock;
* the pending-delivery **multiset** by semantic message key — sorted, so
  commuting delivery orders (the diamonds dedup exists to collapse)
  fingerprint equal;
* the pending-timer multiset (time, callback qualname, plain args);
* every protocol object's state, walked structurally (kernel objects —
  simulator, network, processes, futures, RNG streams — are skipped;
  their protocol-relevant content is captured elsewhere);
* each tracked coroutine's stack: code position plus plain-valued
  locals, which is where round counters and await points live;
* the decisions (and decision times) of tracked processes.

Excluded on purpose: message uids, handle sequence numbers, object
identities, network counters — all vary between executions that are
about to behave identically.
"""

from __future__ import annotations

import enum
import hashlib
import random
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.runner import RuntimeFrame
    from ..sim.handles import EventHandle
    from ..sim.tasks import Task

__all__ = ["canon", "state_fingerprint"]

#: Types whose values are hashed verbatim.
_PLAIN = (type(None), bool, int, float, str, bytes)

#: Walk depth guard: protocol state is shallow; anything deeper is a
#: cycle the memo set already breaks, or kernel plumbing we exclude.
_MAX_CORO_DEPTH = 32


def canon(value: Any, _depth: int = 0) -> str | None:
    """Canonical string of a *plain* value tree; ``None`` if not plain.

    Plain means: scalars, enums, and tuples/lists/dicts/sets thereof.
    Deterministic across processes (no ids, no unordered iteration).
    """
    if isinstance(value, _PLAIN):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if _depth >= 8:
        return None
    if isinstance(value, (tuple, list)):
        parts = [canon(item, _depth + 1) for item in value]
        if any(part is None for part in parts):
            return None
        bracket = "()" if isinstance(value, tuple) else "[]"
        return bracket[0] + ",".join(parts) + bracket[1]
    if isinstance(value, (set, frozenset)):
        parts = [canon(item, _depth + 1) for item in value]
        if any(part is None for part in parts):
            return None
        return "{" + ",".join(sorted(parts)) + "}"
    if isinstance(value, dict):
        items = []
        for key, item in value.items():
            ckey = canon(key, _depth + 1)
            citem = canon(item, _depth + 1)
            if ckey is None or citem is None:
                return None
            items.append(f"{ckey}:{citem}")
        return "{" + ",".join(sorted(items)) + "}"
    return None


def _object_attrs(obj: Any) -> dict[str, Any]:
    """Instance attributes of ``obj``, covering ``__dict__`` and slots."""
    items: dict[str, Any] = {}
    d = getattr(obj, "__dict__", None)
    if d:
        items.update(d)
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name not in items:
                try:
                    items[name] = getattr(obj, name)
                except AttributeError:
                    pass
    return items


_EXCLUDED_TYPES: tuple[type, ...] = ()


def _excluded_types() -> tuple[type, ...]:
    global _EXCLUDED_TYPES
    if not _EXCLUDED_TYPES:
        from ..net.channel import Channel
        from ..net.network import Network
        from ..runtime.process import Process
        from ..sim.futures import Future
        from ..sim.loop import Simulator

        _EXCLUDED_TYPES = (
            Simulator, Network, Channel, Process, Future, random.Random
        )
    return _EXCLUDED_TYPES


def _is_excluded(value: Any) -> bool:
    """Kernel plumbing the structural walk must not descend into."""
    return isinstance(value, _excluded_types()) or callable(value)


def _walk(value: Any, label: str, out: list[str], seen: set[int]) -> None:
    """Emit deterministic state tokens for one protocol-state value."""
    plain = canon(value)
    if plain is not None:
        out.append(f"{label}={plain}")
        return
    if _is_excluded(value):
        # Bound-method callables etc. carry no state of their own; the
        # excluded kernel types are fingerprinted through other channels
        # (pending deliveries, coroutine stacks, decision snapshots).
        return
    if id(value) in seen:
        out.append(f"{label}=<cycle>")
        return
    seen.add(id(value))
    if isinstance(value, (tuple, list)):
        for index, item in enumerate(value):
            _walk(item, f"{label}[{index}]", out, seen)
        return
    if isinstance(value, dict):
        entries = []
        for key, item in value.items():
            ckey = canon(key)
            entries.append((ckey if ckey is not None else type(key).__name__, item))
        for ckey, item in sorted(entries, key=lambda pair: pair[0]):
            _walk(item, f"{label}{{{ckey}}}", out, seen)
        return
    if isinstance(value, (set, frozenset)):
        parts = sorted(
            canon(item) or type(item).__name__ for item in value
        )
        out.append(f"{label}={{{','.join(parts)}}}")
        return
    module = type(value).__module__
    if module.startswith("repro."):
        out.append(f"{label}:{type(value).__name__}")
        for name, item in sorted(_object_attrs(value).items()):
            _walk(item, f"{label}.{name}", out, seen)
        return
    # Foreign object: its type is all we can say deterministically.
    out.append(f"{label}=<{type(value).__name__}>")


def _coro_tokens(task: "Task") -> list[str]:
    """Stack snapshot of one task: code positions + plain locals."""
    out = [f"task:{task.name}"]
    if task.done():
        out.append("done")
        return out
    obj: Any = task._coro
    for _ in range(_MAX_CORO_DEPTH):
        if obj is None:
            break
        frame = getattr(obj, "cr_frame", None)
        if frame is None:
            frame = getattr(obj, "gi_frame", None)
        if frame is None:
            break
        code = frame.f_code
        out.append(f"{code.co_qualname}:{frame.f_lasti}")
        for name in sorted(frame.f_locals):
            plain = canon(frame.f_locals[name])
            if plain is not None:
                out.append(f"{name}={plain}")
        nxt = getattr(obj, "cr_await", None)
        if nxt is None:
            nxt = getattr(obj, "gi_yieldfrom", None)
        obj = nxt
    return out


def state_fingerprint(
    frame: "RuntimeFrame",
    candidates: Iterable["EventHandle"],
    tasks: Iterable["Task"] = (),
    extra_stacks: Iterable[Any] = (),
    fifo: bool = False,
) -> str:
    """SHA-256 fingerprint of the global state at one choice point.

    Called when every live ready handle is a pending cross-process
    delivery (``candidates``), so the ready tier contributes exactly its
    sorted semantic multiset.  With ``fifo`` the multiset is grouped
    into per-channel *sequences* instead: under FIFO channels the order
    of two pending messages on the same channel is part of the state
    (it fixes which is deliverable), so states differing only there must
    not fingerprint equal.  ``tasks`` are the coroutines created this
    run (the chooser's ``on_task`` feed); ``extra_stacks`` are
    additional protocol objects to walk (untracked adversary stacks).
    """
    from .choice import message_key

    out: list[str] = [f"now={frame.sim.now!r}"]
    if fifo:
        queues: dict[tuple[int, int], list[str]] = {}
        for handle in candidates:
            message = handle._args[0]
            queues.setdefault((message.sender, message.dest), []).append(
                repr(message_key(message))
            )
        out.extend(
            f"chan:{channel!r}:" + ";".join(keys)
            for channel, keys in sorted(queues.items())
        )
    else:
        out.extend(sorted(repr(message_key(h._args[0])) for h in candidates))
    deliver_cb = frame.network._deliver_cb
    timers = []
    for time, _seq, handle in frame.sim._heap:
        if handle._cancelled or handle._callback is deliver_cb:
            continue
        qualname = getattr(handle._callback, "__qualname__", "?")
        args = ",".join(canon(a) or type(a).__name__ for a in handle._args)
        timers.append(f"timer:{time!r}:{qualname}({args})")
    out.extend(sorted(timers))
    seen: set[int] = set()
    for pid in sorted(frame.consensi):
        _walk(frame.consensi[pid], f"p{pid}", out, seen)
        _walk(frame.rb_engines[pid], f"p{pid}.rb", out, seen)
    for index, stack in enumerate(extra_stacks):
        _walk(stack, f"adv{index}", out, seen)
    for pid in sorted(frame.consensi):
        decision = frame.consensi[pid].decision
        if decision.done() and not decision.cancelled():
            out.append(f"decided:p{pid}={canon(decision.result()) or '?'}")
    for pid, when in sorted(frame.decision_times.items()):
        out.append(f"decided_at:p{pid}={when!r}")
    for task in tasks:
        out.extend(_coro_tokens(task))
    digest = hashlib.sha256("\x1f".join(out).encode("utf-8", "replace"))
    return digest.hexdigest()
