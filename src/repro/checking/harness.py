"""Execute one schedule-driven run with per-event invariant checks.

:func:`execute_run` is the single execution primitive the explorer, the
minimizer and the sharding prober all share: build the check-mode
runtime (:func:`repro.orchestration.runner.build_runtime` with a
chooser), step the simulator manually, and verify
:func:`repro.analysis.invariants.verify_consensus_run` after *every*
event so a violation is caught at the exact step it appears — the
recorded choice trail up to that step is the raw counterexample.

Choosers abort an execution mid-run by raising :class:`RunAbort` from
``choose()``; the abort propagates out of ``sim.step()`` *before* any
candidate is dequeued, so the aborted run simply stops — no state was
corrupted, and the kernel is discarded with the frame.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..analysis.invariants import Violation, verify_consensus_run
from ..orchestration.runner import RuntimeFrame, build_runtime
from .choice import ScheduleDivergence

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.config import RunConfig
    from ..orchestration.kernel import KernelContext

__all__ = ["RunAbort", "RunOutcome", "execute_run"]

#: Per-run step ceiling: a small-model check run takes a few hundred
#: events; anything near this bound is a livelock, not a schedule.
DEFAULT_MAX_STEPS = 50_000


class RunAbort(Exception):
    """Control-flow abort raised by a chooser: stop this execution.

    ``status`` becomes the run's outcome status: ``"deduped"`` (state
    already explored), ``"pruned"`` (every candidate slept),
    ``"depth"`` / ``"budget"`` (an exploration budget tripped),
    ``"probe"`` (the sharding prober has what it came for).
    """

    def __init__(self, status: str) -> None:
        super().__init__(status)
        self.status = status


@dataclass
class RunOutcome:
    """Everything the explorer needs from one finished execution."""

    #: ``complete`` (all decided) / ``quiescent`` (queue drained with
    #: undecided processes — a liveness gap, not a safety violation) /
    #: ``violation`` / ``steps`` (per-run ceiling) / ``divergence``
    #: (schedule did not fit the model) / any :class:`RunAbort` status.
    status: str
    #: The invariant violations of the violating step (empty otherwise).
    violations: tuple[Violation, ...] = ()
    #: Choice indices actually taken, in order, up to the final event.
    trail: tuple[int, ...] = ()
    steps: int = 0
    decisions: dict[int, Any] = field(default_factory=dict)
    finished_at: float = 0.0
    #: Explorable branch indices recorded by a probing chooser (sharding).
    probed: tuple[int, ...] | None = None


def _current_decisions(frame: RuntimeFrame) -> dict[int, Any]:
    return {
        pid: consensus.decision.result()
        for pid, consensus in frame.consensi.items()
        if consensus.decision.done() and not consensus.decision.cancelled()
    }


def _progress_token(frame: RuntimeFrame) -> tuple[int, int, int, int]:
    """Cheap monotone summary of everything the invariant checks read.

    The five checks are pure functions of the decisions, the adopt-commit
    histories, the RB delivery maps and the ``CB[0]`` valid sets — all
    append-only, so re-verifying is pointless while this token is
    unchanged (most simulator steps move only kernel state).
    """
    decided = 0
    history = 0
    valid = 0
    for consensus in frame.consensi.values():
        if consensus.decision.done():
            decided += 1
        history += len(consensus.est_history)
        valid += len(consensus.cb0._valid_order)
    delivered = sum(len(rb.delivered) for rb in frame.rb_engines.values())
    return (decided, history, valid, delivered)


def execute_run(
    config: "RunConfig",
    chooser: Any,
    context: "KernelContext | None" = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RunOutcome:
    """Run ``config`` under ``chooser`` to termination, abort or violation."""
    frame = build_runtime(config, context=context, chooser=chooser)
    try:
        return _drive(config, chooser, frame, max_steps)
    finally:
        # An aborted execution leaves tasks whose coroutines never ran a
        # single step; close them so the discarded frame is GC'd without
        # "coroutine was never awaited" warnings.
        for task in getattr(chooser, "tasks", ()):
            coro = task._coro
            if inspect.getcoroutinestate(coro) == "CORO_CREATED":
                coro.close()


def _drive(
    config: "RunConfig",
    chooser: Any,
    frame: RuntimeFrame,
    max_steps: int,
) -> RunOutcome:
    attach = getattr(chooser, "attach", None)
    if attach is not None:
        attach(frame)
    sim = frame.sim
    allow_bot = config.variant == "bot"
    steps = 0
    status = "complete"
    violations: tuple[Violation, ...] = ()
    probed: tuple[int, ...] | None = None
    token = _progress_token(frame)
    while True:
        if frame.all_decided.done():
            status = "complete"
            break
        if sim.peek_time() is None:
            status = "quiescent"
            break
        if steps >= max_steps:
            status = "steps"
            break
        try:
            sim.step()
        except RunAbort as abort:
            status = abort.status
            probed = getattr(chooser, "probed", None)
            break
        except ScheduleDivergence:
            status = "divergence"
            break
        steps += 1
        fresh = _progress_token(frame)
        if fresh == token:
            continue
        token = fresh
        report = verify_consensus_run(
            _current_decisions(frame),
            config.proposals,
            consensi=frame.consensi,
            rb_engines=frame.rb_engines,
            allow_bot=allow_bot,
        )
        if not report.ok:
            status = "violation"
            violations = tuple(report.violations)
            break
    return RunOutcome(
        status=status,
        violations=violations,
        trail=tuple(getattr(chooser, "trail", ())),
        steps=steps,
        decisions=_current_decisions(frame),
        finished_at=sim.now,
        probed=probed,
    )
