"""Seeded protocol mutants — deliberately broken variants for checker tests.

Each mutant removes one safety-critical guard from a protocol layer and
pairs it with a small trigger scenario in which the checker must find an
invariant violation.  They exist to validate the *checker* (it finds
real bugs and shrinks them to minimal schedules), not the protocol:
nothing here is importable from the protocol packages, and the patches
are installed only inside the :func:`apply_mutant` context manager.

The three mutants break three different layers:

* ``decide-any-support`` — Figure 4 line 9 requires ``t + 1`` distinct
  DECIDE origins (at least one correct).  The mutant decides on the
  first DECIDE, so a single forged broadcast (``spam_decide``) makes a
  correct process decide a value nobody proposed → **validity**.
* ``rb-echo-deliver`` — Bracha RB delivers on ``2t + 1`` READYs.  The
  mutant delivers on the *first* ECHO, so an equivocating origin
  (``two_faced``) splits correct processes between its two faces →
  **rb-consistency**.
* ``cb-valid-any`` — Figure 1 line 4 admits a value into ``cb_valid``
  only on ``t + 1`` distinct origins (at least one correct).  The
  mutant admits on the *first* origin, so a lone Byzantine proposer
  (``collude``) pushes a value nobody correct proposed into every
  correct ``cb_valid`` → **cb-set-validity**.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..adversary.strategies import collude, spam_decide, two_faced
from ..broadcast.cooperative import CooperativeBroadcast
from ..broadcast.reliable import ReliableBroadcast
from ..core.consensus import Consensus
from ..orchestration.config import RunConfig

__all__ = ["MUTANTS", "Mutant", "apply_mutant"]


@dataclass(frozen=True)
class Mutant:
    """One seeded bug plus the scenario that exposes it."""

    name: str
    description: str
    #: Invariant check names the violation may carry; the checker's
    #: finding must intersect this set.
    expected_checks: frozenset[str]
    #: Installs the patch; restores on exit.
    patch: Callable[[], Any]
    #: Builds the trigger scenario (fresh config per call).
    scenario: Callable[[], RunConfig]
    #: Explorer budget hints for tests / CLI (kept small: the violation
    #: is shallow by construction).
    budgets: dict[str, int] = field(default_factory=dict)


@contextmanager
def _patched(cls: type, attribute: str, replacement: Any) -> Iterator[None]:
    original = cls.__dict__[attribute]
    setattr(cls, attribute, replacement)
    try:
        yield
    finally:
        setattr(cls, attribute, original)


# ----------------------------------------------------------------------
# decide-any-support
# ----------------------------------------------------------------------
def _on_decide_any(self: Consensus, origin: int, instance_key: Any, value: Any) -> None:
    supporters = self._decide_support.setdefault(value, set())
    supporters.add(origin)
    # BUG: threshold t+1 dropped — one forged DECIDE now decides.
    if not self.decision.done():
        self.decision.set_result(value)


def _decide_any_patch() -> Any:
    return _patched(Consensus, "_on_decide", _on_decide_any)


def _decide_any_scenario() -> RunConfig:
    return RunConfig(
        n=4,
        t=1,
        proposals={1: "a", 2: "a", 3: "a"},
        adversaries={4: spam_decide("evil")},
        max_rounds=3,
    )


# ----------------------------------------------------------------------
# rb-echo-deliver
# ----------------------------------------------------------------------
def _on_echo_deliver(self: ReliableBroadcast, message: Any) -> None:
    origin, instance_key, value = message.payload
    state = self._state(origin, instance_key)
    if message.sender in state.echoed:
        return
    state.echoed.add(message.sender)
    supporters = state.echoes.setdefault(value, set())
    supporters.add(message.sender)
    if len(supporters) >= self.echo_quorum:
        self._send_ready(origin, instance_key, value)
    # BUG: deliver on the first echo, skipping the READY phase entirely.
    if not state.delivered:
        state.delivered = True
        self._deliver(origin, instance_key, value)


def _rb_echo_patch() -> Any:
    return _patched(ReliableBroadcast, "_on_echo", _on_echo_deliver)


def _rb_echo_scenario() -> RunConfig:
    return RunConfig(
        n=4,
        t=1,
        proposals={1: "a", 2: "a", 3: "a"},
        adversaries={4: two_faced("z", proposal="a")},
        max_rounds=3,
    )


# ----------------------------------------------------------------------
# cb-valid-any
# ----------------------------------------------------------------------
def _on_rb_deliver_any(
    self: CooperativeBroadcast, origin: int, instance_key: Any, value: Any
) -> None:
    supporters = self._support.setdefault(value, set())
    supporters.add(origin)
    # BUG: threshold t+1 dropped — one (possibly Byzantine) origin now
    # vouches a value into cb_valid.
    if value not in self._valid_set:
        self._add_valid(value)
    self._after_delivery()


def _cb_valid_patch() -> Any:
    return _patched(CooperativeBroadcast, "_on_rb_deliver", _on_rb_deliver_any)


def _cb_valid_scenario() -> RunConfig:
    # collude runs the protocol honestly but proposes 'evil': its CB_VAL
    # RB-delivers everywhere with support {4} — below t + 1, so the real
    # protocol keeps it out of cb_valid.
    return RunConfig(
        n=4,
        t=1,
        proposals={1: "a", 2: "a", 3: "a"},
        adversaries={4: collude("evil")},
        max_rounds=3,
    )


MUTANTS: dict[str, Mutant] = {
    mutant.name: mutant
    for mutant in (
        Mutant(
            name="decide-any-support",
            description="decide on a single DECIDE origin instead of t+1",
            expected_checks=frozenset({"validity"}),
            patch=_decide_any_patch,
            scenario=_decide_any_scenario,
            budgets={"max_executions": 2000, "max_depth": 400},
        ),
        Mutant(
            name="rb-echo-deliver",
            description="RB-deliver on the first echo, skipping READYs",
            expected_checks=frozenset({"rb-consistency"}),
            patch=_rb_echo_patch,
            scenario=_rb_echo_scenario,
            budgets={"max_executions": 2000, "max_depth": 400},
        ),
        Mutant(
            name="cb-valid-any",
            description="cb_valid admits a value on a single origin",
            expected_checks=frozenset({"cb-set-validity"}),
            patch=_cb_valid_patch,
            scenario=_cb_valid_scenario,
            budgets={"max_executions": 2000, "max_depth": 400},
        ),
    )
}


@contextmanager
def apply_mutant(name: str) -> Iterator[Mutant]:
    """Install mutant ``name``'s patch for the duration of the block."""
    mutant = MUTANTS.get(name)
    if mutant is None:
        raise KeyError(
            f"unknown mutant {name!r}; available: {sorted(MUTANTS)}"
        )
    with mutant.patch():
        yield mutant
