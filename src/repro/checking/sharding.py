"""Partitioning the schedule space by prefix for sharded checking.

A shard is a set of *roots*: schedule prefixes of a fixed depth ``D``.
Probing enumerates every reachable prefix of length ``D`` (or shorter,
when a run terminates early) breadth-first-by-replay — **without** dedup
or sleep sets, so the roots partition the full tree and the union of
per-shard explorations equals the unsharded one.  States at depths
``< D`` are crossed while retracing roots (forced ground, never
fingerprinted by shards), so the probe records their fingerprints as
``shallow_states`` — the unsharded run's visited set equals the union of
shard visited sets plus these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .choice import BaseChooser, message_key
from .fingerprint import state_fingerprint
from .harness import DEFAULT_MAX_STEPS, RunAbort, execute_run

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.config import RunConfig
    from ..orchestration.kernel import KernelContext
    from ..sim.handles import EventHandle

__all__ = ["ShardRoots", "schedule_prefix_roots", "shard_roots_slice"]


@dataclass(frozen=True)
class ShardRoots:
    """The schedule-prefix partition of one config's choice tree."""

    depth: int
    #: Every reachable prefix: length ``depth``, or shorter when the run
    #: ends (or branches dry up) first.  Sorted — deterministic sharding.
    roots: tuple[tuple[int, ...], ...]
    #: Fingerprints of choice-point states at depths ``< depth`` —
    #: crossed only as forced ground by shards, so no shard records them.
    shallow_states: frozenset[str]
    #: Executions spent probing.
    probe_executions: int = 0


class ProbeChooser(BaseChooser):
    """Replay a prefix, then record the branches at its end.

    At depth ``len(prefix)`` the probe notes the explorable candidate
    indices (``probed`` — exactly the branches the explorer would take
    from here with an empty sleep set: enabled heads, duplicate semantic
    keys collapsed) and aborts; :func:`execute_run` surfaces them via
    :attr:`RunOutcome.probed`.  Along the way the shallow-state
    fingerprints are accumulated into a shared set.
    """

    def __init__(
        self,
        prefix: tuple[int, ...],
        shallow: set[str],
    ) -> None:
        super().__init__()
        self.prefix = prefix
        self.shallow = shallow
        self.depth = 0
        self.trail: list[int] = []
        self.probed: tuple[int, ...] | None = None

    def choose(self, candidates: list["EventHandle"]) -> int:
        heads = self.channel_heads(candidates)
        if len(heads) == 1:
            # Forced move — not a branching point, not fingerprinted by
            # the explorer either, so it contributes no shallow state.
            return heads[0]
        depth = self.depth
        self.depth = depth + 1
        self.shallow.add(
            state_fingerprint(
                self.frame,
                candidates,
                tasks=self.tasks,
                extra_stacks=[
                    self.frame.adversary_consensi[pid]
                    for pid in sorted(self.frame.adversary_consensi)
                ],
                fifo=self.fifo,
            )
        )
        if depth >= len(self.prefix):
            explorable: list[int] = []
            seen_keys: set = set()
            for index in heads:
                key = message_key(candidates[index]._args[0])
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                explorable.append(index)
            self.probed = tuple(explorable)
            raise RunAbort("probe")
        index = self.prefix[depth]
        self.trail.append(index)
        return index


def schedule_prefix_roots(
    config: "RunConfig",
    depth: int,
    context: "KernelContext | None" = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ShardRoots:
    """Enumerate every reachable schedule prefix of length ``depth``.

    Breadth-first by replay: probe the empty prefix for its branching
    factor, extend by every index, repeat until length ``depth``.  A
    prefix whose run terminates (or violates) before reaching ``depth``
    choice points is itself a root — its subtree is exactly that one
    execution, and some shard must own it.
    """
    if depth < 0:
        raise ValueError(f"shard depth must be >= 0, got {depth}")
    shallow: set[str] = set()
    executions = 0
    frontier: list[tuple[int, ...]] = [()]
    roots: list[tuple[int, ...]] = []
    for _ in range(depth):
        next_frontier: list[tuple[int, ...]] = []
        for prefix in frontier:
            chooser = ProbeChooser(prefix, shallow)
            outcome = execute_run(
                config, chooser, context=context, max_steps=max_steps
            )
            executions += 1
            if outcome.status == "probe" and outcome.probed:
                next_frontier.extend(
                    prefix + (index,) for index in outcome.probed
                )
            else:
                # Terminated before the target depth: leaf root.
                roots.append(prefix)
        frontier = next_frontier
    roots.extend(frontier)
    return ShardRoots(
        depth=depth,
        roots=tuple(sorted(roots)),
        shallow_states=frozenset(shallow),
        probe_executions=executions,
    )


def shard_roots_slice(
    roots: ShardRoots, index: int, count: int
) -> tuple[tuple[int, ...], ...]:
    """The roots assigned to shard ``index`` of ``count`` (strided)."""
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for {count} shards")
    return roots.roots[index::count]
