"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — execute one consensus run and print the outcome;
* ``sweep`` — expand a scenario matrix (sizes × topologies × adversaries
  × value diversity × seeds — plus ``--axis NAME=V1,V2,...`` for *any*
  registered scenario axis: ``k``, per-cell ``faults``, fault
  ``placement``, ``proposals`` profiles, budgets, custom axes; see
  :mod:`repro.orchestration.axes`), run it on the serial,
  cooperative-async or process-pool backend, and print aggregate plus
  per-cell statistics (optionally persisting one JSONL record per
  scenario, regrouped along any axes via ``--group-by``).  With
  ``--cache DIR`` the sweep goes through the persistent result store
  (:mod:`repro.store`): already-executed scenarios are served from the
  cache, only missing cells run, and re-running the same sweep executes
  nothing while printing identical results.  ``--shard I/N`` runs the
  deterministic i-th of N round-robin slices of the expanded matrix —
  the N shard JSONLs merge back into exactly the full sweep;
* ``merge`` — fold JSONL shards from several sweep runs (or machines)
  into one deduplicated report, detecting conflicting duplicates;
  ``--group-by AXIS[,AXIS]`` regroups the merged outcomes along any
  registered axes;
* ``dispatch`` — the distributed work queue
  (:mod:`repro.orchestration.dispatch`): ``plan`` partitions a sweep
  matrix into named shard units behind an atomic JSON manifest;
  ``claim`` runs a worker loop that leases units, executes them on any
  backend (sharing a ``--cache`` store if given) and writes shard
  JSONLs; ``status`` renders the queue.  Leases expire and units are
  retried, so dead workers never wedge the sweep;
* ``collect`` — the incremental collector (:mod:`repro.store.collector`):
  fold a directory of shard JSONLs into one report as they arrive,
  checkpointing after every fold; ``--follow`` polls until the dispatch
  manifest (or an explicit ``--expect-shards``/``--expect-records``
  target) says the sweep is complete, and ``--out`` writes a merged
  JSONL byte-identical to the same sweep run unsharded;
* ``profile`` — run a sweep under the virtual-time profiler
  (:mod:`repro.profiling`) and print where the wall time went: one table
  of per-scenario harness phases (expand, cache keying, build_config,
  simulate, report construction, cache puts, JSONL encode) and one
  breaking ``simulate`` down per simulator event label (protocol tag for
  deliveries, callback for timers/tasks), plus a machine-readable
  ``BENCH_profile.json``.  ``sweep --profile`` attaches the same
  profiler to an ordinary sweep;
* ``store verify`` — integrity scrub: re-execute a deterministic sample
  of cached scenarios on the current kernel and compare digests against
  the stored records (non-zero exit on drift);
* ``events`` — read the fleet's structured event ledger
  (:mod:`repro.obs.events`): ``tail`` prints the last N events, ``query``
  streams with filters (``--since`` / ``--type`` / ``--worker`` /
  ``--run``), both human-readable or ``--json``;
* ``top`` — live fleet view over a dispatch directory
  (:mod:`repro.obs.fleet`): per-worker progress, throughput, ETA, and a
  STALE flag for leases whose heartbeat went quiet;
* ``trace`` — export a Chrome/Perfetto Trace Event Format timeline
  (:mod:`repro.obs.chrometrace`): of one consensus run (default), of a
  ledger slice (``--ledger``) or of a profile (``--from-profile``);
* ``bounds`` — print the Section 5.4 round-bound table for (n, t);
* ``feasibility`` — print the m-valued feasibility envelope.

Every command is deterministic given ``--seed`` (sweeps derive one child
seed per scenario, so results are independent of worker count and
scheduling) and prints plain text; ``run --json`` emits a
machine-readable summary instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from .analysis.aggregation import (
    group_outcomes,
    render_group_table,
    render_matrix_table,
)
from .analysis.combinatorics import beta, worst_case_round_bound
from .analysis.feasibility import max_values, min_processes
from .core.values import BOT
from .net.topology import fully_asynchronous, fully_timely
from .orchestration.config import RunConfig
from .orchestration.axes import AXES
from .orchestration.matrix import ADVERSARY_KINDS, ScenarioMatrix
from .orchestration.parallel import (
    shard_slice,
    sweep_async,
    sweep_parallel,
    sweep_serial,
)
from .orchestration.runner import run_consensus
from .orchestration.sweeps import format_table, standard_proposals

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minimal Synchrony for Byzantine Consensus — reproduction CLI",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="documentation: docs/index.md (architecture map), "
               "docs/sweeps.md (sweeps, sharding, dispatch/collect),\n"
               "docs/store.md (result store), docs/kernel.md "
               "(simulation kernel)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute one consensus run")
    _add_system_args(run_p)
    run_p.add_argument("--json", action="store_true",
                       help="emit a JSON summary instead of text")

    check_p = sub.add_parser(
        "check",
        help="exhaustively enumerate small-model schedules",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="enumerates ALL delivery orders of a small model (instant\n"
               "channels, explicit choice points) instead of sampling\n"
               "seeds; dedups visited states, prunes commuting orders\n"
               "(sleep sets), checks invariants after every event, and\n"
               "shrinks any violation to a minimal replayable schedule.\n"
               "replay one with --replay or `repro sweep --axis\n"
               "schedule=...`.  walkthrough: docs/checking.md",
    )
    check_p.add_argument("--n", type=int, default=2, help="number of processes")
    check_p.add_argument("--t", type=int, default=0, help="fault threshold")
    check_p.add_argument("--values", default="a",
                         help="comma-separated proposal values (round-robin)")
    check_p.add_argument(
        "--adversary", default="none",
        help="KIND or KIND:ARG (kinds: "
             f"{', '.join(sorted(ADVERSARY_KINDS))}; 'none' for none)",
    )
    check_p.add_argument("--faults", type=int, default=None,
                         help="number of Byzantine processes (default: t)")
    check_p.add_argument("--variant", default="standard",
                         choices=["standard", "bot"])
    check_p.add_argument("--k", type=int, default=0, help="Section 5.4 knob")
    check_p.add_argument("--max-rounds", type=int, default=1,
                         help="consensus round cap for the model "
                              "(default: %(default)s — keeps the schedule "
                              "space finite and small)")
    check_p.add_argument("--fifo", action="store_true",
                         help="model FIFO channels: only per-channel head "
                              "deliveries branch, which collapses the "
                              "schedule space enough to exhaust it")
    check_p.add_argument("--mutant", default=None, metavar="NAME",
                         help="check a seeded protocol mutant instead "
                              "(its trigger scenario replaces the model "
                              "flags above); 'list' prints the registry")
    check_p.add_argument("--budget", type=int, default=None, metavar="N",
                         help="stop after N schedule executions "
                              "(default: unbounded — exhaust the space)")
    check_p.add_argument("--depth", type=int, default=None, metavar="D",
                         help="per-run choice-point ceiling")
    check_p.add_argument("--states", type=int, default=None, metavar="N",
                         help="distinct-fingerprint ceiling")
    check_p.add_argument("--max-steps", type=int, default=None,
                         metavar="N", help="per-run event ceiling "
                         "(livelock guard)")
    check_p.add_argument("--no-prune", action="store_true",
                         help="disable sleep-set partial-order pruning")
    check_p.add_argument("--no-dedup", action="store_true",
                         help="disable visited-state deduplication")
    check_p.add_argument("--no-minimize", action="store_true",
                         help="report the raw violating schedule without "
                              "shrinking it")
    check_p.add_argument("--shard", default=None, metavar="I/N",
                         help="explore only the i-th of N schedule-prefix "
                              "shards (1-based; shards partition the "
                              "space by prefixes of --shard-depth)")
    check_p.add_argument("--shard-depth", type=int, default=2, metavar="D",
                         help="prefix depth of the shard partition "
                              "(default: %(default)s)")
    check_p.add_argument("--replay", default=None, metavar="SCHEDULE",
                         help="replay a counterexample ('-'-joined choice "
                              "indices) through the standard runner "
                              "instead of exploring")
    check_p.add_argument("--progress", action="store_true",
                         help="print a progress line per batch of "
                              "executions")
    check_p.add_argument("--events", default=None, metavar="PATH",
                         help="append check lifecycle events (started/"
                              "progress/finished, explored-states "
                              "throughput) to this JSONL ledger")
    check_p.add_argument("--json", action="store_true",
                         help="emit a JSON summary instead of text")
    check_p.add_argument("--out", default=None, metavar="PATH",
                         help="also write the JSON summary here")

    sweep_p = sub.add_parser(
        "sweep", help="run a scenario-matrix sweep",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="registered scenario axes (usable with --axis NAME=V1,V2,...):\n"
               + AXES.describe()
               + "\n\nwalkthrough: docs/sweeps.md",
    )
    _add_matrix_args(sweep_p)
    sweep_p.add_argument("--shard", default=None, metavar="I/N",
                         help="run only the deterministic i-th of N "
                              "round-robin slices of the expanded matrix "
                              "(1-based; the N shards partition the sweep)")
    sweep_p.add_argument("--group-by", default=None, metavar="AXIS[,AXIS]",
                         help="print an extra breakdown grouped by the "
                              "named axes (e.g. k or k,faults)")
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial; results are "
                              "identical either way)")
    sweep_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="persist one JSON record per scenario")
    sweep_p.add_argument("--progress", action="store_true",
                         help="print one line per finished scenario")
    sweep_p.add_argument("--backend", default="auto",
                         choices=["auto", "serial", "async", "parallel"],
                         help="execution backend (auto: parallel when "
                              "--workers > 1, else serial; async is the "
                              "cooperative in-process backend)")
    sweep_p.add_argument("--cache", default=None, metavar="DIR",
                         help="persistent result store: cached scenarios "
                              "are served without re-execution, fresh "
                              "outcomes are written back")
    sweep_p.add_argument("--resume", action="store_true",
                         help="print the store diff (cached vs missing) "
                              "before running; requires --cache")
    sweep_p.add_argument("--profile", action="store_true",
                         help="time the sweep's harness phases and the "
                              "simulator's per-event labels; print the "
                              "breakdown after the sweep (docs/profiling.md)")
    sweep_p.add_argument("--profile-json", default=None, metavar="PATH",
                         help="also write the machine-readable profile "
                              "here (implies --profile)")
    sweep_p.add_argument("--events", default=None, metavar="PATH",
                         help="append structured telemetry events (sweep "
                              "started/finished, per-scenario cache "
                              "hit/miss) to this JSONL ledger "
                              "(docs/observability.md)")

    profile_p = sub.add_parser(
        "profile",
        help="profile a sweep: per-phase / per-tag wall-time breakdown",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="runs the matrix like `repro sweep`, with the virtual-time\n"
               "profiler armed, prints the breakdown tables and writes a\n"
               "machine-readable profile JSON.  how to read one:\n"
               "docs/profiling.md",
    )
    _add_matrix_args(profile_p)
    profile_p.add_argument("--backend", default="serial",
                           choices=["serial", "async", "parallel"],
                           help="execution backend (serial gives the full "
                                "per-event sim breakdown; parallel only "
                                "times the parent-side phases plus worker "
                                "chunk wall time)")
    profile_p.add_argument("--workers", type=int, default=None,
                           help="pool size for --backend parallel")
    profile_p.add_argument("--cache", default=None, metavar="DIR",
                           help="run through a result store (profiles the "
                                "cache_key/cache_put phases too)")
    profile_p.add_argument("--jsonl", default=None, metavar="PATH",
                           help="persist the sweep JSONL (profiles the "
                                "jsonl_encode phase)")
    profile_p.add_argument("--alloc", action="store_true",
                           help="allocation-profiling mode: record net "
                                "allocated-block deltas per phase and per "
                                "sim tag, plus the tracemalloc peak "
                                "(slower; docs/profiling.md)")
    profile_p.add_argument("--out", default="BENCH_profile.json",
                           metavar="PATH",
                           help="machine-readable profile output "
                                "(default: %(default)s)")

    merge_p = sub.add_parser(
        "merge", help="merge JSONL sweep shards into one report"
    )
    merge_p.add_argument("shards", nargs="+", metavar="SHARD",
                         help="JSONL shard files (from sweep --jsonl)")
    merge_p.add_argument("--out", default=None, metavar="PATH",
                         help="write the merged, deduplicated JSONL here")
    merge_p.add_argument("--on-conflict", default="error",
                         choices=["error", "first", "last"],
                         help="how to resolve shards that disagree about "
                              "the same scenario (default: error out)")
    merge_p.add_argument("--group-by", default=None, metavar="AXIS[,AXIS]",
                         help="print an extra breakdown of the merged "
                              "outcomes grouped by the named axes")

    dispatch_p = sub.add_parser(
        "dispatch", help="distributed sweep work queue (plan/claim/status)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="a dispatch directory holds manifest.json (the work queue)\n"
               "and shards/ (one JSONL per executed unit); fold the shards\n"
               "with `repro collect DIR`.  walkthrough: docs/sweeps.md",
    )
    dispatch_sub = dispatch_p.add_subparsers(
        dest="dispatch_command", required=True
    )
    plan_p = dispatch_sub.add_parser(
        "plan", help="partition a sweep matrix into claimable shard units"
    )
    _add_matrix_args(plan_p)
    plan_p.add_argument("--dir", required=True, metavar="DIR",
                        help="dispatch directory (manifest + shards)")
    plan_p.add_argument("--units", type=int, default=4, metavar="N",
                        help="shard units to partition the matrix into "
                             "(clamped to the scenario count)")
    plan_p.add_argument("--lease", type=float, default=300.0,
                        metavar="SECONDS",
                        help="claim lease; an expired lease makes the "
                             "unit claimable again")
    plan_p.add_argument("--max-attempts", type=int, default=3, metavar="K",
                        help="total claim attempts per unit before it "
                             "is abandoned as exhausted")
    claim_p = dispatch_sub.add_parser(
        "claim", help="worker loop: lease units, execute, write shards"
    )
    claim_p.add_argument("dir", metavar="DIR", help="dispatch directory")
    claim_p.add_argument("--worker", default=None, metavar="NAME",
                         help="worker identity recorded on leases "
                              "(default: host-pid)")
    claim_p.add_argument("--backend", default="serial",
                         choices=["serial", "async", "parallel"],
                         help="execution backend for each claimed unit")
    claim_p.add_argument("--workers", type=int, default=None,
                         help="process-pool size for --backend parallel")
    claim_p.add_argument("--cache", default=None, metavar="DIR",
                         help="shared result store: cached scenarios are "
                              "served without re-execution")
    claim_p.add_argument("--max-units", type=int, default=None, metavar="N",
                         help="stop after completing N units "
                              "(default: drain the queue)")
    claim_p.add_argument("--heartbeat", type=float, default=None,
                         metavar="SECONDS",
                         help="progress-heartbeat interval; each beat "
                              "renews the lease (default: lease/4; "
                              "0 disables)")
    claim_p.add_argument("--no-events", action="store_true",
                         help="do not append unit lifecycle events to "
                              "DIR/events.jsonl")
    status_p = dispatch_sub.add_parser(
        "status", help="render the work queue (exit 0 once all units done)"
    )
    status_p.add_argument("dir", metavar="DIR", help="dispatch directory")
    status_p.add_argument("--reclaim", action="store_true",
                         help="release every expired lease back to "
                              "pending (stale-state reconciliation) "
                              "before rendering")

    collect_p = sub.add_parser(
        "collect",
        help="incrementally fold shard JSONLs into one merged report",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="DIR may be a dispatch directory (manifest.json present:\n"
               "shards/ is watched and the manifest defines completion)\n"
               "or any directory of *.jsonl shards (then --follow needs\n"
               "--expect-shards or --expect-records).  docs: docs/sweeps.md",
    )
    collect_p.add_argument("dir", metavar="DIR",
                           help="dispatch directory or shard directory")
    collect_p.add_argument("--out", default=None, metavar="PATH",
                           help="write the merged JSONL here (matrix "
                                "order: byte-identical to the unsharded "
                                "sweep)")
    collect_p.add_argument("--follow", action="store_true",
                           help="poll until the sweep is complete instead "
                                "of folding once and exiting")
    collect_p.add_argument("--poll", type=float, default=0.5,
                           metavar="SECONDS", help="poll interval")
    collect_p.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="give up following after this long")
    collect_p.add_argument("--expect-shards", type=int, default=None,
                           metavar="N",
                           help="completion target: N shard files folded")
    collect_p.add_argument("--expect-records", type=int, default=None,
                           metavar="N",
                           help="completion target: N distinct scenarios")
    collect_p.add_argument("--on-conflict", default="error",
                           choices=["error", "first", "last"],
                           help="how to resolve shards that disagree "
                                "about the same scenario")
    collect_p.add_argument("--checkpoint", default=None, metavar="PATH",
                           help="checkpoint file (default: "
                                ".collector.json in the shard directory)")
    collect_p.add_argument("--quiet", action="store_true",
                           help="suppress the per-fold progress lines")
    collect_p.add_argument("--events", action="store_true",
                           help="append a shard_folded event per fold to "
                                "the directory's events.jsonl ledger")

    store_p = sub.add_parser("store", help="persistent result-store tools")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    verify_p = store_sub.add_parser(
        "verify",
        help="re-execute a sample of cached scenarios and compare digests",
    )
    verify_p.add_argument("cache", metavar="DIR", help="cache directory")
    def nonnegative(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    verify_p.add_argument("--sample", type=nonnegative, default=None,
                          metavar="N",
                          help="re-execute at most N entries "
                               "(deterministic in --seed; default: all)")
    verify_p.add_argument("--seed", type=int, default=0,
                          help="sample-selection seed")
    verify_p.add_argument("--progress", action="store_true",
                          help="print one line per re-executed entry")

    events_p = sub.add_parser(
        "events", help="read the structured fleet event ledger",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="SOURCE is a ledger JSONL file, or a dispatch directory\n"
               "(its events.jsonl is read).  schema: docs/observability.md",
    )
    events_sub = events_p.add_subparsers(dest="events_command", required=True)
    for sub_name, sub_help in (
        ("tail", "print the last N matching events"),
        ("query", "stream every matching event, oldest first"),
    ):
        ev_p = events_sub.add_parser(sub_name, help=sub_help)
        ev_p.add_argument("source", metavar="SOURCE",
                          help="ledger file or dispatch directory")
        if sub_name == "tail":
            ev_p.add_argument("-n", type=int, default=10, metavar="N",
                              help="events to print (default: %(default)s)")
        ev_p.add_argument("--since", type=float, default=None,
                          metavar="SECONDS",
                          help="only events from the last SECONDS seconds")
        ev_p.add_argument("--type", action="append", default=None,
                          dest="types", metavar="TYPE",
                          help="only this event type (repeatable)")
        ev_p.add_argument("--worker", default=None, metavar="NAME",
                          help="only events from this worker")
        ev_p.add_argument("--run", default=None, metavar="RUN_ID",
                          help="only events from this dispatch run")
        ev_p.add_argument("--json", action="store_true",
                          help="print raw JSON records instead of the "
                               "human-readable form")

    top_p = sub.add_parser(
        "top", help="live fleet view over a dispatch directory"
    )
    top_p.add_argument("dir", metavar="DIR", help="dispatch directory")
    top_p.add_argument("--once", action="store_true",
                       help="render one frame and exit (CI-friendly)")
    top_p.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh interval (default: %(default)s)")
    top_p.add_argument("--stale", type=float, default=None,
                       metavar="SECONDS",
                       help="flag workers whose heartbeat is older than "
                            "this as STALE (default: lease/2)")

    trace_p = sub.add_parser(
        "trace",
        help="export a Chrome/Perfetto trace (run, ledger or profile)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="default: execute one consensus run (same knobs as `repro\n"
               "run`) with tracing on and export its timeline.  --ledger\n"
               "exports a fleet event-ledger slice instead; --from-profile\n"
               "exports a BENCH_profile.json phase breakdown.  load the\n"
               "output at https://ui.perfetto.dev — docs/observability.md",
    )
    _add_system_args(trace_p)
    trace_p.add_argument("--ledger", default=None, metavar="SOURCE",
                         help="export this event ledger (file or dispatch "
                              "directory) instead of running")
    trace_p.add_argument("--from-profile", default=None, metavar="PATH",
                         help="export this BENCH_profile.json instead of "
                              "running")
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="trace output path (default: %(default)s)")
    trace_p.add_argument("--label", default=None, metavar="NAME",
                         help="top-level process label in the trace")

    bounds_p = sub.add_parser("bounds", help="Section 5.4 round-bound table")
    bounds_p.add_argument("--n", type=int, required=True)
    bounds_p.add_argument("--t", type=int, required=True)

    feas_p = sub.add_parser("feasibility", help="m-valued feasibility envelope")
    feas_p.add_argument("--n", type=int)
    feas_p.add_argument("--t", type=int, required=True)
    feas_p.add_argument("--m", type=int)
    return parser


def _add_matrix_args(parser: argparse.ArgumentParser) -> None:
    """Arguments defining a scenario matrix (shared by ``sweep`` and
    ``dispatch plan``)."""
    _add_system_args(parser)
    parser.add_argument("--seeds", type=int, default=10,
                        help="seeds per grid cell")
    parser.add_argument("--grid", default=None, metavar="N:T,N:T,...",
                        help="system sizes to sweep (default: --n/--t)")
    parser.add_argument("--topologies", default=None, metavar="KIND,...",
                        help="topology grid (minimal/timely/async; "
                             "default: --topology)")
    parser.add_argument("--adversaries", default=None, metavar="KIND[:ARG],...",
                        help="adversary grid (default: --adversary)")
    parser.add_argument("--value-counts", default=None, metavar="M,...",
                        help="value-diversity grid, clamped to the "
                             "feasibility bound (default: len(--values))")
    parser.add_argument("--axis", action="append", default=None,
                        metavar="NAME=V1,V2,...", dest="axis",
                        help="grid over any registered scenario axis "
                             "(repeatable; 'list' prints the vocabulary), "
                             "e.g. --axis k=0,1,2 --axis faults=0,1 "
                             "--axis placement=tail,head,spread")


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=4, help="number of processes")
    parser.add_argument("--t", type=int, default=1, help="fault threshold")
    parser.add_argument("--values", default="a,b",
                        help="comma-separated proposal values (round-robin)")
    parser.add_argument(
        "--adversary", default="crash",
        help="KIND or KIND:ARG, e.g. two_faced:evil "
             f"(kinds: {', '.join(sorted(ADVERSARY_KINDS))}; 'none' for none)",
    )
    parser.add_argument("--faults", type=int, default=None,
                        help="number of Byzantine processes (default: t)")
    parser.add_argument("--topology", default="minimal",
                        choices=["minimal", "timely", "async"])
    parser.add_argument("--variant", default="standard",
                        choices=["standard", "bot"])
    parser.add_argument("--k", type=int, default=0, help="Section 5.4 knob")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-time", type=float, default=1_000_000.0)


def _build_config(args: argparse.Namespace, seed: int) -> RunConfig:
    n, t = args.n, args.t
    faults = t if args.faults is None else args.faults
    adversaries: dict[int, Any] = {}
    if args.adversary != "none" and faults > 0:
        kind, _, arg = args.adversary.partition(":")
        if kind not in ADVERSARY_KINDS:
            raise SystemExit(f"unknown adversary kind {kind!r}")
        for pid in range(n - faults + 1, n + 1):
            adversaries[pid] = ADVERSARY_KINDS[kind](arg)
    correct = [pid for pid in range(1, n + 1) if pid not in adversaries]
    values = [v for v in args.values.split(",") if v]
    proposals = standard_proposals(correct, values)
    topology = None
    if args.topology == "timely":
        topology = fully_timely(n)
    elif args.topology == "async":
        topology = fully_asynchronous(n)
    return RunConfig(
        n=n, t=t, proposals=proposals, adversaries=adversaries,
        topology=topology, variant=args.variant, k=args.k, seed=seed,
        max_time=args.max_time,
    )


def _render(value: Any) -> str:
    return "⊥" if value is BOT else repr(value)


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_consensus(_build_config(args, args.seed))
    if args.json:
        payload = {
            "decisions": {pid: _render(v) for pid, v in result.decisions.items()},
            "all_decided": result.all_decided,
            "timed_out": result.timed_out,
            "rounds": result.rounds,
            "messages_sent": result.messages_sent,
            "finished_at": result.finished_at,
            "invariants_ok": result.invariants.ok,
        }
        print(json.dumps(payload, indent=2))
        return 0 if result.all_decided else 1
    print(f"decided      : {result.all_decided}"
          + ("" if result.all_decided else " (budget hit)"))
    if result.decisions:
        print(f"value        : {_render(result.decided_value)}")
    print(f"rounds       : {result.rounds}")
    print(f"messages     : {result.messages_sent}")
    print(f"virtual time : {result.finished_at:.1f}")
    print(f"safety       : {'OK' if result.invariants.ok else 'VIOLATED'}")
    return 0 if result.all_decided else 1


def _check_config(args: argparse.Namespace) -> RunConfig:
    """The model `repro check` explores (mutants supply their own)."""
    n, t = args.n, args.t
    faults = t if args.faults is None else args.faults
    adversaries: dict[int, Any] = {}
    if args.adversary != "none" and faults > 0:
        kind, _, arg = args.adversary.partition(":")
        if kind not in ADVERSARY_KINDS:
            raise SystemExit(f"unknown adversary kind {kind!r}")
        for pid in range(n - faults + 1, n + 1):
            adversaries[pid] = ADVERSARY_KINDS[kind](arg)
    correct = [pid for pid in range(1, n + 1) if pid not in adversaries]
    values = [v for v in args.values.split(",") if v]
    proposals = standard_proposals(correct, values)
    return RunConfig(
        n=n, t=t, proposals=proposals, adversaries=adversaries,
        variant=args.variant, k=args.k, max_rounds=args.max_rounds,
        fifo=args.fifo,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    import contextlib
    import time

    from .analysis.progress import render_progress
    from .checking import (
        Explorer,
        ScheduleDivergence,
        schedule_prefix_roots,
        shard_roots_slice,
    )
    from .checking.harness import DEFAULT_MAX_STEPS
    from .checking.mutants import MUTANTS, apply_mutant
    from .errors import SimulationError

    if args.mutant == "list":
        for mutant in MUTANTS.values():
            print(f"{mutant.name:20s} {mutant.description} "
                  f"(expects: {', '.join(sorted(mutant.expected_checks))})")
        return 0

    guard: Any = contextlib.nullcontext()
    if args.mutant is not None:
        if args.mutant not in MUTANTS:
            raise SystemExit(
                f"unknown mutant {args.mutant!r}; available: "
                f"{', '.join(sorted(MUTANTS))} (or 'list')"
            )
        guard = apply_mutant(args.mutant)
        config = MUTANTS[args.mutant].scenario()
    else:
        config = _check_config(args)
    max_steps = args.max_steps or DEFAULT_MAX_STEPS

    if args.replay is not None:
        import dataclasses

        try:
            schedule = tuple(
                int(p) for p in args.replay.split("-") if p != ""
            )
        except ValueError:
            raise SystemExit(f"bad --replay {args.replay!r} "
                             "(expected '-'-joined indices, e.g. 0-2-1)")
        replay_config = dataclasses.replace(config, check_schedule=schedule)
        with guard:
            try:
                result = run_consensus(replay_config, check_invariants=False)
            except (ScheduleDivergence, SimulationError) as exc:
                raise SystemExit(f"replay failed: {exc}")
        print(f"schedule     : {'-'.join(map(str, schedule)) or '(empty)'}")
        print(f"decided      : {result.all_decided}")
        for pid in sorted(result.decisions):
            print(f"  p{pid} -> {_render(result.decisions[pid])}")
        print(f"safety       : "
              f"{'OK' if result.invariants.ok else 'VIOLATED'}")
        for violation in result.invariants.violations:
            print(f"  {violation}")
        return 0 if result.invariants.ok else 1

    ledger = None
    if args.events:
        import os as _os

        from .obs import EVENT_CHECK_STARTED, EventLedger

        ledger = EventLedger(
            args.events,
            run_id=f"check-{int(time.time())}-{_os.getpid():x}",
        )
        ledger.emit(
            EVENT_CHECK_STARTED,
            n=config.n, t=config.t, mutant=args.mutant,
            budget=args.budget, depth=args.depth, shard=args.shard,
        )

    roots: tuple[tuple[int, ...], ...] = ((),)
    shard_note = ""
    with guard:
        if args.shard:
            index, count = _parse_shard(args.shard)
            partition = schedule_prefix_roots(
                config, args.shard_depth, max_steps=max_steps
            )
            roots = shard_roots_slice(partition, index - 1, count)
            shard_note = (f"{index}/{count} -> {len(roots)} of "
                          f"{len(partition.roots)} prefix root(s)")
            if not roots:
                print(f"shard        : {shard_note} (nothing to explore)")
                if ledger is not None:
                    ledger.close()
                return 0

        started = time.monotonic()
        progress = None
        if args.progress or ledger is not None:
            from .obs import EVENT_CHECK_PROGRESS

            def progress(stats: Any, done: bool) -> None:
                if args.progress and not done:
                    bar = render_progress(stats.executions, args.budget or 0)
                    print(f"explored     : {bar} states={stats.states} "
                          f"deduped={stats.deduped} pruned={stats.pruned}",
                          flush=True)
                if ledger is not None and not done:
                    ledger.emit(
                        EVENT_CHECK_PROGRESS,
                        executions=stats.executions, states=stats.states,
                        deduped=stats.deduped, pruned=stats.pruned,
                    )

        explorer = Explorer(
            config,
            max_executions=args.budget,
            max_depth=args.depth,
            max_states=args.states,
            max_steps=max_steps,
            prune=not args.no_prune,
            dedup=not args.no_dedup,
            minimize=not args.no_minimize,
            progress=progress,
            roots=roots,
        )
        result = explorer.run()
    elapsed = max(time.monotonic() - started, 1e-9)
    stats = result.stats

    states_per_second = stats.states / elapsed
    if ledger is not None:
        from .obs import EVENT_CHECK_FINISHED, MetricsRegistry

        metrics = MetricsRegistry()
        metrics.counter(
            "check.states", help="distinct states fingerprinted"
        ).inc(stats.states)
        metrics.counter(
            "check.executions", help="schedules executed"
        ).inc(stats.executions)
        ledger.emit(
            EVENT_CHECK_FINISHED,
            verdict=result.verdict, exhausted=result.exhausted,
            elapsed=elapsed, states_per_second=states_per_second,
            counterexample=(
                None if result.counterexample is None
                else list(result.counterexample)
            ),
            **stats.as_dict(),
        )
        ledger.close()

    if args.json or args.out:
        payload = result.as_dict()
        payload["elapsed"] = elapsed
        payload["states_per_second"] = states_per_second
        if shard_note:
            payload["shard"] = shard_note
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.out:
            from .store.atomic import atomic_write_text

            atomic_write_text(args.out, text + "\n")
        if args.json:
            print(text)
            return 0 if result.verdict == "ok" else 1

    if shard_note:
        print(f"shard        : {shard_note}")
    print(f"verdict      : {result.verdict.upper()}"
          + ("" if result.exhausted or result.verdict == "violation"
             else " (budget hit before exhaustion)"))
    print(f"exhausted    : {result.exhausted}")
    print(f"executions   : {stats.executions} "
          f"({stats.completed} complete, {stats.quiescent} quiescent, "
          f"{stats.deduped} deduped, {stats.pruned + 0} pruned-out)")
    print(f"states       : {stats.states} distinct "
          f"({states_per_second:.0f}/s)")
    print(f"choice pts   : {stats.choice_points} "
          f"(max depth {stats.max_depth})")
    print(f"pruned       : {stats.pruned} slept branch(es)")
    print(f"sim steps    : {stats.steps}")
    print(f"elapsed      : {elapsed:.2f}s")
    if result.verdict == "violation":
        assert result.counterexample is not None
        schedule_text = "-".join(map(str, result.counterexample))
        print(f"counterexample: "
              f"{schedule_text or '(empty — violates on every schedule)'}"
              + (" (minimal)" if result.minimized else " (raw)"))
        for line in result.violations:
            print(f"  {line}")
        replay_flags = f"--replay {schedule_text}" if schedule_text else \
            "--replay ''"
        mutant_flag = f" --mutant {args.mutant}" if args.mutant else ""
        print(f"replay with  : repro check{mutant_flag} {replay_flags}")
        return 1
    return 0


def _parse_grid(text: str) -> list[tuple[int, int]]:
    sizes = []
    for part in text.split(","):
        if not part:
            continue
        try:
            n, _, t = part.partition(":")
            sizes.append((int(n), int(t)))
        except ValueError:
            raise SystemExit(f"bad grid entry {part!r} (expected N:T)")
    if not sizes:
        raise SystemExit("empty --grid")
    return sizes


def _parse_axes(entries: Sequence[str]) -> dict[str, list[Any]]:
    """Parse repeated ``--axis NAME=V1,V2,...`` flags via the registry.

    Each axis's own parser handles its tokens (``k=0,1`` parses ints,
    ``size=4:1,7:2`` parses pairs, ``faults=none,0,1`` understands the
    full-budget sentinel).  ``--axis list`` prints the vocabulary.
    """
    axes: dict[str, list[Any]] = {}
    for entry in entries:
        if entry in ("list", "help"):
            print(f"registered axes:\n{AXES.describe()}")
            raise SystemExit(0)
        name, sep, rest = entry.partition("=")
        if not sep or not rest:
            raise SystemExit(
                f"bad --axis entry {entry!r} (expected NAME=V1,V2,...)"
            )
        try:
            axis = AXES.resolve(name)
        except ValueError as exc:
            raise SystemExit(str(exc))
        values = axes.setdefault(axis.name, [])
        for token in rest.split(","):
            if not token:
                continue
            try:
                values.append(axis.canonical(axis.parse(token)))
            except (ValueError, TypeError) as exc:
                raise SystemExit(
                    f"bad value {token!r} for axis {axis.name!r}: {exc}"
                )
        if not values:
            raise SystemExit(f"empty value list for axis {axis.name!r}")
    return axes


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``--shard I/N`` (1-based)."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"bad --shard {text!r} (expected I/N, e.g. 2/4)")
    if count < 1 or not 1 <= index <= count:
        raise SystemExit(
            f"bad --shard {text!r}: need 1 <= I <= N"
        )
    return index, count


def _build_matrix(args: argparse.Namespace) -> ScenarioMatrix:
    sizes = _parse_grid(args.grid) if args.grid else [(args.n, args.t)]
    topologies = (
        [p for p in args.topologies.split(",") if p]
        if args.topologies else [args.topology]
    )
    adversaries = (
        [p for p in args.adversaries.split(",") if p]
        if args.adversaries else [args.adversary]
    )
    value_pool = [v for v in args.values.split(",") if v]
    if args.value_counts:
        value_counts = [int(p) for p in args.value_counts.split(",") if p]
        if value_counts and max(value_counts) > len(value_pool):
            # The requested diversity outgrew --values: fall back to
            # generated v0..v(m-1) proposals rather than silently
            # shrinking the grid.
            value_pool = None
    else:
        value_counts = [len(value_pool)]
    return ScenarioMatrix(
        sizes=sizes,
        topologies=topologies,
        adversaries=adversaries,
        value_counts=value_counts,
        value_pool=value_pool,
        seeds=range(args.seeds),
        faults=args.faults,
        variant=args.variant,
        k=args.k,
        base_seed=args.seed,
        max_time=args.max_time,
        axes=_parse_axes(args.axis) if getattr(args, "axis", None) else None,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        matrix = _build_matrix(args)
        total = len(matrix)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if total == 0:
        if not len(matrix.seeds):
            raise SystemExit("the scenario matrix is empty (no seeds: "
                             "--seeds must be >= 1)")
        raise SystemExit("the scenario matrix is empty "
                         "(every cell was infeasible)")
    work: Any = matrix
    if args.shard:
        index, count = _parse_shard(args.shard)
        work = shard_slice(matrix, index, count)
        print(f"shard        : {index}/{count} -> {len(work)} of "
              f"{total} scenarios")
        total = len(work)
    progress = None
    if args.progress:
        state = {"done": 0}

        def progress(outcome: Any) -> None:
            state["done"] += 1
            status = "ok" if outcome.decided else (
                "timeout" if outcome.timed_out else "failed"
            )
            print(f"[{state['done']}/{total}] "
                  f"{outcome.spec.cell_id} seed={outcome.spec.seed_index} "
                  f"{status}")

    cache = None
    if args.resume and not args.cache:
        raise SystemExit("--resume requires --cache DIR")
    if args.cache:
        from .store import ResultCache

        cache = ResultCache(args.cache)
    if args.resume:
        from .store import count_cached, describe_counts

        print(f"resume       : {describe_counts(*count_cached(work, cache))}")
    profiler = None
    if args.profile or args.profile_json:
        from .profiling import SweepProfiler

        profiler = SweepProfiler()
    telemetry = None
    if args.events:
        import os as _os
        import time as _time

        from .obs import EventLedger, MetricsRegistry, SweepTelemetry

        telemetry = SweepTelemetry(
            ledger=EventLedger(
                args.events,
                run_id=f"sweep-{int(_time.time())}-{_os.getpid():x}",
            ),
            metrics=MetricsRegistry(),
        )
        telemetry.sweep_started(total=total)
    backend = args.backend
    if backend == "auto":
        backend = "parallel" if args.workers > 1 else "serial"
    if backend == "serial":
        sweep = sweep_serial(
            work, on_result=progress, cache=cache, profiler=profiler,
            observer=telemetry,
        )
    elif backend == "async":
        sweep = sweep_async(
            work, on_result=progress, cache=cache, profiler=profiler,
            observer=telemetry,
        )
    else:
        sweep = sweep_parallel(
            work, workers=args.workers, on_result=progress, cache=cache,
            profiler=profiler, observer=telemetry,
        )
    if telemetry is not None:
        telemetry.sweep_finished(sweep)
        telemetry.ledger.close()
    report = sweep.report
    rounds, latency, messages = report.rounds, report.latency, report.messages
    print(format_table(
        ["metric", "mean", "min", "max", "p90"],
        [
            ["rounds", f"{rounds.mean:.2f}", rounds.minimum, rounds.maximum,
             rounds.p90],
            ["virtual latency", f"{latency.mean:.1f}", f"{latency.minimum:.1f}",
             f"{latency.maximum:.1f}", f"{latency.p90:.1f}"],
            ["messages", f"{messages.mean:.0f}", f"{messages.minimum:.0f}",
             f"{messages.maximum:.0f}", f"{messages.p90:.0f}"],
        ],
    ))
    if len(report.cells) > 1:
        print()
        print(render_matrix_table(report))
    _print_group_breakdown(sweep.outcomes, args.group_by)
    print(f"\ndecided      : {report.decided_runs}/{report.runs} seeds")
    print(f"values       : {report.values}")
    print(f"safety       : {'OK' if report.all_safe else 'VIOLATED'}")
    print(f"throughput   : {len(sweep.outcomes)} scenarios in "
          f"{sweep.elapsed:.2f}s "
          f"({sweep.scenarios_per_second:.1f}/s, {sweep.workers} worker(s))")
    if sweep.pool_startup_seconds > 0:
        print(f"pool         : spawned in "
              f"{sweep.pool_startup_seconds * 1000.0:.1f}ms "
              f"(warm reuse on subsequent sweeps)")
    if cache is not None:
        print(f"cache        : {sweep.cache_hits} hit(s), "
              f"{sweep.executed} executed -> {args.cache}")
    if args.jsonl:
        path = sweep.write_jsonl(args.jsonl, profiler=profiler)
        print(f"jsonl        : {path}")
    if telemetry is not None:
        print(f"events       : {args.events} "
              f"({telemetry.scenarios + 2} event(s) appended)")
    if profiler is not None:
        print()
        print(profiler.render())
        print(f"\ncoverage     : phases explain "
              f"{100.0 * profiler.coverage():.1f}% of measured wall time")
        if args.profile_json:
            _write_profile_json(profiler, args.profile_json)
            print(f"profile json : {args.profile_json}")
    return 0 if report.decided_runs == report.runs and report.all_safe else 1


def _write_profile_json(profiler: Any, path: str) -> None:
    """Persist one profiler snapshot (atomically, like every artifact)."""
    from .store.atomic import atomic_write_text

    atomic_write_text(
        path, json.dumps(profiler.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profiling import SweepProfiler

    try:
        matrix = _build_matrix(args)
        total = len(matrix)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if total == 0:
        raise SystemExit("the scenario matrix is empty")
    cache = None
    if args.cache:
        from .store import ResultCache

        cache = ResultCache(args.cache)
    profiler = SweepProfiler(alloc=args.alloc)
    if args.backend == "serial":
        sweep = sweep_serial(matrix, cache=cache, profiler=profiler)
    elif args.backend == "async":
        sweep = sweep_async(matrix, cache=cache, profiler=profiler)
    else:
        sweep = sweep_parallel(
            matrix, workers=args.workers, cache=cache, profiler=profiler
        )
    if args.jsonl:
        sweep.write_jsonl(args.jsonl, profiler=profiler)
    print(f"scenarios    : {len(sweep.outcomes)} in {sweep.elapsed:.2f}s "
          f"({sweep.scenarios_per_second:.1f}/s, {sweep.workers} worker(s), "
          f"{sweep.cache_hits} cache hit(s))")
    print()
    print(profiler.render())
    print(f"\ncoverage     : phases explain "
          f"{100.0 * profiler.coverage():.1f}% of measured wall time")
    _write_profile_json(profiler, args.out)
    print(f"profile json : {args.out}")
    return 0


def _print_group_breakdown(outcomes: Any, group_by: str | None) -> None:
    """Shared ``--group-by`` tail of the sweep and merge commands."""
    if not group_by:
        return
    names = [p for p in group_by.split(",") if p]
    try:
        grouped = group_outcomes(outcomes, names)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print()
    print(render_group_table(grouped))


def _cmd_merge(args: argparse.Namespace) -> int:
    from .store import ShardConflictError, merge_shards

    try:
        merged = merge_shards(args.shards, on_conflict=args.on_conflict)
    except FileNotFoundError as exc:
        raise SystemExit(f"missing shard: {exc.filename or exc}")
    except (ShardConflictError, ValueError) as exc:
        raise SystemExit(str(exc))
    report = merged.report
    print(f"shards       : {len(merged.sources)} file(s), "
          f"{merged.total_records} record(s), "
          f"{merged.duplicates} duplicate(s) dropped")
    print(f"scenarios    : {report.runs}")
    print(f"decided      : {report.decided_runs}/{report.runs} seeds")
    print(f"values       : {report.values}")
    print(f"safety       : {'OK' if report.all_safe else 'VIOLATED'}")
    if report.cells:
        print()
        print(render_matrix_table(report))
    _print_group_breakdown(merged.outcomes, args.group_by)
    if args.out:
        path = merged.write_jsonl(args.out)
        print(f"\nmerged jsonl : {path}")
    return 0 if report.all_safe else 1


def _default_worker_name() -> str:
    import os
    import socket

    return f"{socket.gethostname()}-{os.getpid()}"


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from .orchestration.dispatch import (
        DispatchError,
        DispatchPlan,
        plan_dispatch,
        run_claims,
    )

    if args.dispatch_command == "plan":
        try:
            matrix = _build_matrix(args)
            plan = plan_dispatch(
                matrix, args.dir, units=args.units,
                lease_seconds=args.lease, max_attempts=args.max_attempts,
            )
        except (ValueError, DispatchError) as exc:
            raise SystemExit(str(exc))
        sizes = sorted({unit.scenarios for unit in plan.units})
        shape = (
            str(sizes[0]) if len(sizes) == 1 else f"{sizes[0]}-{sizes[-1]}"
        )
        print(f"manifest     : {plan.manifest_path}")
        print(f"units        : {len(plan.units)} x {shape} scenario(s) "
              f"({plan.total_scenarios} total)")
        print(f"lease        : {plan.lease_seconds:.0f}s, "
              f"{plan.max_attempts} attempt(s) max")
        print(f"claim with   : repro dispatch claim {args.dir}")
        return 0

    if args.dispatch_command == "claim":
        worker = args.worker or _default_worker_name()
        cache = None
        if args.cache:
            from .store import ResultCache

            cache = ResultCache(args.cache)

        def on_unit(unit: Any, result: Any) -> None:
            print(f"{unit.name}  : {len(result.outcomes)} scenario(s) "
                  f"-> {unit.shard}")

        try:
            plan = DispatchPlan.load(args.dir)
        except DispatchError as exc:
            raise SystemExit(str(exc))
        telemetry = None
        if not args.no_events:
            from pathlib import Path

            from .obs import (
                LEDGER_NAME, EventLedger, MetricsRegistry, SweepTelemetry,
            )

            telemetry = SweepTelemetry(
                ledger=EventLedger(
                    Path(args.dir) / LEDGER_NAME,
                    run_id=plan.run_id, worker=worker,
                ),
                metrics=MetricsRegistry(),
            )
        try:
            executed = run_claims(
                plan, worker=worker, backend=args.backend,
                cache=cache, workers=args.workers,
                max_units=args.max_units, on_unit=on_unit,
                heartbeat_interval=args.heartbeat, telemetry=telemetry,
            )
            plan = DispatchPlan.load(args.dir)
        except (ValueError, DispatchError) as exc:
            raise SystemExit(str(exc))
        finally:
            if telemetry is not None:
                telemetry.ledger.close()
        print(f"claimed      : {len(executed)} unit(s) as {worker}")
        print(f"queue        : {plan.describe()}")
        return 0

    # status (the subparser guarantees no other value)
    import time
    from pathlib import Path

    from .analysis.progress import render_progress
    from .orchestration.sweeps import format_table as _table

    try:
        plan = DispatchPlan.load(args.dir)
    except DispatchError as exc:
        raise SystemExit(str(exc))
    now = time.time()
    if args.reclaim:
        reclaimed = plan.reclaim_stale(now)
        for unit in reclaimed:
            print(f"reclaimed    : {unit.name} (lease expired, "
                  f"attempt {unit.attempts}/{plan.max_attempts})")
        if reclaimed:
            # Reconciliation is fleet history too: record it in the
            # directory's ledger when one exists.
            ledger_path = Path(args.dir) / "events.jsonl"
            if ledger_path.exists():
                from .obs import EVENT_UNIT_RECLAIMED, EventLedger

                with EventLedger(
                    ledger_path, run_id=plan.run_id, worker="status",
                ) as ledger:
                    for unit in reclaimed:
                        ledger.emit(
                            EVENT_UNIT_RECLAIMED, unit=unit.name,
                            attempt=unit.attempts,
                        )
        else:
            print("reclaimed    : nothing (no expired leases)")
        plan = DispatchPlan.load(args.dir)
    rows = []
    for unit in plan.units:
        state = unit.status
        if unit.abandoned(now, plan.max_attempts):
            state = "exhausted"
        elif unit.lease_expired(now):
            state = "expired"
        lease = "-"
        if unit.status == "leased" and unit.lease_expires is not None:
            lease = f"{max(0.0, unit.lease_expires - now):.0f}s"
        pulse = "-"
        age = unit.heartbeat_age(now)
        if age is not None:
            pulse = f"{age:.0f}s"
            if unit.lease_expired(now) and unit.heartbeat_at is None:
                pulse = "never"  # expired with no pulse: presumed dead
        progress = (
            f"{unit.progress_done}/{unit.progress_total}"
            if unit.progress_done is not None
            and unit.progress_total is not None else "-"
        )
        rows.append([
            unit.name, state, unit.owner or "-", unit.attempts,
            unit.scenarios if unit.records is None else unit.records,
            lease, pulse, progress,
        ])
    print(_table(
        ["unit", "state", "owner", "attempts", "scenarios", "lease",
         "pulse", "progress"],
        rows,
    ))
    done = sum(1 for unit in plan.units if unit.status == "done")
    print(f"\nprogress     : {render_progress(done, len(plan.units))}")
    print(f"status       : {plan.describe(now)}")
    stale = plan.stale_units(now)
    if stale:
        print(f"stale        : {len(stale)} expired lease(s) with a dead "
              f"claimant -- run `repro dispatch status {args.dir} "
              f"--reclaim` to release")
    return 0 if plan.finished else 1


def _cmd_collect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .orchestration.dispatch import MANIFEST_NAME, SHARD_DIR
    from .store import CollectorError, ShardConflictError, watch_shards

    root = Path(args.dir)
    manifest_root = None
    shard_dir = root
    if (root / MANIFEST_NAME).exists():
        manifest_root = root
        shard_dir = root / SHARD_DIR
    if not shard_dir.is_dir():
        raise SystemExit(f"no shard directory at {shard_dir}")

    ledger = None
    if args.events:
        from .obs import EventLedger

        run_id = ""
        if manifest_root is not None:
            from .orchestration.dispatch import DispatchPlan

            run_id = DispatchPlan.load(manifest_root).run_id
        ledger = EventLedger(
            (manifest_root or root) / "events.jsonl",
            run_id=run_id, worker="collector",
        )

    on_scan = None
    if not args.quiet:
        def on_scan(collector: Any, scan: Any) -> None:
            for name in scan.folded:
                print(f"folded       : {name}")
            if scan.folded:
                print(f"progress     : {collector.describe()}")

    try:
        merged = watch_shards(
            shard_dir, out=args.out, follow=args.follow, poll=args.poll,
            timeout=args.timeout, expect_shards=args.expect_shards,
            expect_records=args.expect_records,
            manifest_root=manifest_root, on_conflict=args.on_conflict,
            checkpoint=args.checkpoint, on_scan=on_scan, ledger=ledger,
        )
    except TimeoutError as exc:
        print(f"timeout      : {exc}")
        return 3
    except (CollectorError, ShardConflictError, ValueError) as exc:
        raise SystemExit(str(exc))
    finally:
        if ledger is not None:
            ledger.close()
    report = merged.report
    print(f"shards       : {len(merged.sources)} file(s), "
          f"{merged.total_records} record(s), "
          f"{merged.duplicates} duplicate(s) dropped")
    print(f"scenarios    : {report.runs}")
    print(f"decided      : {report.decided_runs}/{report.runs} seeds")
    print(f"safety       : {'OK' if report.all_safe else 'VIOLATED'}")
    if args.out:
        print(f"merged jsonl : {args.out}")
    return 0 if report.all_safe else 1


def _cmd_store(args: argparse.Namespace) -> int:
    # Only "verify" exists today; the subparser enforces that.
    from .store import ResultCache, verify_store

    cache = ResultCache(args.cache)
    if not cache.root.is_dir():
        raise SystemExit(f"no cache directory at {args.cache}")
    on_entry = None
    if args.progress:
        def on_entry(key: str, matched: bool) -> None:
            print(f"  {key[:16]}… {'ok' if matched else 'MISMATCH'}")

    report = verify_store(
        cache, sample=args.sample, seed=args.seed, on_entry=on_entry
    )
    print(f"verify       : {report.describe()}")
    if not report.ok:
        print("integrity    : DRIFT DETECTED")
        return 1
    if report.vacuous and args.sample != 0:
        # Entries exist but every candidate was stale or unreadable: a
        # clean exit here would be a false bill of health.
        print("integrity    : UNVERIFIED (no entry could be re-executed)")
        return 2
    print("integrity    : OK")
    return 0


def _ledger_path(source: str) -> Any:
    """Resolve an ``events``/``trace --ledger`` SOURCE: a ledger file as
    given, or a directory's ``events.jsonl``."""
    from pathlib import Path

    from .obs import LEDGER_NAME

    path = Path(source)
    if path.is_dir():
        path = path / LEDGER_NAME
    if not path.exists():
        raise SystemExit(f"no event ledger at {path}")
    return path


def _cmd_events(args: argparse.Namespace) -> int:
    import time

    from .obs import format_event, read_events, tail_events

    path = _ledger_path(args.source)
    filters: dict[str, Any] = {
        "types": args.types,
        "worker": args.worker,
        "run": args.run,
    }
    if args.since is not None:
        filters["since"] = time.time() - args.since
    try:
        if args.events_command == "tail":
            records: Any = tail_events(path, n=args.n, **filters)
        else:
            records = read_events(path, **filters)
        count = 0
        for record in records:
            count += 1
            if args.json:
                print(json.dumps(record, sort_keys=True))
            else:
                print(format_event(record))
    except ValueError as exc:
        raise SystemExit(str(exc))
    if count == 0 and not args.json:
        print("(no matching events)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .obs import render_top
    from .orchestration.dispatch import DispatchError, DispatchPlan

    def frame() -> Any:
        plan = DispatchPlan.load(args.dir)
        print(render_top(plan, stale_after=args.stale))
        return plan

    try:
        if args.once:
            return 0 if frame().finished else 1
        while True:
            if sys.stdout.isatty():  # pragma: no cover - interactive only
                print("\033[2J\033[H", end="")
            plan = frame()
            if plan.finished:
                return 0
            sys.stdout.flush()
            time.sleep(max(0.1, args.interval))
    except DispatchError as exc:
        raise SystemExit(str(exc))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import chrometrace

    if args.ledger is not None and args.from_profile is not None:
        raise SystemExit("--ledger and --from-profile are exclusive")
    if args.ledger is not None:
        from .obs import read_events

        path = _ledger_path(args.ledger)
        try:
            trace = chrometrace.trace_from_ledger(
                read_events(path), label=args.label or "fleet"
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        source = str(path)
    elif args.from_profile is not None:
        from pathlib import Path

        try:
            profile = json.loads(
                Path(args.from_profile).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"unreadable profile {args.from_profile}: {exc}")
        trace = chrometrace.trace_from_profile(
            profile, label=args.label or "sweep profile"
        )
        source = args.from_profile
    else:
        import dataclasses

        config = dataclasses.replace(
            _build_config(args, args.seed), trace=True
        )
        result = run_consensus(config)
        trace = chrometrace.trace_from_tracer(
            result.trace,
            label=args.label
            or f"run n={args.n} t={args.t} seed={args.seed}",
        )
        source = (
            f"one run (decided={result.all_decided}, "
            f"rounds={result.rounds}, messages={result.messages_sent})"
        )
    path = chrometrace.write_trace(args.out, trace)
    events = len(trace["traceEvents"])
    print(f"source       : {source}")
    print(f"trace        : {path} ({events} event(s))")
    print("view at      : https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    n, t = args.n, args.t
    if not n > 3 * t:
        raise SystemExit(f"need n > 3t, got n={n}, t={t}")
    rows = [
        [k, t + 1 + k, beta(n, t, k), worst_case_round_bound(n, t, k)]
        for k in range(t + 1)
    ]
    print(format_table(
        ["k", "bisource width", "beta = C(n, n-t+k)", "round bound beta*n"],
        rows,
    ))
    return 0


def _cmd_feasibility(args: argparse.Namespace) -> int:
    t = args.t
    if args.m is not None:
        n = min_processes(t, args.m)
        print(f"m={args.m} values with t={t} faults needs n >= {n} processes")
        return 0
    if args.n is None:
        raise SystemExit("feasibility needs --n or --m")
    if not args.n > 3 * t:
        raise SystemExit(f"need n > 3t, got n={args.n}, t={t}")
    m = max_values(args.n, t)
    print(f"n={args.n}, t={t}: correct processes may propose at most "
          f"m_max={m} distinct values (n - t > m*t)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "check": _cmd_check,
        "sweep": _cmd_sweep,
        "profile": _cmd_profile,
        "merge": _cmd_merge,
        "dispatch": _cmd_dispatch,
        "collect": _cmd_collect,
        "store": _cmd_store,
        "events": _cmd_events,
        "top": _cmd_top,
        "trace": _cmd_trace,
        "bounds": _cmd_bounds,
        "feasibility": _cmd_feasibility,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
