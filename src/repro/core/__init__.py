"""The paper's primary contribution: AC, EA and synchrony-optimal consensus."""

from .adopt_commit import AdoptCommit, Tag, most_frequent
from .consensus import Consensus
from .consensus_variant import BotConsensus
from .coord import (
    alpha,
    beta,
    combination_unrank,
    coordinator,
    f_set,
    f_set_index,
    worst_case_round_bound,
)
from .ea_parameterized import ParameterizedEventualAgreement
from .eventual_agreement import EventualAgreement, default_timeout
from .values import BOT, Bot, Selector, first_added, smallest

__all__ = [
    "AdoptCommit",
    "Tag",
    "most_frequent",
    "Consensus",
    "BotConsensus",
    "alpha",
    "beta",
    "combination_unrank",
    "coordinator",
    "f_set",
    "f_set_index",
    "worst_case_round_bound",
    "ParameterizedEventualAgreement",
    "EventualAgreement",
    "default_timeout",
    "BOT",
    "Bot",
    "Selector",
    "first_added",
    "smallest",
]
