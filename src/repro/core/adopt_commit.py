"""Byzantine m-valued adopt-commit — paper Section 3, Figure 2.

An adopt-commit (AC) object encapsulates the *safety* part of agreement:
``AC_propose(v)`` returns ``(COMMIT, v')`` or ``(ADOPT, v')`` such that

* AC-Termination: invocations by correct processes terminate (given all
  correct processes invoke);
* AC-Output domain: ``v'`` was proposed by a correct process;
* AC-Obligation: unanimous correct proposals can only be committed;
* AC-Quasi-agreement: if anyone commits ``v``, nobody adopts or commits
  a different value.

This is, per the paper, the first adopt-commit implementation tolerating
Byzantine processes.  One instance is consumed per consensus round.
"""

from __future__ import annotations

import enum
from typing import Any

from ..analysis.feasibility import check_feasibility
from ..broadcast.cooperative import CooperativeBroadcast
from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..runtime.process import Process
from .values import Selector, first_added

__all__ = ["AdoptCommit", "Tag", "most_frequent"]


class Tag(enum.Enum):
    """The control tag of an adopt-commit decision."""

    COMMIT = "commit"
    ADOPT = "adopt"


def most_frequent(values: list[Any]) -> Any:
    """Most frequent value; ties break to the earliest-seen (Figure 2 line 4
    allows any tie-break, deterministic here for reproducibility)."""
    counts: dict[Any, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    best = None
    best_count = -1
    for value, count in counts.items():  # insertion order = first-seen order
        if count > best_count:
            best, best_count = value, count
    return best


class AdoptCommit:
    """One m-valued Byzantine adopt-commit object (Figure 2).

    Args:
        process: Owning process.
        rb: The process's reliable-broadcast engine.
        n, t: System parameters (``t < n/3``).
        m: Bound on distinct correct proposals (checked against the
            feasibility condition); pass ``None`` to skip the check when a
            ⊥-capable CB class is supplied.
        instance: Identifier shared by all processes for this object
            (the consensus layer uses the round number).
        cb_factory: CB class to instantiate (the Section 7 variant swaps
            in :class:`~repro.broadcast.cooperative.BotCooperativeBroadcast`).
        selector: Deterministic "any value in cb_valid" choice.
    """

    EST = "AC_EST"

    def __init__(
        self,
        process: Process,
        rb: ReliableBroadcast,
        n: int,
        t: int,
        m: int | None,
        instance: Any,
        cb_factory: type[CooperativeBroadcast] = CooperativeBroadcast,
        selector: Selector = first_added,
    ) -> None:
        if not n > 3 * t:
            raise ConfigurationError(f"adopt-commit requires n > 3t, got n={n}, t={t}")
        if m is not None:
            check_feasibility(n, t, m)
        self.process = process
        self.rb = rb
        self.n = n
        self.t = t
        self.instance = instance
        self.cb = cb_factory(
            process, rb, n, t, instance=("AC", instance), selector=selector
        )

    async def propose(self, value: Any) -> tuple[Tag, Any]:
        """Figure 2: returns ``(Tag.COMMIT, v)`` or ``(Tag.ADOPT, v)``."""
        est = await self.cb.cb_broadcast(value)  # line 1
        self.rb.broadcast((self.EST, self.instance), est)  # line 2
        witness = await self.process.wait_until(self._est_quorum)  # line 3
        estimates = list(witness.values())
        mfa = most_frequent(estimates)  # line 4
        if all(v == mfa for v in estimates):  # line 5
            return (Tag.COMMIT, mfa)  # line 6
        return (Tag.ADOPT, mfa)  # line 7

    def _est_quorum(self) -> dict[int, Any] | None:
        """Line 3 predicate: ``n - t`` RB-delivered estimates, all valid.

        Scans deliveries in delivery order and takes the first ``n - t``
        whose value currently belongs to ``cb_valid`` (the set can still
        grow after becoming non-empty, so a delivery may qualify late).
        Returns the witnessing ``{origin: value}`` snapshot, or None.
        """
        qualifying: dict[int, Any] = {}
        for origin, value in self.rb.delivered_from((self.EST, self.instance)).items():
            if self.cb.in_valid(value):
                qualifying[origin] = value
                if len(qualifying) == self.n - self.t:
                    return dict(qualifying)
        return None
