"""m-valued Byzantine consensus — paper Section 6, Figure 4.

``CONS_propose(v)`` satisfies, in
``BZ_AS[t < n/3, <>(t+1)bisource]``:

* CONS-Termination: invocations by correct processes terminate;
* CONS-Validity: a decided value was proposed by a correct process;
* CONS-Agreement: no two correct processes decide differently.

Structure (Figure 4): an initial CB instance ``CB[0]`` pins down the set
of correct proposals; each round runs the EA object (liveness: eventually
all correct processes push the same estimate) and a fresh adopt-commit
object (safety: commits lock the value); a process that obtains
``commit`` RB-broadcasts ``DECIDE(v)``, and any process that RB-delivers
``DECIDE(v)`` from ``t + 1`` distinct origins decides ``v`` and stops its
round loop (its broadcast handlers keep serving, so lagging processes
still make progress).
"""

from __future__ import annotations

from typing import Any, Callable

from ..analysis.feasibility import check_feasibility
from ..broadcast.cooperative import CooperativeBroadcast
from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..runtime.process import Process
from ..sim.futures import Future
from ..sim.tasks import Task
from .adopt_commit import AdoptCommit, Tag
from .eventual_agreement import EventualAgreement, default_timeout
from .values import Selector, first_added

__all__ = ["Consensus"]

EaFactory = Callable[..., EventualAgreement]


class Consensus:
    """One consensus instance bound to one process (Figure 4).

    Args:
        process: Owning process.
        rb: Reliable-broadcast engine.
        n, t: System parameters (``t < n/3``).
        m: Bound on distinct correct proposals (feasibility-checked);
            ``None`` skips the check (used by the Section 7 variant).
        k: Section 5.4 tuning parameter forwarded to the EA object.
        timeout_fn: EA round-timeout schedule.
        cb_factory: CB class used for ``CB[0]`` and all nested instances.
        ea_factory: EA implementation (baselines substitute their own).
        selector: Deterministic "any value in cb_valid" choice.
        max_rounds: Optional cap on executed rounds; when hit, the round
            loop stops silently and the decision future stays pending
            (used by benchmarks measuring non-convergence).
    """

    DECIDE_KEY = ("CONS_DECIDE",)

    def __init__(
        self,
        process: Process,
        rb: ReliableBroadcast,
        n: int,
        t: int,
        m: int | None,
        k: int = 0,
        timeout_fn: Callable[[int], float] = default_timeout,
        cb_factory: type[CooperativeBroadcast] = CooperativeBroadcast,
        ea_factory: EaFactory | None = None,
        selector: Selector = first_added,
        max_rounds: int | None = None,
        namespace: str = "",
    ) -> None:
        if not n > 3 * t:
            raise ConfigurationError(f"consensus requires n > 3t, got n={n}, t={t}")
        if m is not None:
            check_feasibility(n, t, m)
        self.process = process
        self.rb = rb
        self.n = n
        self.t = t
        self.m = m
        self.k = k
        self.timeout_fn = timeout_fn
        self.cb_factory = cb_factory
        self.selector = selector
        self.max_rounds = max_rounds
        self.namespace = namespace
        self._decide_key = (
            ("CONS_DECIDE", namespace) if namespace else self.DECIDE_KEY
        )
        cb0_instance = ("CONS_VALID", namespace) if namespace else "CONS_VALID"
        self.cb0 = cb_factory(
            process, rb, n, t, instance=cb0_instance, selector=selector
        )
        factory = ea_factory if ea_factory is not None else EventualAgreement
        self.ea = factory(
            process,
            rb,
            n,
            t,
            m=m,
            k=k,
            timeout_fn=timeout_fn,
            cb_factory=cb_factory,
            selector=selector,
            namespace=namespace,
        )
        self._adopt_commits: dict[int, AdoptCommit] = {}
        #: Resolves with the decided value (Figure 4 line 9).
        self.decision: Future = Future(name=f"p{process.pid}.decision")
        self._decide_support: dict[Any, set[int]] = {}
        self._decide_broadcast = False
        self._loop_task: Task | None = None
        #: Rounds this process entered (Figure 4 line 3).
        self.rounds_executed = 0
        #: Per-round (round, tag, estimate) history for analysis.
        self.est_history: list[tuple[int, Tag, Any]] = []
        rb.subscribe(self._decide_key, self._on_decide)

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    async def propose(self, value: Any) -> Any:
        """Figure 4 ``CONS_propose``: returns the decided value."""
        est = await self.cb0.cb_broadcast(value)  # line 1
        self._loop_task = self.process.create_task(
            self._round_loop(est), name=f"p{self.process.pid}.rounds"
        )
        decided = await self.decision  # set by the DECIDE handler (line 9)
        if not self._loop_task.done():
            self._loop_task.cancel()
        return decided

    @property
    def decided(self) -> bool:
        """Whether this process has decided."""
        return self.decision.done()

    # ------------------------------------------------------------------
    # Round loop (Figure 4 lines 2-8)
    # ------------------------------------------------------------------
    async def _round_loop(self, est: Any) -> None:
        r = 0
        while self.max_rounds is None or r < self.max_rounds:
            r += 1  # line 3
            self.rounds_executed = r
            v = await self.ea.propose(r, est)  # line 4 (liveness)
            if self.cb0.in_valid(v):  # line 5 (validity)
                est = v
            tag, est = await self._adopt_commit(r).propose(est)  # line 6
            self.est_history.append((r, tag, est))
            if tag is Tag.COMMIT and not self._decide_broadcast:  # line 7
                self._decide_broadcast = True
                self.rb.broadcast(self._decide_key, est)

    def _adopt_commit(self, r: int) -> AdoptCommit:
        ac = self._adopt_commits.get(r)
        if ac is None:
            instance = (self.namespace, r) if self.namespace else r
            ac = AdoptCommit(
                self.process,
                self.rb,
                self.n,
                self.t,
                m=self.m,
                instance=instance,
                cb_factory=self.cb_factory,
                selector=self.selector,
            )
            self._adopt_commits[r] = ac
        return ac

    # ------------------------------------------------------------------
    # Decision handler (Figure 4 line 9)
    # ------------------------------------------------------------------
    def _on_decide(self, origin: int, instance_key: Any, value: Any) -> None:
        supporters = self._decide_support.setdefault(value, set())
        supporters.add(origin)
        if len(supporters) >= self.t + 1 and not self.decision.done():
            # At least one of the t+1 DECIDE RB-broadcasts is from a
            # correct process, so the value is safe to decide.
            self.decision.set_result(value)
