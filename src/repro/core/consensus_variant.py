"""The ⊥-default-validity consensus variant — paper Section 7.

The m-valued algorithms restrict correct processes to at most
``m <= floor((n-(t+1))/t)`` distinct proposals so that no value proposed
only by Byzantine processes can ever be decided.  The variant sketched in
the conclusion (following Correia et al. and Mostéfaoui-Raynal's
intrusion-tolerant validity) lifts the restriction: correct processes may
propose arbitrarily many distinct values, and the decided value is either
a correct proposal or the default value ⊥ — with ⊥ possible only when
correct processes are *not* unanimous.

Realisation: every cooperative-broadcast instance in the stack (``CB[0]``,
the per-round EA and AC instances) is replaced by
:class:`~repro.broadcast.cooperative.BotCooperativeBroadcast`, whose
``cb_valid`` additionally admits ⊥ via a monotone no-(t+1)-support
witness rule.  All liveness waits then terminate without the feasibility
condition, while unanimity still forces the classic outcome (see the
BotCooperativeBroadcast docstring for the argument).
"""

from __future__ import annotations

from typing import Callable

from ..broadcast.cooperative import BotCooperativeBroadcast
from ..broadcast.reliable import ReliableBroadcast
from ..runtime.process import Process
from .consensus import Consensus, EaFactory
from .eventual_agreement import default_timeout
from .values import Selector, first_added

__all__ = ["BotConsensus"]


class BotConsensus(Consensus):
    """Byzantine consensus deciding a correct proposal or ⊥ (Section 7).

    Identical to :class:`~repro.core.consensus.Consensus` except that the
    value domain is unrestricted (no ``m``) and ⊥ (:data:`repro.core.values.BOT`)
    may be decided when correct processes disagree.
    """

    def __init__(
        self,
        process: Process,
        rb: ReliableBroadcast,
        n: int,
        t: int,
        k: int = 0,
        timeout_fn: Callable[[int], float] = default_timeout,
        ea_factory: EaFactory | None = None,
        selector: Selector = first_added,
        max_rounds: int | None = None,
        namespace: str = "",
    ) -> None:
        super().__init__(
            process,
            rb,
            n,
            t,
            m=None,  # no feasibility restriction in the variant
            k=k,
            timeout_fn=timeout_fn,
            cb_factory=BotCooperativeBroadcast,
            ea_factory=ea_factory,
            selector=selector,
            max_rounds=max_rounds,
            namespace=namespace,
        )
