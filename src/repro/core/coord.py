"""Round combinatorics of the eventual-agreement object (Section 5.2).

* ``coord(r) = ((r - 1) mod n) + 1`` — the coordinator of round ``r``;
  over an infinite execution every process coordinates infinitely often.
* ``F(r) = F_{index(r)}`` with ``index(r) = ((ceil(r/n) - 1) mod alpha) + 1``
  — the witness set of round ``r``, drawn from the ``alpha = C(n, n-t)``
  combinations of ``n - t`` processes.  ``F_1`` serves rounds ``1..n``,
  ``F_2`` rounds ``n+1..2n`` and so on, so every (coordinator, witness
  set) pair recurs infinitely often — the fact Lemma 3 relies on.

The paper does not fix the order ``F_1 .. F_alpha``; we use lexicographic
order over sorted process ids (documented deviation #3 in DESIGN.md) and
unrank combinations on demand, so ``alpha`` is never materialised.

The parameterized variant (Section 5.4) uses witness sets of size
``n - t + k`` — ``beta = C(n, n-t+k)`` of them — and a stronger
``<t+1+k>bisource``; its worst-case round bound in the timely-from-the-
start model is ``beta * n`` (``k = t`` gives the optimal ``n``).
"""

from __future__ import annotations

from math import ceil, comb

from ..errors import ConfigurationError

__all__ = [
    "alpha",
    "beta",
    "coordinator",
    "f_set_index",
    "combination_unrank",
    "f_set",
    "worst_case_round_bound",
]


def alpha(n: int, t: int) -> int:
    """Number of witness sets in the base algorithm: ``C(n, n - t)``."""
    return comb(n, n - t)


def beta(n: int, t: int, k: int) -> int:
    """Number of witness sets with tuning parameter ``k``: ``C(n, n-t+k)``."""
    _check_k(n, t, k)
    return comb(n, n - t + k)


def coordinator(r: int, n: int) -> int:
    """Coordinator of round ``r``: ``((r - 1) mod n) + 1``."""
    if r < 1:
        raise ConfigurationError(f"round numbers start at 1, got {r}")
    return ((r - 1) % n) + 1


def f_set_index(r: int, n: int, t: int, k: int = 0) -> int:
    """1-based index of the witness set used in round ``r``.

    ``index(r) = ((ceil(r / n) - 1) mod beta) + 1`` — the witness set
    changes every ``n`` rounds and cycles with period ``beta * n``.
    """
    if r < 1:
        raise ConfigurationError(f"round numbers start at 1, got {r}")
    return ((ceil(r / n) - 1) % beta(n, t, k)) + 1


def combination_unrank(n: int, size: int, rank: int) -> tuple[int, ...]:
    """The ``rank``-th (0-based) size-``size`` subset of ``{1..n}``.

    Subsets are ordered lexicographically as sorted tuples; the algorithm
    peels off the leading element by counting how many combinations start
    with each candidate, so it runs in ``O(n * size)`` without enumerating
    the ``C(n, size)`` subsets.
    """
    total = comb(n, size)
    if not 0 <= rank < total:
        raise ConfigurationError(
            f"rank {rank} out of range for C({n}, {size}) = {total}"
        )
    result: list[int] = []
    candidate = 1
    remaining = size
    while remaining > 0:
        with_candidate = comb(n - candidate, remaining - 1)
        if rank < with_candidate:
            result.append(candidate)
            remaining -= 1
        else:
            rank -= with_candidate
        candidate += 1
    return tuple(result)


def f_set(r: int, n: int, t: int, k: int = 0) -> frozenset[int]:
    """The witness set ``F(r)`` of round ``r`` (size ``n - t + k``)."""
    index = f_set_index(r, n, t, k)
    return frozenset(combination_unrank(n, n - t + k, index - 1))


def worst_case_round_bound(n: int, t: int, k: int = 0) -> int:
    """Rounds needed to meet every (coordinator, F) pair once: ``beta * n``.

    With a ``<t+1+k>bisource`` *from the very beginning*, the algorithm
    reaches a convergence round within one full cycle of (coordinator,
    witness-set) pairs (Section 5.4).  ``k = 0`` gives ``alpha * n``,
    ``k = t`` gives ``n`` — the best possible for a rotating-coordinator
    algorithm.
    """
    return beta(n, t, k) * n


def _check_k(n: int, t: int, k: int) -> None:
    if not 0 <= k <= t:
        raise ConfigurationError(f"tuning parameter k must be in 0..t, got {k}")
    if n - t + k > n:
        raise ConfigurationError(f"witness sets of size {n - t + k} exceed n={n}")
