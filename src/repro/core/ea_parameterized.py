"""Parameterized eventual agreement — paper Section 5.4.

The base EA algorithm (``k = 0``) converges, in the ``<t+1>bisource``-
from-the-start model, within ``alpha * n`` rounds, ``alpha = C(n, n-t)``:
up to one full cycle through every (coordinator, witness set) pair.
Strengthening the synchrony assumption to a ``<t+1+k>bisource`` and
widening the witness sets to ``n - t + k`` members shrinks the number of
witness sets to ``beta = C(n, n-t+k)`` and the horizon to ``beta * n``;
at ``k = t`` a single witness set remains and the bound is ``n`` — the
best possible for a rotating-coordinator algorithm.

The paper delegates the parameterized pseudocode to its (unavailable)
tech report; this class is the reconstruction documented in DESIGN.md
deviation 2 — identical to Figure 3 except that line 7 requires ``k + 1``
matching non-⊥ relays from ``F(r)`` members, which is necessary because
with exactly ``t`` faults every size-``n-t+k`` witness set contains at
least ``k`` Byzantine processes.
"""

from __future__ import annotations

from typing import Any, Callable

from ..broadcast.cooperative import CooperativeBroadcast
from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..runtime.process import Process
from .eventual_agreement import EventualAgreement, default_timeout
from .values import Selector, first_added

__all__ = ["ParameterizedEventualAgreement"]


class ParameterizedEventualAgreement(EventualAgreement):
    """Figure 3 with the Section 5.4 tuning parameter ``k`` mandatory.

    Functionally identical to :class:`EventualAgreement` with the same
    ``k``; this subclass exists so call sites exploring the trade-off are
    explicit about requiring the stronger ``<t+1+k>bisource`` assumption.
    """

    def __init__(
        self,
        process: Process,
        rb: ReliableBroadcast,
        n: int,
        t: int,
        m: int | None,
        k: int,
        timeout_fn: Callable[[int], float] = default_timeout,
        cb_factory: type[CooperativeBroadcast] = CooperativeBroadcast,
        selector: Selector = first_added,
        namespace: str = "",
    ) -> None:
        if k < 1:
            raise ConfigurationError(
                "ParameterizedEventualAgreement requires k >= 1; "
                "use EventualAgreement for the base algorithm (k = 0)"
            )
        super().__init__(
            process,
            rb,
            n,
            t,
            m,
            k=k,
            timeout_fn=timeout_fn,
            cb_factory=cb_factory,
            selector=selector,
            namespace=namespace,
        )

    def required_bisource_width(self) -> int:
        """The synchrony assumption this instance needs: ``t + 1 + k``."""
        return self.t + 1 + self.k
