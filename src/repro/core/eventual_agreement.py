"""Eventual agreement (EA) — paper Section 5, Figure 3.

The EA object carries the *liveness* of consensus.  Per round it offers
``EA_propose(r, v)`` with three properties:

* EA-Termination: if all correct processes invoke at round ``r``, all
  invocations terminate;
* EA-Validity (deliberately weak): if all correct processes propose the
  same ``v`` at round ``r``, nothing else is returned at ``r``;
* EA-Eventual agreement: over infinitely many rounds there are infinitely
  many at which all correct processes return one common value that some
  correct process proposed — *provided* the system contains an eventual
  ``<t+1+k>bisource``.

Round machinery (Section 5.2): ``coord(r)`` rotates over all processes;
``F(r)`` rotates over all witness sets (size ``n - t + k``).  The round-
``r`` coordinator champions the first value it receives from an ``F(r)``
member; processes relay the championed value, or ⊥ if their round timer
(set to ``timeout_fn(r)``, an increasing function) expires first.  In a
round whose coordinator is the bisource, whose witness set contains the
bisource's timely output set, and whose timeout exceeds ``2 * delta``,
every correct process returns the championed value (Lemma 3).

Two documented deviations from the literal pseudocode (DESIGN.md §2):

1. the round timer is armed *before* the early return of line 4 (else a
   line-4 returner never relays and EA-Termination can fail — reproduced
   by ``strict_paper_timers=True`` in the regression test);
2. with ``k > 0`` the line-7 witness rule requires ``k + 1`` matching
   non-⊥ relays from ``F(r)`` members (with exactly ``t`` faults every
   size-``n-t+k`` witness set contains at least ``k`` Byzantine members,
   so the paper's 1-witness rule is only sound for ``k = 0``).
"""

from __future__ import annotations

from typing import Any, Callable

from ..analysis.feasibility import check_feasibility
from ..broadcast.cooperative import CooperativeBroadcast
from ..broadcast.reliable import ReliableBroadcast
from ..errors import ConfigurationError
from ..net.messages import Message
from ..runtime.process import Process
from ..runtime.timers import RoundTimer
from .coord import coordinator, f_set
from .values import BOT, Selector, first_added

__all__ = ["EventualAgreement", "default_timeout"]


def default_timeout(r: int) -> float:
    """The paper's timeout schedule: round ``r`` waits ``r`` time units.

    Any increasing function works (footnote 3); what matters is that the
    timeout eventually exceeds ``2 * delta``.
    """
    return float(r)


class _RoundState:
    """Per-round local state of the EA object."""

    __slots__ = (
        "cb",
        "prop2",
        "relays",
        "coord_seen",
        "coord_value",
        "coord_sent",
        "relay_sent",
        "timer",
        "returned",
        "f_members",
    )

    def __init__(self, cb: CooperativeBroadcast, timer: RoundTimer,
                 f_members: frozenset[int]) -> None:
        self.cb = cb
        self.prop2: dict[int, Any] = {}  # first EA_PROP2 per sender
        self.relays: dict[int, Any] = {}  # first EA_RELAY per sender
        self.coord_seen = False
        self.coord_value: Any = None
        self.coord_sent = False  # am I the coordinator and did I champion?
        self.relay_sent = False
        self.timer = timer
        self.returned: Any = None
        self.f_members = f_members


class EventualAgreement:
    """An m-valued EA object bound to one process (Figure 3).

    Args:
        process: Owning process.
        rb: Reliable-broadcast engine (used by the per-round CB instances).
        n, t: System parameters, ``t < n/3``.
        m: Bound on distinct correct proposals per round; ``None`` skips
            the feasibility check (⊥-variant).
        k: Section 5.4 tuning parameter, ``0 <= k <= t``.  Requires a
            ``<t+1+k>bisource``; witness sets have size ``n - t + k`` and
            the worst-case convergence horizon drops to ``C(n, n-t+k)*n``
            rounds.  ``k = 0`` is the base algorithm.
        timeout_fn: Increasing round-timeout schedule (default: ``r``).
        cb_factory: CB class for the per-round instances.
        selector: Deterministic "any value in cb_valid" choice.
        strict_paper_timers: Reproduce the literal line order of Figure 3
            (timer armed only at line 5).  Only for the liveness
            counterexample test; do not use otherwise.
        namespace: Distinguishes coexisting EA objects on one process
            (e.g. one per state-machine-replication slot); all correct
            processes must use equal namespaces for the same object.
    """

    PROP2 = "EA_PROP2"
    COORD = "EA_COORD"
    RELAY = "EA_RELAY"

    def __init__(
        self,
        process: Process,
        rb: ReliableBroadcast,
        n: int,
        t: int,
        m: int | None,
        k: int = 0,
        timeout_fn: Callable[[int], float] = default_timeout,
        cb_factory: type[CooperativeBroadcast] = CooperativeBroadcast,
        selector: Selector = first_added,
        strict_paper_timers: bool = False,
        namespace: str = "",
    ) -> None:
        if not n > 3 * t:
            raise ConfigurationError(f"EA requires n > 3t, got n={n}, t={t}")
        if not 0 <= k <= t:
            raise ConfigurationError(f"k must be in 0..t, got k={k}")
        if m is not None:
            check_feasibility(n, t, m)
        self.process = process
        self.rb = rb
        self.n = n
        self.t = t
        self.k = k
        self.f_size = n - t + k
        self.witness_threshold = k + 1
        self.timeout_fn = timeout_fn
        self.cb_factory = cb_factory
        self.selector = selector
        self.strict_paper_timers = strict_paper_timers
        self.namespace = namespace
        if namespace:
            suffix = f":{namespace}"
            self.PROP2 = self.PROP2 + suffix
            self.COORD = self.COORD + suffix
            self.RELAY = self.RELAY + suffix
        self._rounds: dict[int, _RoundState] = {}
        #: Highest round this process proposed in.
        self.last_proposed_round = 0
        process.register_handler(self.PROP2, self._on_prop2)
        process.register_handler(self.COORD, self._on_coord)
        process.register_handler(self.RELAY, self._on_relay)

    # ------------------------------------------------------------------
    # Round state
    # ------------------------------------------------------------------
    def _round(self, r: int) -> _RoundState:
        state = self._rounds.get(r)
        if state is None:
            cb = self.cb_factory(
                self.process,
                self.rb,
                self.n,
                self.t,
                instance=("EA", self.namespace, r),
                selector=self.selector,
            )
            timer = RoundTimer(self.process.sim, on_expire=None)
            members = f_set(r, self.n, self.t, self.k)
            state = _RoundState(cb, timer, members)
            # Bind the expiry action now that the state exists.
            timer._on_expire = lambda: self._on_timer_expired(state, r)
            self._rounds[r] = state
        return state

    def round_returned(self, r: int) -> Any:
        """Value this process returned at round ``r`` (None if still open)."""
        state = self._rounds.get(r)
        return state.returned if state is not None else None

    def round_diagnostics(self, r: int) -> dict[str, Any] | None:
        """A read-only snapshot of the local round-``r`` state.

        Intended for debugging and tracing: which EA_PROP2/EA_RELAY
        messages were recorded, whether the coordinator's champion
        arrived, and what the round timer did.  Returns None for rounds
        this process has no state for.
        """
        state = self._rounds.get(r)
        if state is None:
            return None
        timer = state.timer
        if timer.expired:
            timer_state = "expired"
        elif timer.disabled:
            timer_state = "disabled"
        elif timer.running:
            timer_state = "running"
        else:
            timer_state = "unset"
        return {
            "round": r,
            "coordinator": coordinator(r, self.n),
            "f_members": sorted(state.f_members),
            "prop2": dict(state.prop2),
            "relays": dict(state.relays),
            "coord_seen": state.coord_seen,
            "coord_value": state.coord_value,
            "relay_sent": state.relay_sent,
            "timer": timer_state,
            "returned": state.returned,
        }

    # ------------------------------------------------------------------
    # Operation: EA_propose (Figure 3 lines 1-10)
    # ------------------------------------------------------------------
    async def propose(self, r: int, value: Any) -> Any:
        """ea-propose ``value`` at round ``r``; returns the round's value.

        Correct usage (assumed by the paper): one invocation per round,
        consecutive round numbers.
        """
        if r != self.last_proposed_round + 1:
            raise ConfigurationError(
                f"EA rounds must be consecutive: expected "
                f"{self.last_proposed_round + 1}, got {r}"
            )
        self.last_proposed_round = r
        state = self._round(r)
        aux = await state.cb.cb_broadcast(value)  # line 1
        self.process.broadcast(self.PROP2, (r, aux))  # line 2
        witness = await self.process.wait_until(  # line 3
            lambda: self._prop2_quorum(state)
        )
        if not self.strict_paper_timers:
            # Deviation 1: arm before the early return so this process
            # relays in every round (EA-Termination).
            state.timer.set(self.timeout_fn(r))  # line 5 (hoisted)
        values = set(witness.values())
        if len(values) == 1:  # line 4
            state.returned = next(iter(values))
            return state.returned
        if self.strict_paper_timers:
            state.timer.set(self.timeout_fn(r))  # line 5 (literal position)
        await self.process.wait_until(  # line 6
            lambda: len(state.relays) >= self.n - self.t or None
        )
        championed = self._relay_witness_value(state)  # line 7
        if championed is not None:
            state.returned = championed  # line 8
        else:
            state.returned = value  # line 9
        return state.returned

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _prop2_quorum(self, state: _RoundState) -> dict[int, Any] | None:
        """Line 3: ``n - t`` EA_PROP2 whose aux values are in ``cb_valid``."""
        qualifying: dict[int, Any] = {}
        for sender, value in state.prop2.items():
            if state.cb.in_valid(value):
                qualifying[sender] = value
                if len(qualifying) == self.n - self.t:
                    return dict(qualifying)
        return None

    def _relay_witness_value(self, state: _RoundState) -> Any | None:
        """Line 7 (+ deviation 2): first value with ``k + 1`` matching
        non-⊥ relays from ``F(r)`` members, scanning arrival order."""
        counts: dict[Any, int] = {}
        for sender, value in state.relays.items():
            if sender in state.f_members and value is not BOT:
                counts[value] = counts.get(value, 0) + 1
                if counts[value] >= self.witness_threshold:
                    return value
        return None

    # ------------------------------------------------------------------
    # Handlers (Figure 3 lines 11-19)
    # ------------------------------------------------------------------
    def _on_prop2(self, message: Message) -> None:
        if not _valid_round_payload(message.payload):
            return
        r, value = message.payload
        state = self._round(r)
        if message.sender in state.prop2:
            return
        state.prop2[message.sender] = value
        # Lines 11-14: the round coordinator champions the first value it
        # receives from a member of F(r).
        if (
            self.process.pid == coordinator(r, self.n)
            and not state.coord_sent
            and message.sender in state.f_members
        ):
            state.coord_sent = True
            self.process.broadcast(self.COORD, (r, value))  # line 13

    def _on_coord(self, message: Message) -> None:
        if not _valid_round_payload(message.payload):
            return
        r, value = message.payload
        if message.sender != coordinator(r, self.n):
            return  # only the round coordinator may champion
        state = self._round(r)
        if state.coord_seen:
            return
        state.coord_seen = True
        state.coord_value = value
        # Lines 15-19, triggered by EA_COORD reception.
        if state.relay_sent:
            return
        state.relay_sent = True
        state.timer.disable()  # line 16
        v_coord = BOT if state.timer.expired else value  # line 17
        self.process.broadcast(self.RELAY, (r, v_coord))  # line 18

    def _on_timer_expired(self, state: _RoundState, r: int) -> None:
        # Lines 15-19, triggered by timer expiry.
        if state.relay_sent:
            return
        state.relay_sent = True
        self.process.broadcast(self.RELAY, (r, BOT))  # line 18 with ⊥
        self.process.notify()

    def _on_relay(self, message: Message) -> None:
        if not _valid_relay_payload(message.payload):
            return
        r, value = message.payload
        state = self._round(r)
        if message.sender in state.relays:
            return
        state.relays[message.sender] = value


def _valid_round_payload(payload: Any) -> bool:
    """Shield handlers from malformed Byzantine payloads."""
    return (
        isinstance(payload, tuple)
        and len(payload) == 2
        and isinstance(payload[0], int)
        and payload[0] >= 1
    )


def _valid_relay_payload(payload: Any) -> bool:
    return _valid_round_payload(payload)
