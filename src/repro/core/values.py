"""Value-domain helpers shared by the agreement objects.

Defines the default decision value ``BOT`` (the paper's ⊥, used by the
Section 7 variant), and the deterministic selectors used wherever the
paper allows an arbitrary choice ("return any value in cb_valid").
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["BOT", "Bot", "Selector", "first_added", "smallest"]


class Bot:
    """The default decision value ⊥ of the Section 7 variant.

    A singleton: ``BOT`` is falsy-free (always truthy), hashable, and
    orders *after* every other value under :func:`smallest` so a real
    proposal wins ties deterministically.
    """

    _instance: "Bot | None" = None

    def __new__(cls) -> "Bot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):  # keep singleton identity across pickling
        return (Bot, ())


BOT = Bot()

#: A selector picks one value from a non-empty ``cb_valid`` snapshot.
Selector = Callable[[Sequence[Any]], Any]


def first_added(values: Sequence[Any]) -> Any:
    """Pick the value that entered ``cb_valid`` first (arrival order)."""
    return values[0]


def smallest(values: Sequence[Any]) -> Any:
    """Pick the smallest comparable value; ⊥ loses every comparison.

    Useful when runs across different schedules should agree on the
    chosen value whenever their ``cb_valid`` sets are equal.
    """
    real = [v for v in values if v is not BOT]
    if not real:
        return BOT
    return min(real)
