"""Exception hierarchy for the ``repro`` library.

Every exception raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime anomalies.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "FeasibilityError",
    "SimulationError",
    "DeadlockError",
    "DeadlineExceeded",
    "CancelledError",
    "InvalidStateError",
    "ProtocolViolation",
    "InvariantViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A run or object was configured with inconsistent parameters."""


class FeasibilityError(ConfigurationError):
    """The m-valued feasibility condition ``n - t > m * t`` is violated.

    The paper (Sections 2.3 and 3) shows that CB-broadcast, adopt-commit and
    m-valued consensus are implementable only when some value is guaranteed
    to be proposed by at least ``t + 1`` correct processes, which requires
    ``n - t > m * t``.
    """


class SimulationError(ReproError):
    """The discrete-event simulation could not make progress as requested."""


class DeadlockError(SimulationError):
    """The event queue drained while some awaited future was still pending."""


class DeadlineExceeded(SimulationError):
    """Virtual time or the event budget ran out before the goal was reached."""


class CancelledError(ReproError):
    """A simulated task was cancelled before producing a result."""


class InvalidStateError(ReproError):
    """An operation was applied to a future/task in an incompatible state."""


class ProtocolViolation(ReproError):
    """A *correct* process observed behaviour forbidden by the protocol.

    This is raised only for conditions that the algorithms of the paper rule
    out for correct processes (e.g. delivering two different values for one
    reliable-broadcast instance); it never fires merely because a Byzantine
    process misbehaves.
    """


class InvariantViolation(ReproError):
    """A post-hoc trace check (``repro.analysis.invariants``) failed."""
