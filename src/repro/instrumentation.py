"""Zero-cost-when-idle instrumentation bus for the simulation kernel.

The kernel's observability used to be an ad-hoc list of network hooks:
every ``send`` and every delivery iterated the hook list even when it
was empty, and every observer (message counters, tracers) paid a Python
call per message whether or not anyone read its output.  Under the
paper's system model (Section 2.1 — local processing is instantaneous,
so runs are dominated by dense message cascades) that tax lands on the
hottest path in the whole system.

This module replaces the hook list with *probes*.  A :class:`Probe` is
one named event stream with a compiled ``emit`` attribute:

* **no sinks attached** — ``emit`` is ``None``, so an instrumented call
  site pays exactly one attribute load and one ``is None`` test;
* **one sink** — ``emit`` *is* the sink (no dispatch wrapper at all);
* **several sinks** — ``emit`` is a tiny closure over a tuple of sinks.

Call sites therefore follow one idiom::

    emit = self._send_probe.emit
    if emit is not None:
        emit(message, now)

An :class:`InstrumentationBus` is a namespace of probes shared by the
kernel components of one run: the simulator registers ``sim.step``, the
network registers ``net.send`` and ``net.deliver``, and analysis-side
observers (:class:`~repro.analysis.metrics.MessageCounter`,
:class:`~repro.analysis.traces.Tracer`) attach as sinks instead of
hooks.  Probe payloads are positional and minimal — ``(message, time)``
for network probes, ``(handle,)`` for the scheduler probe — so an
attached sink costs one Python call, and a detached one costs nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

__all__ = [
    "NET_DELIVER",
    "NET_SEND",
    "SIM_STEP",
    "InstrumentationBus",
    "Probe",
]

#: Standard kernel probe names.
NET_SEND = "net.send"
NET_DELIVER = "net.deliver"
SIM_STEP = "sim.step"

Sink = Callable[..., None]


class Probe:
    """One named event stream with a compiled emit path.

    ``emit`` is ``None`` while no sink is attached; instrumented call
    sites must check for that (the whole point is that the idle path
    compiles down to a single comparison).
    """

    __slots__ = ("name", "emit", "_sinks")

    def __init__(self, name: str) -> None:
        self.name = name
        self._sinks: list[Sink] = []
        #: ``None`` (idle), the single sink itself, or a fan-out closure.
        self.emit: Sink | None = None

    def attach(self, sink: Sink) -> Sink:
        """Add a sink; returns it (handy for detach bookkeeping)."""
        self._sinks.append(sink)
        self._recompile()
        return sink

    def detach(self, sink: Sink) -> bool:
        """Remove one previously attached sink; False if absent."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            return False
        self._recompile()
        return True

    def clear(self) -> None:
        """Detach every sink (the probe goes back to zero cost)."""
        self._sinks.clear()
        self.emit = None

    @property
    def sinks(self) -> tuple[Sink, ...]:
        """The attached sinks, in attach order."""
        return tuple(self._sinks)

    def _recompile(self) -> None:
        if not self._sinks:
            self.emit = None
        elif len(self._sinks) == 1:
            self.emit = self._sinks[0]
        else:
            sinks = tuple(self._sinks)

            def fan_out(*args: Any) -> None:
                for sink in sinks:
                    sink(*args)

            self.emit = fan_out

    def __bool__(self) -> bool:
        return bool(self._sinks)

    def __repr__(self) -> str:
        return f"Probe({self.name!r}, sinks={len(self._sinks)})"


class InstrumentationBus:
    """A namespace of probes shared by the components of one run.

    Components *publish* probes with :meth:`probe` (get-or-create, so
    publication order does not matter); observers *subscribe* with
    :meth:`attach`.  A bus is cheap enough to create per run, and a
    long-lived bus (e.g. one per sweep worker) can be re-armed between
    runs because sinks — not probes — carry all the state.
    """

    __slots__ = ("_probes",)

    def __init__(self) -> None:
        self._probes: dict[str, Probe] = {}

    def probe(self, name: str) -> Probe:
        """The probe called ``name``, created on first use."""
        probe = self._probes.get(name)
        if probe is None:
            probe = self._probes[name] = Probe(name)
        return probe

    def attach(self, name: str, sink: Sink) -> Sink:
        """Attach ``sink`` to the probe called ``name``."""
        return self.probe(name).attach(sink)

    def detach(self, name: str, sink: Sink) -> bool:
        """Detach ``sink`` from the probe called ``name``."""
        probe = self._probes.get(name)
        return probe.detach(sink) if probe is not None else False

    def attach_many(self, sinks: "dict[str, Sink]") -> None:
        """Attach one sink per probe name (observers arming several at once)."""
        for name, sink in sinks.items():
            self.probe(name).attach(sink)

    def clear(self) -> None:
        """Detach every sink from every probe (probes survive)."""
        for probe in self._probes.values():
            probe.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def __iter__(self) -> Iterator[Probe]:
        return iter(self._probes.values())

    def __repr__(self) -> str:
        active = sum(1 for probe in self._probes.values() if probe)
        return f"InstrumentationBus(probes={len(self._probes)}, active={active})"
