"""Point-to-point network substrate with per-channel timing models."""

from .channel import Channel, ChannelStats
from .messages import Message
from .network import Network
from .timing import (
    Asynchronous,
    ChannelTiming,
    ConstantDelay,
    DelayDistribution,
    EventuallyTimely,
    ExponentialDelay,
    PerTagTiming,
    ScriptedDelay,
    ScriptedTiming,
    Timely,
    UniformDelay,
)
from .topology import (
    Topology,
    bisource_sets,
    fully_asynchronous,
    fully_timely,
    is_bisource,
    single_bisource,
)

__all__ = [
    "Channel",
    "ChannelStats",
    "Message",
    "Network",
    "Asynchronous",
    "ChannelTiming",
    "ConstantDelay",
    "DelayDistribution",
    "EventuallyTimely",
    "ExponentialDelay",
    "PerTagTiming",
    "ScriptedDelay",
    "ScriptedTiming",
    "Timely",
    "UniformDelay",
    "Topology",
    "bisource_sets",
    "fully_asynchronous",
    "fully_timely",
    "is_bisource",
    "single_bisource",
]
