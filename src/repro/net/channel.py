"""A unidirectional point-to-point channel.

Each ordered pair of processes is connected by its own channel with its
own timing model (the paper stresses that the two directions between two
processes may have *different* timing properties).  The channel is
reliable: it never loses, duplicates, corrupts or forges messages.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from .messages import Message
from .timing import ChannelTiming

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.loop import Simulator

__all__ = ["Channel", "ChannelStats"]


class ChannelStats:
    """Running statistics for one channel."""

    __slots__ = ("messages", "total_delay", "max_delay", "last_delivery")

    def __init__(self) -> None:
        self.messages = 0
        self.total_delay = 0.0
        self.max_delay = 0.0
        self.last_delivery = 0.0

    @property
    def mean_delay(self) -> float:
        """Mean observed delay (0.0 if no messages were sent)."""
        return self.total_delay / self.messages if self.messages else 0.0

    def record(self, delay: float, delivery_time: float) -> None:
        """Account for one transmitted message."""
        self.messages += 1
        self.total_delay += delay
        if delay > self.max_delay:
            self.max_delay = delay
        if delivery_time > self.last_delivery:
            self.last_delivery = delivery_time


class Channel:
    """One direction of a process pair, with its own timing and RNG stream.

    When ``fifo`` is true, delivery times are clamped to be non-decreasing.
    The paper's algorithms do not require FIFO channels, so the default is
    non-FIFO; the clamp never violates an eventually-timely bound because
    the bound ``max(tau, s) + delta`` is monotone in the send time ``s``.
    """

    __slots__ = ("src", "dst", "timing", "rng", "fifo", "stats", "_last_delivery")

    def __init__(
        self,
        src: int,
        dst: int,
        timing: ChannelTiming,
        rng: random.Random,
        fifo: bool = False,
    ) -> None:
        self.src = src
        self.dst = dst
        self.timing = timing
        self.rng = rng
        self.fifo = fifo
        self.stats = ChannelStats()
        self._last_delivery = 0.0

    def transmit(
        self,
        sim: "Simulator",
        message: Message,
        deliver: Callable[[Message], None],
    ) -> float:
        """Schedule delivery of ``message``; return the delivery time."""
        send_time = sim._clock._now
        delivery_time = self.timing.delivery_time_for(message, send_time, self.rng)
        if delivery_time < send_time:
            # Defensive: a broken timing model must not move time backwards.
            delivery_time = send_time
        if self.fifo and delivery_time < self._last_delivery:
            delivery_time = self._last_delivery
        self._last_delivery = delivery_time
        # Inlined ``self.stats.record(...)``: one delivery is scheduled
        # per message in the system, so the method call plus the delay
        # tuple it implies are pure per-event overhead.
        stats = self.stats
        delay = delivery_time - send_time
        stats.messages += 1
        stats.total_delay += delay
        if delay > stats.max_delay:
            stats.max_delay = delay
        if delivery_time > stats.last_delivery:
            stats.last_delivery = delivery_time
        sim.schedule_delivery(delivery_time, deliver, message)
        return delivery_time

    def __repr__(self) -> str:
        return (
            f"Channel({self.src}->{self.dst}, {self.timing.describe()}, "
            f"msgs={self.stats.messages})"
        )
