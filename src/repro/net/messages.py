"""Message representation for the point-to-point network.

A message carries its sender identity (the network model of the paper,
Section 2.1, guarantees that receivers can identify senders — no process
can impersonate another), a protocol ``tag`` and an arbitrary ``payload``.
Protocol layers encode instance identifiers (round numbers, broadcast
instance keys) inside the payload.

``Message`` is a plain ``__slots__`` class rather than a frozen
dataclass: it sits on the hottest allocation path in the whole system
(one per send, n per broadcast fan-out), and the frozen-dataclass
``__init__`` — six ``object.__setattr__`` calls per message — was
measurable at flood rates.  The class is *mutable by the kernel only*:
:class:`~repro.net.network.Network` recycles retired messages through a
per-context freelist (:mod:`repro.sim.pool`), re-stamping the six
fields in place.  Protocol and analysis code must keep treating
messages as immutable values; a message that needs to outlive its
delivery (or its observation by an instrumentation sink) must be
:meth:`copy`-ed — see the copy-on-emit contract in
:mod:`repro.instrumentation`.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Message"]


class Message:
    """A network message, equal by ``(sender, dest, tag, payload)``.

    Attributes:
        sender: Process id of the sender (authenticated by the channel).
        dest: Process id of the destination.
        tag: Protocol message type (e.g. ``"RB_ECHO"``, ``"EA_COORD"``).
        payload: Arbitrary, protocol-defined content.
        sent_at: Virtual send time (stamped by the network).
        uid: Per-network unique, monotonically increasing message id.

    ``sent_at`` and ``uid`` are delivery bookkeeping and excluded from
    equality and hashing, exactly like the former dataclass's
    ``compare=False`` fields.
    """

    __slots__ = ("sender", "dest", "tag", "payload", "sent_at", "uid")

    def __init__(
        self,
        sender: int,
        dest: int,
        tag: str,
        payload: Any,
        sent_at: float = 0.0,
        uid: int = -1,
    ) -> None:
        self.sender = sender
        self.dest = dest
        self.tag = tag
        self.payload = payload
        self.sent_at = sent_at
        self.uid = uid

    def copy(self) -> "Message":
        """A snapshot safe to retain across deliveries.

        The copy is an ordinary, never-recycled message: sinks (or any
        caller) that keep messages past the synchronous observation
        window take one of these instead of the live kernel object.
        """
        return Message(
            self.sender, self.dest, self.tag, self.payload,
            self.sent_at, self.uid,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Message:
            return NotImplemented
        return (
            self.sender == other.sender
            and self.dest == other.dest
            and self.tag == other.tag
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.sender, self.dest, self.tag, self.payload))

    def __repr__(self) -> str:
        return (
            f"Message({self.sender}->{self.dest} {self.tag} {self.payload!r} "
            f"@{self.sent_at:g})"
        )
