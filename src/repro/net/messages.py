"""Message representation for the point-to-point network.

A message carries its sender identity (the network model of the paper,
Section 2.1, guarantees that receivers can identify senders — no process
can impersonate another), a protocol ``tag`` and an arbitrary ``payload``.
Protocol layers encode instance identifiers (round numbers, broadcast
instance keys) inside the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable network message.

    Attributes:
        sender: Process id of the sender (authenticated by the channel).
        dest: Process id of the destination.
        tag: Protocol message type (e.g. ``"RB_ECHO"``, ``"EA_COORD"``).
        payload: Arbitrary, protocol-defined content.
        sent_at: Virtual send time (stamped by the network).
        uid: Per-network unique, monotonically increasing message id.
    """

    sender: int
    dest: int
    tag: str
    payload: Any
    sent_at: float = field(default=0.0, compare=False)
    uid: int = field(default=-1, compare=False)

    def __repr__(self) -> str:
        return (
            f"Message({self.sender}->{self.dest} {self.tag} {self.payload!r} "
            f"@{self.sent_at:g})"
        )
