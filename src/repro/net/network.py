"""The n-process point-to-point network (paper Section 2.1).

The network is *reliable*: it neither loses nor duplicates nor corrupts
messages, and every transfer delay is finite.  It is *authenticated at the
channel level*: a message handed to process ``j`` always carries the true
identity of its sender, so Byzantine processes cannot impersonate others.
Byzantine processes also cannot influence the delivery schedule — delays
are drawn by the channel timing models alone.

Fast-path notes.  Channels are materialized *lazily*: the conceptual
n×n matrix exists, but a :class:`~repro.net.channel.Channel` object (and
its seeded RNG stream) is only built the first time an ordered pair
carries a message, so large-n grid cells stop paying O(n²) setup for
pairs the protocol never exercises.  Laziness cannot perturb results:
each channel's RNG stream is derived from the pair's *key*, not from
creation order.  Observability goes through the instrumentation bus
(:mod:`repro.instrumentation`): the network publishes ``net.send`` and
``net.deliver`` probes whose emit path is a single pointer check while
no sink is attached.  The two counters every run result needs
(``messages_sent``, ``sent_by_tag``) stay native — they are C-level
int/dict operations, cheaper than any sink indirection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..errors import ConfigurationError
from ..instrumentation import NET_DELIVER, NET_SEND, InstrumentationBus
from ..sim.pool import MAX_POOL, ObjectPools
from ..sim.random import RngRegistry
from .channel import Channel
from .messages import Message
from .timing import Asynchronous, ChannelTiming, Timely

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.loop import Simulator

__all__ = ["Network"]

#: Delivery bound used for the "virtual" self channel each process has to
#: itself (the paper assumes it exists and is always timely).
_SELF_CHANNEL_DELTA = 1e-9

DeliverFn = Callable[[Message], None]
HookFn = Callable[[str, Message, float], None]


class Network:
    """The full n×n channel matrix plus delivery plumbing and counters.

    Args:
        sim: The simulator that owns virtual time.
        n: Number of processes; process ids are ``1..n`` as in the paper.
        timing: Mapping ``(src, dst) -> ChannelTiming`` for specific pairs.
            Pairs not present fall back to ``default_timing``.
        default_timing: Timing model for unspecified pairs
            (default: asynchronous with exponential delays).
        rng: Seed registry; each channel gets stream ``("chan", src, dst)``.
        fifo: Whether channels deliver in FIFO order (default False).
        bus: Instrumentation bus to publish the ``net.send`` /
            ``net.deliver`` probes on (default: the simulator's bus, so
            one run shares one bus without extra wiring).
        pools: Object freelists / intern tables to recycle through
            (default: the simulator's, so one run shares one set and a
            sweep's :class:`KernelContext` keeps them warm across runs).
        recycle: Enable the message freelist.  A retired message is
            re-stamped for a later send *after its delivery handler
            returns*, so protocol code must not retain delivered
            messages (none of the in-repo protocols do; they
            destructure payloads synchronously).  Messages observed by
            an instrumentation sink are **never** recycled — the
            copy-on-emit contract (:mod:`repro.instrumentation`) — so
            tracers and golden fixtures see stable values either way.
    """

    def __init__(
        self,
        sim: "Simulator",
        n: int,
        timing: Mapping[tuple[int, int], ChannelTiming] | None = None,
        default_timing: ChannelTiming | None = None,
        rng: RngRegistry | None = None,
        fifo: bool = False,
        bus: InstrumentationBus | None = None,
        pools: ObjectPools | None = None,
        recycle: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got {n}")
        self.sim = sim
        self.n = n
        self.rng = rng if rng is not None else RngRegistry(0)
        self._default_timing = (
            default_timing if default_timing is not None else Asynchronous()
        )
        overrides = dict(timing) if timing else {}
        for (src, dst) in overrides:
            if not (1 <= src <= n and 1 <= dst <= n):
                raise ConfigurationError(
                    f"timing override for out-of-range pair ({src}, {dst})"
                )
        self._overrides = overrides
        self._self_timing = Timely(delta=_SELF_CHANNEL_DELTA)
        self._fifo = fifo
        #: Lazily materialized channels, keyed by ordered pair.
        self._channels: dict[tuple[int, int], Channel] = {}
        self._processes: dict[int, DeliverFn] = {}
        self.bus = bus if bus is not None else getattr(
            sim, "bus", None
        ) or InstrumentationBus()
        self._send_probe = self.bus.probe(NET_SEND)
        self._deliver_probe = self.bus.probe(NET_DELIVER)
        if pools is None:
            pools = getattr(sim, "pools", None)
            if pools is None:
                pools = ObjectPools()
        self.pools = pools
        self._msg_pool = pools.messages
        self._tags = pools.tags
        self._pids = pools.pid_range(n)
        self._recycle = recycle
        #: One bound method for the network's lifetime — ``self._deliver``
        #: at the transmit call site would allocate one per send.
        self._deliver_cb = self._deliver
        self._next_uid = 0
        #: Total messages sent through the network.
        self.messages_sent = 0
        #: Message counts keyed by tag.
        self.sent_by_tag: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_process(self, pid: int, deliver: DeliverFn) -> None:
        """Attach the delivery callback for process ``pid``."""
        if not 1 <= pid <= self.n:
            raise ConfigurationError(f"process id {pid} out of range 1..{self.n}")
        if pid in self._processes:
            raise ConfigurationError(f"process {pid} registered twice")
        self._processes[pid] = deliver

    def add_hook(self, hook: HookFn) -> None:
        """Register a tracing hook ``hook(kind, message, time)``.

        ``kind`` is ``"send"`` or ``"deliver"``.  Compatibility shim over
        the instrumentation bus: the hook is attached as one sink on each
        of the ``net.send`` / ``net.deliver`` probes.  New code should
        attach probe sinks directly (they skip the ``kind`` dispatch).
        """
        self._send_probe.attach(lambda message, now: hook("send", message, now))
        self._deliver_probe.attach(
            lambda message, now: hook("deliver", message, now)
        )

    def channel(self, src: int, dst: int) -> Channel:
        """The channel object for the ordered pair (built on first use)."""
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = self._materialize(src, dst)
        return channel

    def _materialize(self, src: int, dst: int) -> Channel:
        if not (1 <= src <= self.n and 1 <= dst <= self.n):
            raise ConfigurationError(
                f"channel pair ({src}, {dst}) out of range 1..{self.n}"
            )
        model = self._overrides.get((src, dst))
        if model is None:
            model = self._self_timing if src == dst else self._default_timing
        channel = Channel(
            src, dst, model, self.rng.stream("chan", src, dst), fifo=self._fifo
        )
        self._channels[(src, dst)] = channel
        return channel

    @property
    def channels_materialized(self) -> int:
        """How many of the n² conceptual channels actually exist."""
        return len(self._channels)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, tag: str, payload: Any) -> Message:
        """Send one message; returns the stamped :class:`Message`.

        The ``src`` argument is trusted because only the process runtime
        (or the adversary harness, for its own pid) calls this — matching
        the model's no-impersonation guarantee.

        In ``recycle`` mode the returned message is *borrowed*: it is
        valid until its delivery handler returns, after which the kernel
        may re-stamp it for a later send.  Callers that keep it longer
        must take a :meth:`Message.copy`.
        """
        if dst not in self._processes:
            raise ConfigurationError(f"no process registered with id {dst}")
        interned = self._tags.get(tag)
        if interned is None:
            interned = self.pools.intern_tag(tag)
        tag = interned
        now = self.sim._clock._now
        uid = self._next_uid
        self._next_uid = uid + 1
        pools = self.pools
        pool = self._msg_pool
        if pool:
            message = pool.pop()
            pools.messages_reused += 1
            message.sender = src
            message.dest = dst
            message.tag = tag
            message.payload = payload
            message.sent_at = now
            message.uid = uid
        else:
            pools.messages_created += 1
            message = Message(src, dst, tag, payload, now, uid)
        self.messages_sent += 1
        counts = self.sent_by_tag
        counts[tag] = counts.get(tag, 0) + 1
        emit = self._send_probe.emit
        if emit is not None:
            emit(message, now)
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = self._materialize(src, dst)
        channel.transmit(self.sim, message, self._deliver_cb)
        return message

    def broadcast(self, src: int, tag: str, payload: Any) -> None:
        """Best-effort broadcast: send to every process, self included.

        This is the unreliable broadcast of Section 2.1; a *Byzantine*
        sender is free not to use it and send different payloads to
        different destinations via :meth:`send`.

        Batched: a broadcast is the hottest send pattern in every
        protocol here (RB echo/ready floods are n² of these), so the
        per-send fixed costs — virtual-clock read, uid allocation,
        counter bumps, probe check — are paid once for the whole fan-out
        instead of once per destination.  Observable behaviour is
        bit-identical to n :meth:`send` calls: uids are assigned in the
        same ascending destination order, counters reach the same
        values, and the probe sees every message with the same stamp.
        """
        processes = self._processes
        n = self.n
        if len(processes) != n:
            # Partial registration: fall back to per-destination sends so
            # the "no process registered" error surfaces identically.
            send = self.send
            for dst in range(1, n + 1):
                send(src, dst, tag, payload)
            return
        interned = self._tags.get(tag)
        if interned is None:
            interned = self.pools.intern_tag(tag)
        tag = interned
        now = self.sim._clock._now
        uid = self._next_uid
        self._next_uid = uid + n
        self.messages_sent += n
        counts = self.sent_by_tag
        counts[tag] = counts.get(tag, 0) + n
        pools = self.pools
        pool = self._msg_pool
        reused = len(pool)
        if reused > n:
            reused = n
        pools.messages_reused += reused
        pools.messages_created += n - reused
        emit = self._send_probe.emit
        channels = self._channels
        deliver = self._deliver_cb
        sim = self.sim
        for dst in self._pids:
            if pool:
                message = pool.pop()
                message.sender = src
                message.dest = dst
                message.tag = tag
                message.payload = payload
                message.sent_at = now
                message.uid = uid
            else:
                message = Message(src, dst, tag, payload, now, uid)
            uid += 1
            if emit is not None:
                emit(message, now)
            channel = channels.get((src, dst))
            if channel is None:
                channel = self._materialize(src, dst)
            channel.transmit(sim, message, deliver)

    def _deliver(self, message: Message) -> None:
        emit = self._deliver_probe.emit
        if emit is not None:
            emit(message, self.sim._clock._now)
        self._processes[message.dest](message)
        # Retire the message once the handler returns.  Copy-on-emit: a
        # message any probe observed is never recycled, so sinks that
        # retain references (tracers, golden fixtures) stay valid.
        if (
            self._recycle
            and emit is None
            and self._send_probe.emit is None
            and len(self._msg_pool) < MAX_POOL
        ):
            message.payload = None
            self._msg_pool.append(message)

    def __repr__(self) -> str:
        return f"Network(n={self.n}, sent={self.messages_sent})"
