"""The n-process point-to-point network (paper Section 2.1).

The network is *reliable*: it neither loses nor duplicates nor corrupts
messages, and every transfer delay is finite.  It is *authenticated at the
channel level*: a message handed to process ``j`` always carries the true
identity of its sender, so Byzantine processes cannot impersonate others.
Byzantine processes also cannot influence the delivery schedule — delays
are drawn by the channel timing models alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..errors import ConfigurationError
from ..sim.random import RngRegistry
from .channel import Channel
from .messages import Message
from .timing import Asynchronous, ChannelTiming, Timely

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.loop import Simulator

__all__ = ["Network"]

#: Delivery bound used for the "virtual" self channel each process has to
#: itself (the paper assumes it exists and is always timely).
_SELF_CHANNEL_DELTA = 1e-9

DeliverFn = Callable[[Message], None]
HookFn = Callable[[str, Message, float], None]


class Network:
    """The full n×n channel matrix plus delivery plumbing and counters.

    Args:
        sim: The simulator that owns virtual time.
        n: Number of processes; process ids are ``1..n`` as in the paper.
        timing: Mapping ``(src, dst) -> ChannelTiming`` for specific pairs.
            Pairs not present fall back to ``default_timing``.
        default_timing: Timing model for unspecified pairs
            (default: asynchronous with exponential delays).
        rng: Seed registry; each channel gets stream ``("chan", src, dst)``.
        fifo: Whether channels deliver in FIFO order (default False).
    """

    def __init__(
        self,
        sim: "Simulator",
        n: int,
        timing: Mapping[tuple[int, int], ChannelTiming] | None = None,
        default_timing: ChannelTiming | None = None,
        rng: RngRegistry | None = None,
        fifo: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got {n}")
        self.sim = sim
        self.n = n
        self.rng = rng if rng is not None else RngRegistry(0)
        self._default_timing = (
            default_timing if default_timing is not None else Asynchronous()
        )
        overrides = dict(timing) if timing else {}
        for (src, dst) in overrides:
            if not (1 <= src <= n and 1 <= dst <= n):
                raise ConfigurationError(
                    f"timing override for out-of-range pair ({src}, {dst})"
                )
        self_timing = Timely(delta=_SELF_CHANNEL_DELTA)
        self._channels: dict[tuple[int, int], Channel] = {}
        for src in range(1, n + 1):
            for dst in range(1, n + 1):
                if src == dst:
                    model: ChannelTiming = overrides.get((src, dst), self_timing)
                else:
                    model = overrides.get((src, dst), self._default_timing)
                self._channels[(src, dst)] = Channel(
                    src, dst, model, self.rng.stream("chan", src, dst), fifo=fifo
                )
        self._processes: dict[int, DeliverFn] = {}
        self._hooks: list[HookFn] = []
        self._next_uid = 0
        #: Total messages sent through the network.
        self.messages_sent = 0
        #: Message counts keyed by tag.
        self.sent_by_tag: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_process(self, pid: int, deliver: DeliverFn) -> None:
        """Attach the delivery callback for process ``pid``."""
        if not 1 <= pid <= self.n:
            raise ConfigurationError(f"process id {pid} out of range 1..{self.n}")
        if pid in self._processes:
            raise ConfigurationError(f"process {pid} registered twice")
        self._processes[pid] = deliver

    def add_hook(self, hook: HookFn) -> None:
        """Register a tracing hook ``hook(kind, message, time)``.

        ``kind`` is ``"send"`` or ``"deliver"``.
        """
        self._hooks.append(hook)

    def channel(self, src: int, dst: int) -> Channel:
        """Return the channel object for the ordered pair ``(src, dst)``."""
        return self._channels[(src, dst)]

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, tag: str, payload: Any) -> Message:
        """Send one message; returns the stamped :class:`Message`.

        The ``src`` argument is trusted because only the process runtime
        (or the adversary harness, for its own pid) calls this — matching
        the model's no-impersonation guarantee.
        """
        if dst not in self._processes:
            raise ConfigurationError(f"no process registered with id {dst}")
        message = Message(
            sender=src,
            dest=dst,
            tag=tag,
            payload=payload,
            sent_at=self.sim.now,
            uid=self._next_uid,
        )
        self._next_uid += 1
        self.messages_sent += 1
        self.sent_by_tag[tag] = self.sent_by_tag.get(tag, 0) + 1
        for hook in self._hooks:
            hook("send", message, self.sim.now)
        self._channels[(src, dst)].transmit(self.sim, message, self._deliver)
        return message

    def broadcast(self, src: int, tag: str, payload: Any) -> None:
        """Best-effort broadcast: send to every process, self included.

        This is the unreliable broadcast of Section 2.1; a *Byzantine*
        sender is free not to use it and send different payloads to
        different destinations via :meth:`send`.
        """
        for dst in range(1, self.n + 1):
            self.send(src, dst, tag, payload)

    def _deliver(self, message: Message) -> None:
        for hook in self._hooks:
            hook("deliver", message, self.sim.now)
        self._processes[message.dest](message)

    def __repr__(self) -> str:
        return f"Network(n={self.n}, sent={self.messages_sent})"
