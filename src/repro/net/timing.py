"""Channel timing models implementing the paper's Section 4 definitions.

The central definition: a channel from ``p_i`` to ``p_j`` is *eventually
timely* if there exist a finite time ``tau`` and a bound ``delta`` such
that any message sent at time ``tau'`` is received by
``max(tau, tau') + delta``.  Neither ``tau`` nor ``delta`` is known to the
processes.

A *timely* channel is the ``tau = 0`` special case.  An *asynchronous*
channel has no bound but — the network being reliable — every delay is
finite.

Delay draws come from per-channel seeded random streams, so the whole
network schedule is reproducible.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Callable

from ..errors import ConfigurationError

__all__ = [
    "DelayDistribution",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "ScriptedDelay",
    "ChannelTiming",
    "Timely",
    "EventuallyTimely",
    "Asynchronous",
    "Instant",
    "PerTagTiming",
    "ScriptedTiming",
    "TIMEOUT_SCHEDULE_KINDS",
    "normalize_timeout_schedule",
    "timeout_schedule",
]


# ----------------------------------------------------------------------
# Delay distributions (relative delays, in virtual time units)
# ----------------------------------------------------------------------
class DelayDistribution(ABC):
    """A distribution of finite, strictly positive message delays."""

    @abstractmethod
    def sample(self, send_time: float, rng: random.Random) -> float:
        """Draw a delay for a message sent at ``send_time``."""

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return type(self).__name__


class ConstantDelay(DelayDistribution):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ConfigurationError(f"delay must be positive, got {value!r}")
        self.value = float(value)

    def sample(self, send_time: float, rng: random.Random) -> float:
        return self.value

    def describe(self) -> str:
        return f"Constant({self.value:g})"


class UniformDelay(DelayDistribution):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={low!r}, high={high!r}"
            )
        self.low = float(low)
        self.high = float(high)

    def sample(self, send_time: float, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"Uniform({self.low:g}, {self.high:g})"


class ExponentialDelay(DelayDistribution):
    """Exponential delays: finite with probability 1, but unbounded.

    This is the canonical model for the paper's asynchronous channels —
    every delay is finite (the network is reliable) yet no bound exists.
    A small floor keeps delays strictly positive.
    """

    def __init__(self, mean: float, floor: float = 1e-6) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean!r}")
        self.mean = float(mean)
        self.floor = float(floor)

    def sample(self, send_time: float, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def describe(self) -> str:
        return f"Exponential(mean={self.mean:g})"


class ScriptedDelay(DelayDistribution):
    """Delays computed by an arbitrary function of the send time.

    Used by adversarial tests to build worst-case (but finite) schedules.
    """

    def __init__(
        self,
        fn: Callable[[float, random.Random], float],
        description: str = "Scripted",
    ) -> None:
        self.fn = fn
        self._description = description

    def sample(self, send_time: float, rng: random.Random) -> float:
        delay = float(self.fn(send_time, rng))
        if not (delay > 0 and math.isfinite(delay)):
            raise ConfigurationError(
                f"scripted delay must be finite and positive, got {delay!r}"
            )
        return delay

    def describe(self) -> str:
        return self._description


# ----------------------------------------------------------------------
# Channel timing models (absolute delivery times)
# ----------------------------------------------------------------------
class ChannelTiming(ABC):
    """Maps a send time to an absolute delivery time."""

    def _guard_fast_path(self, base: type) -> None:
        """Re-route the fast path through ``delivery_time`` overrides.

        ``base`` (:class:`Asynchronous` / :class:`EventuallyTimely`)
        duplicates its ``delivery_time`` body into ``delivery_time_for``
        to skip one Python call per message.  A subclass that overrides
        ``delivery_time`` — the documented extension point — but not
        ``delivery_time_for`` would silently keep the parent's delays;
        this guard (called from ``base.__init__``) detects that case and
        shadows the fast path with a delegating instance attribute.
        """
        cls = type(self)
        if (
            cls.delivery_time is not base.delivery_time
            and cls.delivery_time_for is base.delivery_time_for
        ):
            self.delivery_time_for = (  # type: ignore[method-assign]
                lambda message, send_time, rng:
                self.delivery_time(send_time, rng)
            )

    @abstractmethod
    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        """Absolute virtual time at which the message is delivered."""

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        """Delivery time possibly depending on the message itself.

        The paper's asynchronous model lets the (network) adversary pick
        each message's delay individually; message-aware models override
        this hook.  The default ignores the message.
        """
        return self.delivery_time(send_time, rng)

    @property
    def is_eventually_timely(self) -> bool:
        """Whether this model guarantees the Section 4 timeliness bound."""
        return False

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return type(self).__name__


class EventuallyTimely(ChannelTiming):
    """The paper's eventually timely channel.

    Before stabilization the channel behaves like ``pre`` (any finite
    distribution), but delivery never exceeds ``max(tau, send_time) + delta``
    — exactly the Section 4 definition, which also forces messages sent
    *before* ``tau`` to arrive by ``tau + delta``.
    """

    def __init__(
        self,
        tau: float,
        delta: float,
        pre: DelayDistribution | None = None,
    ) -> None:
        if tau < 0:
            raise ConfigurationError(f"tau must be >= 0, got {tau!r}")
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta!r}")
        self.tau = float(tau)
        self.delta = float(delta)
        self.pre = pre if pre is not None else ExponentialDelay(mean=4.0 * delta)
        self._guard_fast_path(EventuallyTimely)

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        natural = send_time + self.pre.sample(send_time, rng)
        bound = max(self.tau, send_time) + self.delta
        return min(natural, bound)

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        # Identical to delivery_time; overridden to skip one Python call
        # on the per-message fast path (messages are ignored here).
        # _guard_fast_path in __init__ restores base-class delegation
        # for subclasses that customize delivery_time.
        natural = send_time + self.pre.sample(send_time, rng)
        bound = max(self.tau, send_time) + self.delta
        return natural if natural < bound else bound

    @property
    def is_eventually_timely(self) -> bool:
        return True

    def describe(self) -> str:
        return f"EventuallyTimely(tau={self.tau:g}, delta={self.delta:g})"


class Timely(EventuallyTimely):
    """A channel timely from the very beginning (``tau = 0``).

    Used to build the ``<t+1>bisource``-from-the-start model of Section 5.4
    in which the round-complexity bounds are stated.
    """

    def __init__(self, delta: float, pre: DelayDistribution | None = None) -> None:
        super().__init__(tau=0.0, delta=delta, pre=pre)

    def describe(self) -> str:
        return f"Timely(delta={self.delta:g})"


class Asynchronous(ChannelTiming):
    """A reliable channel with finite but unbounded delays."""

    def __init__(self, dist: DelayDistribution | None = None) -> None:
        self.dist = dist if dist is not None else ExponentialDelay(mean=5.0)
        self._guard_fast_path(Asynchronous)

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        return send_time + self.dist.sample(send_time, rng)

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        # Fast-path override: one call fewer per message (see base class).
        return send_time + self.dist.sample(send_time, rng)

    def describe(self) -> str:
        return f"Asynchronous({self.dist.describe()})"


class Instant(ChannelTiming):
    """Zero-delay delivery: every message arrives at its send instant.

    The exhaustive checker's timing model (:mod:`repro.checking`): with
    all deliveries landing on the scheduler's same-instant ready tier,
    the *only* nondeterminism left in a run is the order in which ready
    deliveries are popped — exactly the choice points the checker
    enumerates.  Never used by the sampling stack, whose distributions
    must keep delays strictly positive.
    """

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        return send_time

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        # Fast-path override: one call fewer per message (see base class).
        return send_time

    @property
    def is_eventually_timely(self) -> bool:
        # A zero-delay channel is timely for any delta > 0.
        return True

    def describe(self) -> str:
        return "Instant"


class PerTagTiming(ChannelTiming):
    """An asynchronous channel whose delays depend on the message tag.

    Legal adversarial behaviour: an asynchronous channel may delay *each
    message* by any finite amount, so the worst-case schedules used in
    the separation experiments slow down specific protocol messages
    (e.g. ``EA_COORD``) while the rest of the traffic flows normally.
    Tags without an override use ``base``.
    """

    def __init__(self, base: ChannelTiming, overrides: dict) -> None:
        self.base = base
        self.overrides = dict(overrides)

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        return self.base.delivery_time(send_time, rng)

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        tag = getattr(message, "tag", None)
        model = self.overrides.get(tag, self.base)
        return model.delivery_time(send_time, rng)

    def describe(self) -> str:
        slowed = ", ".join(sorted(self.overrides))
        return f"PerTag(base={self.base.describe()}, overrides=[{slowed}])"


# ----------------------------------------------------------------------
# Round-timeout schedules (EA round timers, Figure 3 / footnote 3)
# ----------------------------------------------------------------------
#: Named timeout-schedule kinds accepted by :func:`timeout_schedule`.
TIMEOUT_SCHEDULE_KINDS = ("linear", "constant", "exponential")


def normalize_timeout_schedule(name: str) -> str:
    """Validate and canonicalise a timeout-schedule token.

    Grammar: ``linear[:SLOPE]`` / ``constant:VALUE`` /
    ``exponential:BASE[:SCALE]``.  The canonical form drops redundant
    parameters (``linear:1`` -> ``linear``) and ``%g``-formats the rest,
    so equal schedules always serialize — and therefore hash and cache —
    identically.
    """
    kind, _, rest = str(name).partition(":")
    parts = [p for p in rest.split(":") if p] if rest else []
    try:
        params = [float(p) for p in parts]
    except ValueError:
        raise ConfigurationError(
            f"bad timeout schedule parameter in {name!r}"
        ) from None
    if not all(math.isfinite(p) for p in params):
        # NaN slips through every `<= 0` comparison below and would
        # poison the event heap with incomparable times; inf never makes
        # a usable timer either.  Reject both at parse time.
        raise ConfigurationError(
            f"timeout schedule parameters must be finite: {name!r}"
        )
    # Round through the %g codec *before* validating, so the canonical
    # token always re-validates to itself and the executed schedule is
    # exactly the one that was serialized and hashed (a base of
    # 1.0000001 is rejected here as 1, not accepted and then refused at
    # apply time).
    params = [float(f"{p:g}") for p in params]
    if kind == "linear":
        if len(params) > 1:
            raise ConfigurationError(f"linear takes at most one slope: {name!r}")
        slope = params[0] if params else 1.0
        if slope <= 0:
            raise ConfigurationError(f"slope must be positive, got {slope!r}")
        return "linear" if slope == 1.0 else f"linear:{slope:g}"
    if kind == "constant":
        if len(params) != 1:
            raise ConfigurationError(f"constant needs exactly one value: {name!r}")
        if params[0] <= 0:
            raise ConfigurationError(f"timeout must be positive, got {params[0]!r}")
        return f"constant:{params[0]:g}"
    if kind == "exponential":
        if not 1 <= len(params) <= 2:
            raise ConfigurationError(
                f"exponential needs BASE and optional SCALE: {name!r}"
            )
        base = params[0]
        scale = params[1] if len(params) == 2 else 1.0
        if base <= 1:
            raise ConfigurationError(
                f"exponential base must exceed 1, got {base!r}"
            )
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale!r}")
        if scale == 1.0:
            return f"exponential:{base:g}"
        return f"exponential:{base:g}:{scale:g}"
    raise ConfigurationError(
        f"unknown timeout schedule {kind!r} "
        f"(known: {', '.join(TIMEOUT_SCHEDULE_KINDS)})"
    )


def timeout_schedule(name: str) -> Callable[[int], float]:
    """Build the round-timeout function for a canonical schedule token.

    The paper only requires an increasing schedule that eventually
    exceeds ``2 * delta`` (footnote 3); ``linear`` (the default
    ``timeout(r) = slope * r``) and ``exponential``
    (``scale * base**(r-1)``) both qualify.  ``constant`` deliberately
    does *not* — it exists so sweeps can measure what happens when the
    liveness condition is violated (runs stay safe but may never
    converge).
    """
    canonical = normalize_timeout_schedule(name)
    kind, _, rest = canonical.partition(":")
    params = [float(p) for p in rest.split(":") if p] if rest else []
    if kind == "linear":
        slope = params[0] if params else 1.0
        if slope == 1.0:
            return _linear_timeout
        return lambda r: slope * r
    if kind == "constant":
        value = params[0]
        return lambda r: value
    base = params[0]
    scale = params[1] if len(params) == 2 else 1.0
    return lambda r: scale * base ** (r - 1)


def _linear_timeout(r: int) -> float:
    """The paper's default schedule: round ``r`` waits ``r`` time units."""
    return float(r)


class ScriptedTiming(ChannelTiming):
    """Delivery times computed by an arbitrary (finite) schedule function."""

    def __init__(
        self,
        fn: Callable[[float, random.Random], float],
        description: str = "ScriptedTiming",
    ) -> None:
        self.fn = fn
        self._description = description

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        time = float(self.fn(send_time, rng))
        if not (time >= send_time and math.isfinite(time)):
            raise ConfigurationError(
                f"scripted delivery must be finite and >= send time, got {time!r}"
            )
        return time

    def describe(self) -> str:
        return self._description
