"""Channel timing models implementing the paper's Section 4 definitions.

The central definition: a channel from ``p_i`` to ``p_j`` is *eventually
timely* if there exist a finite time ``tau`` and a bound ``delta`` such
that any message sent at time ``tau'`` is received by
``max(tau, tau') + delta``.  Neither ``tau`` nor ``delta`` is known to the
processes.

A *timely* channel is the ``tau = 0`` special case.  An *asynchronous*
channel has no bound but — the network being reliable — every delay is
finite.

Delay draws come from per-channel seeded random streams, so the whole
network schedule is reproducible.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Callable

from ..errors import ConfigurationError

__all__ = [
    "DelayDistribution",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "ScriptedDelay",
    "ChannelTiming",
    "Timely",
    "EventuallyTimely",
    "Asynchronous",
    "PerTagTiming",
    "ScriptedTiming",
]


# ----------------------------------------------------------------------
# Delay distributions (relative delays, in virtual time units)
# ----------------------------------------------------------------------
class DelayDistribution(ABC):
    """A distribution of finite, strictly positive message delays."""

    @abstractmethod
    def sample(self, send_time: float, rng: random.Random) -> float:
        """Draw a delay for a message sent at ``send_time``."""

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return type(self).__name__


class ConstantDelay(DelayDistribution):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ConfigurationError(f"delay must be positive, got {value!r}")
        self.value = float(value)

    def sample(self, send_time: float, rng: random.Random) -> float:
        return self.value

    def describe(self) -> str:
        return f"Constant({self.value:g})"


class UniformDelay(DelayDistribution):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={low!r}, high={high!r}"
            )
        self.low = float(low)
        self.high = float(high)

    def sample(self, send_time: float, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"Uniform({self.low:g}, {self.high:g})"


class ExponentialDelay(DelayDistribution):
    """Exponential delays: finite with probability 1, but unbounded.

    This is the canonical model for the paper's asynchronous channels —
    every delay is finite (the network is reliable) yet no bound exists.
    A small floor keeps delays strictly positive.
    """

    def __init__(self, mean: float, floor: float = 1e-6) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean!r}")
        self.mean = float(mean)
        self.floor = float(floor)

    def sample(self, send_time: float, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def describe(self) -> str:
        return f"Exponential(mean={self.mean:g})"


class ScriptedDelay(DelayDistribution):
    """Delays computed by an arbitrary function of the send time.

    Used by adversarial tests to build worst-case (but finite) schedules.
    """

    def __init__(
        self,
        fn: Callable[[float, random.Random], float],
        description: str = "Scripted",
    ) -> None:
        self.fn = fn
        self._description = description

    def sample(self, send_time: float, rng: random.Random) -> float:
        delay = float(self.fn(send_time, rng))
        if not (delay > 0 and math.isfinite(delay)):
            raise ConfigurationError(
                f"scripted delay must be finite and positive, got {delay!r}"
            )
        return delay

    def describe(self) -> str:
        return self._description


# ----------------------------------------------------------------------
# Channel timing models (absolute delivery times)
# ----------------------------------------------------------------------
class ChannelTiming(ABC):
    """Maps a send time to an absolute delivery time."""

    @abstractmethod
    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        """Absolute virtual time at which the message is delivered."""

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        """Delivery time possibly depending on the message itself.

        The paper's asynchronous model lets the (network) adversary pick
        each message's delay individually; message-aware models override
        this hook.  The default ignores the message.
        """
        return self.delivery_time(send_time, rng)

    @property
    def is_eventually_timely(self) -> bool:
        """Whether this model guarantees the Section 4 timeliness bound."""
        return False

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return type(self).__name__


class EventuallyTimely(ChannelTiming):
    """The paper's eventually timely channel.

    Before stabilization the channel behaves like ``pre`` (any finite
    distribution), but delivery never exceeds ``max(tau, send_time) + delta``
    — exactly the Section 4 definition, which also forces messages sent
    *before* ``tau`` to arrive by ``tau + delta``.
    """

    def __init__(
        self,
        tau: float,
        delta: float,
        pre: DelayDistribution | None = None,
    ) -> None:
        if tau < 0:
            raise ConfigurationError(f"tau must be >= 0, got {tau!r}")
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta!r}")
        self.tau = float(tau)
        self.delta = float(delta)
        self.pre = pre if pre is not None else ExponentialDelay(mean=4.0 * delta)

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        natural = send_time + self.pre.sample(send_time, rng)
        bound = max(self.tau, send_time) + self.delta
        return min(natural, bound)

    @property
    def is_eventually_timely(self) -> bool:
        return True

    def describe(self) -> str:
        return f"EventuallyTimely(tau={self.tau:g}, delta={self.delta:g})"


class Timely(EventuallyTimely):
    """A channel timely from the very beginning (``tau = 0``).

    Used to build the ``<t+1>bisource``-from-the-start model of Section 5.4
    in which the round-complexity bounds are stated.
    """

    def __init__(self, delta: float, pre: DelayDistribution | None = None) -> None:
        super().__init__(tau=0.0, delta=delta, pre=pre)

    def describe(self) -> str:
        return f"Timely(delta={self.delta:g})"


class Asynchronous(ChannelTiming):
    """A reliable channel with finite but unbounded delays."""

    def __init__(self, dist: DelayDistribution | None = None) -> None:
        self.dist = dist if dist is not None else ExponentialDelay(mean=5.0)

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        return send_time + self.dist.sample(send_time, rng)

    def describe(self) -> str:
        return f"Asynchronous({self.dist.describe()})"


class PerTagTiming(ChannelTiming):
    """An asynchronous channel whose delays depend on the message tag.

    Legal adversarial behaviour: an asynchronous channel may delay *each
    message* by any finite amount, so the worst-case schedules used in
    the separation experiments slow down specific protocol messages
    (e.g. ``EA_COORD``) while the rest of the traffic flows normally.
    Tags without an override use ``base``.
    """

    def __init__(self, base: ChannelTiming, overrides: dict) -> None:
        self.base = base
        self.overrides = dict(overrides)

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        return self.base.delivery_time(send_time, rng)

    def delivery_time_for(
        self, message: object, send_time: float, rng: random.Random
    ) -> float:
        tag = getattr(message, "tag", None)
        model = self.overrides.get(tag, self.base)
        return model.delivery_time(send_time, rng)

    def describe(self) -> str:
        slowed = ", ".join(sorted(self.overrides))
        return f"PerTag(base={self.base.describe()}, overrides=[{slowed}])"


class ScriptedTiming(ChannelTiming):
    """Delivery times computed by an arbitrary (finite) schedule function."""

    def __init__(
        self,
        fn: Callable[[float, random.Random], float],
        description: str = "ScriptedTiming",
    ) -> None:
        self.fn = fn
        self._description = description

    def delivery_time(self, send_time: float, rng: random.Random) -> float:
        time = float(self.fn(send_time, rng))
        if not (time >= send_time and math.isfinite(time)):
            raise ConfigurationError(
                f"scripted delivery must be finite and >= send time, got {time!r}"
            )
        return time

    def describe(self) -> str:
        return self._description
