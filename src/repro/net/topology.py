"""Topology builders: where the synchrony lives in the channel matrix.

The paper's synchrony assumption is purely structural: *one* correct
process must be an eventual ``<t+1>bisource`` (timely input channels from
``t`` correct processes and timely output channels to ``t`` correct
processes, plus itself; the input and output sets may differ).  These
helpers build channel-timing matrices realising exactly that assumption —
including the *minimal* case where every other channel in the system is
asynchronous — as well as the fully timely and fully asynchronous
extremes used by tests and baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConfigurationError
from .timing import (
    Asynchronous,
    ChannelTiming,
    EventuallyTimely,
    ExponentialDelay,
    Instant,
    Timely,
)

__all__ = [
    "Topology",
    "fully_timely",
    "fully_asynchronous",
    "instant_topology",
    "single_bisource",
    "bisource_sets",
    "is_bisource",
]


@dataclass
class Topology:
    """A channel-timing matrix plus metadata about where synchrony lives.

    Attributes:
        n: Number of processes (ids ``1..n``).
        overrides: Specific ``(src, dst) -> ChannelTiming`` assignments.
        default: Timing model for every pair not in ``overrides``.
        description: Human-readable summary used in reports.
        bisource: Process id of the designated bisource, if any.
        x_minus: Processes with an eventually timely channel *into* the
            bisource (bisource included), if a bisource was designated.
        x_plus: Processes the bisource has an eventually timely channel
            *to* (bisource included), if a bisource was designated.
    """

    n: int
    overrides: dict[tuple[int, int], ChannelTiming] = field(default_factory=dict)
    default: ChannelTiming = field(default_factory=Asynchronous)
    description: str = ""
    bisource: int | None = None
    x_minus: frozenset[int] | None = None
    x_plus: frozenset[int] | None = None

    def timing_for(self, src: int, dst: int) -> ChannelTiming:
        """Timing model for the ordered pair ``(src, dst)``."""
        return self.overrides.get((src, dst), self.default)


def fully_timely(n: int, delta: float = 1.0) -> Topology:
    """Every channel timely from the start — the synchronous extreme."""
    return Topology(
        n=n,
        default=Timely(delta=delta),
        description=f"fully timely (delta={delta:g})",
    )


def fully_asynchronous(n: int, mean_delay: float = 5.0) -> Topology:
    """No synchrony anywhere: consensus is unsolvable here (FLP/paper §1).

    Used to validate that the algorithms never violate *safety* even when
    the liveness assumption is absent, and as the environment for the
    randomized baseline (which needs no synchrony).
    """
    return Topology(
        n=n,
        default=Asynchronous(ExponentialDelay(mean=mean_delay)),
        description=f"fully asynchronous (mean={mean_delay:g})",
    )


def instant_topology(n: int) -> Topology:
    """Every channel delivers at its send instant — the checker's model.

    :mod:`repro.checking` replaces message *delays* (sampled from the
    topology under test) with message *orderings* (enumerated
    exhaustively), so the timing matrix degenerates to zero-delay
    everywhere and all remaining nondeterminism lives in the scheduler's
    ready-tier pop order.
    """
    return Topology(
        n=n,
        default=Instant(),
        description="instant (check mode)",
    )


def bisource_sets(
    bisource: int,
    correct: Iterable[int],
    width: int,
    disjoint: bool = True,
) -> tuple[frozenset[int], frozenset[int]]:
    """Pick the input set ``X-`` and output set ``X+`` for a bisource.

    Both sets include the bisource itself and have exactly ``width``
    members (``width = t + 1`` for a ``<t+1>bisource``).  When
    ``disjoint`` is true and enough correct processes exist, the two sets
    share only the bisource — exercising the paper's remark that the
    timely input and output channels may connect the bisource to
    *different* subsets of processes.
    """
    others = sorted(p for p in set(correct) if p != bisource)
    needed = width - 1
    if needed < 0:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if len(others) < needed:
        raise ConfigurationError(
            f"not enough correct processes for width {width}: "
            f"have {len(others)} besides the bisource"
        )
    x_minus = frozenset([bisource] + others[:needed])
    if disjoint and len(others) >= 2 * needed:
        x_plus = frozenset([bisource] + others[needed : 2 * needed])
    else:
        x_plus = frozenset([bisource] + others[-needed:] if needed else [bisource])
    return x_minus, x_plus


def single_bisource(
    n: int,
    t: int,
    bisource: int,
    correct: Iterable[int],
    tau: float = 0.0,
    delta: float = 1.0,
    k: int = 0,
    x_minus: Iterable[int] | None = None,
    x_plus: Iterable[int] | None = None,
    mean_async_delay: float = 5.0,
    disjoint: bool = True,
) -> Topology:
    """The minimal synchrony topology: one ``<t+1+k>bisource``, rest async.

    Exactly ``t + k`` eventually timely input channels (from ``x_minus``
    minus the bisource) and ``t + k`` eventually timely output channels
    (to ``x_plus`` minus the bisource) are created, with stabilization
    time ``tau`` and bound ``delta``.  Every other inter-process channel
    is asynchronous.  ``tau = 0`` gives the ``<t+1+k>bisource``-from-the-
    start model in which the paper states its round-complexity bounds.
    """
    correct_set = frozenset(correct)
    if bisource not in correct_set:
        raise ConfigurationError(
            f"the bisource must be a correct process, got {bisource}"
        )
    width = t + 1 + k
    if x_minus is None or x_plus is None:
        chosen_minus, chosen_plus = bisource_sets(
            bisource, correct_set, width, disjoint=disjoint
        )
        x_minus_set = frozenset(x_minus) if x_minus is not None else chosen_minus
        x_plus_set = frozenset(x_plus) if x_plus is not None else chosen_plus
    else:
        x_minus_set = frozenset(x_minus)
        x_plus_set = frozenset(x_plus)
    for name, members in (("x_minus", x_minus_set), ("x_plus", x_plus_set)):
        if bisource not in members:
            raise ConfigurationError(f"{name} must contain the bisource")
        if not members <= correct_set:
            raise ConfigurationError(f"{name} must contain only correct processes")
        if len(members) < width:
            raise ConfigurationError(
                f"{name} needs at least {width} members, got {len(members)}"
            )
    overrides: dict[tuple[int, int], ChannelTiming] = {}
    for p in x_minus_set:
        if p != bisource:
            overrides[(p, bisource)] = EventuallyTimely(tau=tau, delta=delta)
    for q in x_plus_set:
        if q != bisource:
            overrides[(bisource, q)] = EventuallyTimely(tau=tau, delta=delta)
    return Topology(
        n=n,
        overrides=overrides,
        default=Asynchronous(ExponentialDelay(mean=mean_async_delay)),
        description=(
            f"single <{width}>bisource at p{bisource} "
            f"(tau={tau:g}, delta={delta:g}), all other channels asynchronous"
        ),
        bisource=bisource,
        x_minus=x_minus_set,
        x_plus=x_plus_set,
    )


def is_bisource(
    topology: Topology,
    pid: int,
    correct: Iterable[int],
    width: int,
) -> bool:
    """Check whether ``pid`` is an eventual ``<width>bisource``.

    Counts eventually timely input channels from correct processes and
    eventually timely output channels to correct processes; the always-
    timely virtual self channel contributes one to each side, matching the
    paper's convention that the sets include the process itself.
    """
    correct_set = frozenset(correct)
    if pid not in correct_set:
        return False
    timely_in = 1  # the self channel
    timely_out = 1
    for other in correct_set:
        if other == pid:
            continue
        if topology.timing_for(other, pid).is_eventually_timely:
            timely_in += 1
        if topology.timing_for(pid, other).is_eventually_timely:
            timely_out += 1
    return timely_in >= width and timely_out >= width
