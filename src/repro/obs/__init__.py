"""Fleet and run telemetry: metrics, event ledger, fleet view, traces.

The observability layer over the simulation platform, built on the same
contract as the instrumentation bus it rides: **nothing costs anything
until somebody asks**.  An unobserved run constructs no registry and no
ledger, every kernel probe keeps ``emit is None``, and the sweep
backends' ``observer`` stays ``None`` — telemetry is opt-in per sweep,
never ambient.

* :mod:`repro.obs.metrics` — labelled counters / gauges / histograms,
  armed on the kernel bus per run like the profiler's step sink;
* :mod:`repro.obs.events` — the append-only JSONL event ledger every
  fleet worker shares (``repro events tail`` / ``query``);
* :mod:`repro.obs.telemetry` — the one observer object orchestration
  code calls through (duck-typed; orchestration never imports this
  package);
* :mod:`repro.obs.fleet` — the live ``repro top`` view derived from
  lease heartbeats;
* :mod:`repro.obs.chrometrace` — Trace Event Format export for
  Perfetto / ``chrome://tracing`` (``repro trace``).

The walkthrough lives in ``docs/observability.md``.
"""

from .events import (
    EVENT_CACHE_HIT,
    EVENT_CACHE_MISS,
    EVENT_CHECK_FINISHED,
    EVENT_CHECK_PROGRESS,
    EVENT_CHECK_STARTED,
    EVENT_SHARD_FOLDED,
    EVENT_SWEEP_FINISHED,
    EVENT_SWEEP_STARTED,
    EVENT_UNIT_CLAIMED,
    EVENT_UNIT_COMPLETED,
    EVENT_UNIT_RECLAIMED,
    EVENT_UNIT_RELEASED,
    EVENT_UNIT_RENEWED,
    EventLedger,
    LEDGER_NAME,
    format_event,
    read_events,
    tail_events,
)
from .fleet import FleetRow, fleet_rows, render_top
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import SweepTelemetry

__all__ = [
    "EVENT_CACHE_HIT",
    "EVENT_CACHE_MISS",
    "EVENT_CHECK_FINISHED",
    "EVENT_CHECK_PROGRESS",
    "EVENT_CHECK_STARTED",
    "EVENT_SHARD_FOLDED",
    "EVENT_SWEEP_FINISHED",
    "EVENT_SWEEP_STARTED",
    "EVENT_UNIT_CLAIMED",
    "EVENT_UNIT_COMPLETED",
    "EVENT_UNIT_RECLAIMED",
    "EVENT_UNIT_RELEASED",
    "EVENT_UNIT_RENEWED",
    "Counter",
    "EventLedger",
    "FleetRow",
    "Gauge",
    "Histogram",
    "LEDGER_NAME",
    "MetricsRegistry",
    "SweepTelemetry",
    "fleet_rows",
    "format_event",
    "read_events",
    "render_top",
    "tail_events",
]
