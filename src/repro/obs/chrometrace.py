"""Export kernel traces, profiles and fleet ledgers as Chrome traces.

The Trace Event Format (the JSON consumed by Perfetto and
``chrome://tracing``) is the lingua franca for "what happened when"
timelines.  This module converts each of the platform's three capture
shapes into it:

* :func:`trace_from_tracer` — a kernel :class:`~repro.analysis.traces.Tracer`
  capture of one run: each simulated process becomes a track, sends and
  deliveries become instants joined by flow arrows (follow one message
  across the network), RB-deliveries and decisions become markers.
  Virtual time maps to trace time at **1 virtual unit = 1 ms**;
* :func:`trace_from_profile` — a ``BENCH_profile.json`` body
  (:meth:`SweepProfiler.to_dict <repro.profiling.SweepProfiler.to_dict>`):
  aggregate phases laid end-to-end as duration slices, one track for the
  harness phases and one for the per-event sim labels;
* :func:`trace_from_ledger` — a fleet event-ledger slice
  (:mod:`repro.obs.events`): one track per worker, claim-to-completion
  spans per unit, heartbeats / cache events / shard folds as instants.
  Wall-clock time is rebased to the slice's first event.

:func:`validate_trace` is the structural checker the CI obs-smoke job
and the tests share; ``python -m repro.obs.chrometrace FILE`` runs it
from the command line.  The CLI face is ``repro trace`` — see
``docs/observability.md`` for a load-it-in-Perfetto walkthrough.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "trace_from_ledger",
    "trace_from_profile",
    "trace_from_tracer",
    "validate_trace",
    "write_trace",
]

#: Event phases this exporter emits (a subset of the format).
_PHASES = frozenset("BEXiMsf")

#: One virtual time unit rendered as this many trace microseconds.
VIRTUAL_UNIT_US = 1000.0


def _jsonable(detail: Mapping[str, Any]) -> dict[str, Any]:
    """Coerce non-primitive detail values (e.g. the ``Bot`` sentinel) to
    strings, mirroring :meth:`TraceEvent.to_json_obj
    <repro.analysis.traces.TraceEvent.to_json_obj>`."""
    return {
        key: value
        if isinstance(value, (str, int, float, bool, type(None)))
        else str(value)
        for key, value in detail.items()
    }


def _thread_name(pid: int, tid: int, name: str) -> dict[str, Any]:
    return {
        "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": name},
    }


def _process_name(pid: int, name: str) -> dict[str, Any]:
    return {
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": name},
    }


def trace_from_tracer(
    events: Iterable[Any], label: str = "repro run"
) -> dict[str, Any]:
    """Convert kernel :class:`~repro.analysis.traces.TraceEvent` records.

    Accepts a :class:`~repro.analysis.traces.Tracer` itself, its
    ``events`` list, or any iterable of objects with ``time`` / ``kind``
    / ``pid`` / ``detail``.  Message flows are linked send→deliver
    through the message ``uid``.
    """
    events = getattr(events, "events", events)
    out: list[dict[str, Any]] = [_process_name(1, label)]
    tids: set[int] = set()
    for event in events:
        ts = float(event.time) * VIRTUAL_UNIT_US
        detail = _jsonable(event.detail)
        pid = event.pid if event.pid is not None else 0
        tids.add(pid)
        base = {"pid": 1, "tid": pid, "ts": ts, "cat": event.kind}
        tag = detail.get("tag")
        uid = detail.get("uid")
        if event.kind == "send":
            name = f"send {tag}" if tag else "send"
            out.append({**base, "name": name, "ph": "i", "s": "t",
                        "args": detail})
            if uid is not None:
                out.append({**base, "name": str(tag or "message"),
                            "ph": "s", "id": int(uid)})
        elif event.kind == "deliver":
            name = f"deliver {tag}" if tag else "deliver"
            out.append({**base, "name": name, "ph": "i", "s": "t",
                        "args": detail})
            if uid is not None:
                out.append({**base, "name": str(tag or "message"),
                            "ph": "f", "bp": "e", "id": int(uid)})
        else:
            # rb_deliver, decide, protocol-chosen labels: plain markers.
            out.append({**base, "name": event.kind, "ph": "i", "s": "t",
                        "args": detail})
    for tid in sorted(tids):
        out.append(_thread_name(1, tid, f"process {tid}" if tid else "run"))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def trace_from_profile(
    profile: Mapping[str, Any], label: str = "sweep profile"
) -> dict[str, Any]:
    """Convert a ``BENCH_profile.json`` body into duration slices.

    Aggregates carry no timestamps, so slices are laid end-to-end in
    table order — the track reads as "where the time went", not "when".
    """
    out: list[dict[str, Any]] = [
        _process_name(1, label),
        _thread_name(1, 1, "harness phases"),
        _thread_name(1, 2, "sim events"),
    ]
    cursor = 0.0
    for name, stat in profile.get("phases", {}).items():
        dur = float(stat.get("seconds", 0.0)) * 1e6
        out.append({
            "name": name, "ph": "X", "pid": 1, "tid": 1,
            "ts": cursor, "dur": dur,
            "args": {"calls": stat.get("calls", 0)},
        })
        cursor += dur
    cursor = 0.0
    for name, stat in profile.get("sim", {}).get("labels", {}).items():
        dur = float(stat.get("seconds", 0.0)) * 1e6
        out.append({
            "name": name, "ph": "X", "pid": 1, "tid": 2,
            "ts": cursor, "dur": dur,
            "args": {"events": stat.get("events", 0)},
        })
        cursor += dur
    return {"traceEvents": out, "displayTimeUnit": "ms"}


#: Ledger event types rendered as span boundaries on a worker track.
_SPAN_OPEN = "unit_claimed"
_SPAN_CLOSE = frozenset({"unit_completed", "unit_released"})


def trace_from_ledger(
    events: Iterable[Mapping[str, Any]], label: str = "fleet"
) -> dict[str, Any]:
    """Convert a ledger slice (:func:`repro.obs.events.read_events`).

    One Chrome-trace *process* per worker; the run-level writer (empty
    ``worker``) gets the ``fleet`` track.  ``unit_claimed`` opens a
    span, ``unit_completed`` / ``unit_released`` close it; everything
    else is an instant.  Slices that start or stop mid-unit simply have
    unmatched boundaries — Perfetto renders them open-ended.
    """
    records = sorted(events, key=lambda r: r.get("ts", 0.0))
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    ts0 = records[0].get("ts", 0.0)
    pids: dict[str, int] = {}
    out: list[dict[str, Any]] = []
    open_units: dict[str, str] = {}

    def pid_for(worker: str) -> int:
        pid = pids.get(worker)
        if pid is None:
            pid = pids[worker] = len(pids) + 1
            out.append(_process_name(pid, worker or label))
            out.append(_thread_name(pid, 1, "units"))
        return pid

    envelope = {"v", "type", "run", "worker", "ts", "mono", "metrics"}
    for record in records:
        kind = str(record.get("type", "?"))
        worker = str(record.get("worker", "") or "")
        ts = (float(record.get("ts", 0.0)) - ts0) * 1e6
        args = {
            key: value for key, value in record.items()
            if key not in envelope
        }
        base = {"pid": pid_for(worker), "tid": 1, "ts": ts, "cat": kind}
        if kind == _SPAN_OPEN:
            unit = str(record.get("unit", "unit"))
            # A claim while a span is open (crashed worker, ledger slice)
            # closes the stale span first so B/E stay balanced per track.
            stale = open_units.pop(worker, None)
            if stale is not None:
                out.append({**base, "name": stale, "ph": "E"})
            out.append({**base, "name": unit, "ph": "B", "args": args})
            open_units[worker] = unit
        elif kind in _SPAN_CLOSE:
            unit = str(record.get("unit", open_units.get(worker, "unit")))
            out.append({**base, "name": unit, "ph": "E", "args": args})
            open_units.pop(worker, None)
        else:
            out.append({**base, "name": kind, "ph": "i", "s": "t",
                        "args": args})
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_trace(
    path: str | os.PathLike[str], trace: Mapping[str, Any]
) -> Path:
    """Validate and atomically persist one trace object."""
    from ..store.atomic import atomic_write_text

    validate_trace(trace)
    return atomic_write_text(
        path, json.dumps(trace, sort_keys=True, indent=1) + "\n"
    )


def validate_trace(trace: Any) -> int:
    """Structurally check Trace Event Format JSON; returns the event count.

    Accepts the object form (``{"traceEvents": [...]}``) or the bare
    array form.  Raises :class:`ValueError` naming the first offence:
    unknown phase, non-numeric ``ts``, missing ``name``, or an ``E``
    that closes nothing it opened on that track is *allowed* (partial
    slices are legal) — balance is not required, shape is.
    """
    if isinstance(trace, Mapping):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object has no 'traceEvents' array")
    elif isinstance(trace, list):
        events = trace
    else:
        raise ValueError(
            f"trace must be an object or array, got {type(trace).__name__}"
        )
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            raise ValueError(f"{where} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _PHASES:
            raise ValueError(f"{where} has unsupported phase {ph!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where} has bad ts {ts!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where} has no name")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} (ph=X) has bad dur {dur!r}")
        if ph in "sf" and "id" not in event:
            raise ValueError(f"{where} (flow event) has no id")
    return len(events)


def _main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.chrometrace FILE...`` — validate traces."""
    import sys

    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.chrometrace TRACE.json ...")
        return 2
    status = 0
    for path in paths:
        try:
            count = validate_trace(json.loads(Path(path).read_text()))
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID ({exc})")
            status = 1
            continue
        print(f"{path}: valid Trace Event Format ({count} event(s))")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
