"""Structured event ledger: an append-only JSONL record of a fleet run.

``repro dispatch status`` reads the *current* manifest — a snapshot that
says nothing about how the fleet got there.  The ledger is the missing
history: every worker appends typed events (unit claimed, lease renewed,
unit completed, cache hit, shard folded, ...) to one shared JSONL file,
each stamped with the run id, the worker id, wall-clock *and* monotonic
time.  Reading it back answers the questions a snapshot cannot: which
worker straggled, when a lease was reclaimed, how claim latency evolved
over the sweep.

**Write discipline.**  Appends cannot go through the store's
write-then-rename (:mod:`repro.store.atomic`) — a rename replaces the
whole file, and N workers hold the file open concurrently.  The ledger
uses the append-side analogue of that discipline: every
:meth:`EventLedger.emit` encodes the record to one newline-terminated
line and hands it to the kernel as a **single ``write(2)`` on an
``O_APPEND`` descriptor**.  POSIX serialises ``O_APPEND`` writes, so
concurrent workers interleave at line granularity — a reader sees whole
records in arrival order, never spliced halves.  The only torn state
possible is an unterminated final line from a mid-write crash, and
:func:`read_events` treats exactly that (and nothing else) as
in-progress, the same tolerance the shard collector extends to
truncated shards.

**Read side.**  :func:`read_events` streams records with optional
filters (``since`` / ``types`` / ``worker`` / ``run``);
:func:`tail_events` returns the last *n*.  The CLI faces are
``repro events tail`` and ``repro events query``; the Chrome-trace
exporter (:mod:`repro.obs.chrometrace`) turns a ledger slice into a
Perfetto-loadable timeline.  Schema and walkthrough:
``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "EVENT_CACHE_HIT",
    "EVENT_CACHE_MISS",
    "EVENT_CHECK_FINISHED",
    "EVENT_CHECK_PROGRESS",
    "EVENT_CHECK_STARTED",
    "EVENT_POOL_STARTED",
    "EVENT_SHARD_FOLDED",
    "EVENT_SWEEP_FINISHED",
    "EVENT_SWEEP_STARTED",
    "EVENT_UNIT_CLAIMED",
    "EVENT_UNIT_COMPLETED",
    "EVENT_UNIT_RECLAIMED",
    "EVENT_UNIT_RELEASED",
    "EVENT_UNIT_RENEWED",
    "EventLedger",
    "LEDGER_NAME",
    "LEDGER_VERSION",
    "format_event",
    "read_events",
    "tail_events",
]

#: Default ledger file name inside a dispatch directory.  A dotless name
#: would collide with the collector's ``*.jsonl`` shard scan if it lived
#: in ``shards/``; it lives next to ``manifest.json`` instead.
LEDGER_NAME = "events.jsonl"

#: Bump when the record envelope changes shape (readers skip newer
#: records loudly rather than mis-parsing them).
LEDGER_VERSION = 1

#: Typed events the platform emits.  The vocabulary is open — any string
#: is a legal ``type`` — but these names are what the CLI, the fleet
#: view and the trace exporter understand.
EVENT_SWEEP_STARTED = "sweep_started"
EVENT_POOL_STARTED = "pool_started"
EVENT_SWEEP_FINISHED = "sweep_finished"
EVENT_UNIT_CLAIMED = "unit_claimed"
EVENT_UNIT_RENEWED = "unit_renewed"
EVENT_UNIT_COMPLETED = "unit_completed"
EVENT_UNIT_RELEASED = "unit_released"
EVENT_UNIT_RECLAIMED = "unit_reclaimed"
EVENT_CACHE_HIT = "cache_hit"
EVENT_CACHE_MISS = "cache_miss"
EVENT_SHARD_FOLDED = "shard_folded"
EVENT_CHECK_STARTED = "check_started"
EVENT_CHECK_PROGRESS = "check_progress"
EVENT_CHECK_FINISHED = "check_finished"


class EventLedger:
    """One writer's handle on an append-only event file.

    Args:
        path: The JSONL file (parent directories are created).
        run_id: Stamped on every record; ties a fleet's workers to one
            dispatch plan (:attr:`DispatchPlan.run_id
            <repro.orchestration.dispatch.DispatchPlan>`).
        worker: This writer's identity (empty for single-process runs).
        clock / mono: Injectable time sources (tests pin them).

    The descriptor is opened lazily on first :meth:`emit` and kept open;
    use the context-manager form (or :meth:`close`) in long-lived
    processes.  Emitting after close reopens — a ledger is never left
    half-usable.
    """

    __slots__ = ("path", "run_id", "worker", "_clock", "_mono", "_fd")

    def __init__(
        self,
        path: str | os.PathLike[str],
        run_id: str = "",
        worker: str = "",
        clock: Callable[[], float] = time.time,
        mono: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.worker = worker
        self._clock = clock
        self._mono = mono
        self._fd: int | None = None

    def emit(self, type: str, **fields: Any) -> dict[str, Any]:
        """Append one typed event; returns the record as written.

        The envelope keys (``v``/``type``/``run``/``worker``/``ts``/
        ``mono``) are reserved: a ``fields`` entry shadowing one raises,
        because a record lying about its own identity poisons every
        downstream reader.
        """
        record: dict[str, Any] = {
            "v": LEDGER_VERSION,
            "type": type,
            "run": self.run_id,
            "worker": self.worker,
            "ts": self._clock(),
            "mono": self._mono(),
        }
        for key in fields:
            if key in record:
                raise ValueError(
                    f"event field {key!r} shadows a ledger envelope key"
                )
        record.update(fields)
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ) + "\n"
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
            )
        # One write(2) per record: O_APPEND serialises concurrent
        # writers at line granularity (see the module docstring).
        os.write(self._fd, line.encode("utf-8"))
        return record

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EventLedger({str(self.path)!r}, run_id={self.run_id!r}, "
            f"worker={self.worker!r})"
        )


def read_events(
    path: str | os.PathLike[str],
    since: float | None = None,
    types: Iterable[str] | None = None,
    worker: str | None = None,
    run: str | None = None,
) -> Iterator[dict[str, Any]]:
    """Stream ledger records, oldest first, with optional filters.

    * ``since`` — only records with wall ``ts >= since``;
    * ``types`` — only the named event types;
    * ``worker`` / ``run`` — only one writer / one dispatch run.

    A missing file yields nothing (a fleet that emitted no events has an
    empty history, not an error).  An unterminated final line is the
    in-progress append of a live writer and is skipped; a *terminated*
    line that fails to parse means real corruption and raises.  Records
    from a newer :data:`LEDGER_VERSION` raise too — mis-reading a future
    schema is worse than stopping.
    """
    wanted = None if types is None else frozenset(types)
    try:
        fh = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with fh:
        pending = ""
        while True:
            chunk = fh.read(1 << 16)
            if not chunk:
                break
            pending += chunk
            *lines, pending = pending.split("\n")
            yield from _parse_lines(lines, path, since, wanted, worker, run)
        # ``pending`` now holds whatever followed the last newline: empty
        # for a cleanly terminated file, a torn half-record otherwise —
        # skipped either way.


def _parse_lines(
    lines: Iterable[str],
    path: str | os.PathLike[str],
    since: float | None,
    wanted: frozenset[str] | None,
    worker: str | None,
    run: str | None,
) -> Iterator[dict[str, Any]]:
    for line in lines:
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"corrupt ledger line in {path}: {exc}"
            ) from None
        version = int(record.get("v", 0))
        if version > LEDGER_VERSION:
            raise ValueError(
                f"{path}: ledger version {version} is newer than this "
                f"code (reads <= {LEDGER_VERSION})"
            )
        if since is not None and record.get("ts", 0.0) < since:
            continue
        if wanted is not None and record.get("type") not in wanted:
            continue
        if worker is not None and record.get("worker") != worker:
            continue
        if run is not None and record.get("run") != run:
            continue
        yield record


def tail_events(
    path: str | os.PathLike[str],
    n: int = 10,
    **filters: Any,
) -> list[dict[str, Any]]:
    """The last ``n`` records (after filters), oldest first."""
    if n <= 0:
        return []
    from collections import deque

    return list(deque(read_events(path, **filters), maxlen=n))


def format_event(record: dict[str, Any]) -> str:
    """One human-readable line: time, type, worker, then the payload.

    Bulky values (embedded metrics snapshots) are elided to a summary —
    ``--json`` is the face for the full record.
    """
    ts = record.get("ts", 0.0)
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    envelope = {"v", "type", "run", "worker", "ts", "mono"}

    def render(value: Any) -> str:
        text = str(value)
        if len(text) > 48:
            kind = type(value).__name__
            size = len(value) if hasattr(value, "__len__") else "?"
            return f"<{kind}:{size}>"
        return text

    payload = " ".join(
        f"{key}={render(record[key])}" for key in sorted(record)
        if key not in envelope
    )
    worker = record.get("worker") or "-"
    return (
        f"{clock}  {record.get('type', '?'):<16} {worker:<20} {payload}"
    ).rstrip()
