"""Live fleet view over a dispatch manifest: who is doing what, how fast.

``repro dispatch status`` tallies *units*; ``repro top`` (this module)
tallies *workers*.  Every heartbeat a claimant writes into its lease
record (:meth:`DispatchPlan.heartbeat
<repro.orchestration.dispatch.DispatchPlan.heartbeat>`) carries the
claim time, the last-pulse time and a ``done/total`` progress pair —
enough to derive, with nothing but the manifest:

* per-worker **throughput** (scenarios/s since the claim),
* a per-unit **ETA** (:func:`repro.analysis.progress.format_eta`),
* a **straggler** flag for leases whose pulse went quiet: no heartbeat
  for longer than ``stale_after`` (default: half the plan's lease) means
  the worker is presumed wedged, and a fully *expired* lease means the
  unit is reclaimable (``dispatch status --reclaim`` does exactly that).

:func:`fleet_rows` is the data face (one :class:`FleetRow` per unit
worth showing); :func:`render_top` is the textual face the CLI loops on.
Everything here is read-only — the view never takes the manifest lock,
so running ``repro top`` next to a live fleet costs the fleet nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.progress import format_eta, render_progress

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.dispatch import DispatchPlan, ShardUnit

__all__ = ["FleetRow", "fleet_rows", "render_top"]


@dataclass(frozen=True)
class FleetRow:
    """One unit's worth of fleet state, derived from its lease record."""

    unit: str
    worker: str
    #: ``leased`` / ``expired`` / ``done`` / ``pending`` / ``exhausted``.
    state: str
    done: int
    total: int
    #: Scenarios/s since the claim (0.0 when underivable).
    throughput: float
    #: Human ETA (``""`` when no rate is observable).
    eta: str
    #: Seconds since the last proof of life (``None`` when not leased).
    heartbeat_age: float | None
    #: Pulse went quiet for longer than the stale threshold.
    straggler: bool


def _row(
    unit: "ShardUnit", now: float, stale_after: float
) -> FleetRow:
    state = unit.status
    if unit.lease_expired(now):
        state = "expired"
    done = unit.progress_done or 0
    total = unit.progress_total or unit.scenarios
    if unit.status == "done":
        done = unit.records if unit.records is not None else unit.scenarios
        total = unit.scenarios
    throughput = 0.0
    eta = ""
    age = unit.heartbeat_age(now)
    if unit.status == "leased" and unit.claimed_at is not None:
        elapsed = max(0.0, now - unit.claimed_at)
        if done > 0 and elapsed > 0:
            throughput = done / elapsed
            eta = format_eta(done, total, elapsed)
    return FleetRow(
        unit=unit.name,
        worker=unit.owner or "-",
        state=state,
        done=done,
        total=total,
        throughput=throughput,
        eta=eta,
        heartbeat_age=age,
        straggler=(
            unit.status == "leased"
            and age is not None
            and age > stale_after
        ),
    )


def fleet_rows(
    plan: "DispatchPlan",
    now: float | None = None,
    stale_after: float | None = None,
) -> list[FleetRow]:
    """One row per unit that has a story to tell (leased or done units;
    pending units are summarised by the header, not listed).

    ``stale_after`` is the quiet-pulse threshold in seconds; ``None``
    uses half the plan's lease — late enough that a healthy heartbeat
    cadence (a quarter lease) never trips it, early enough to flag a
    wedged worker before its lease actually expires.
    """
    now = time.time() if now is None else now
    if stale_after is None:
        stale_after = plan.lease_seconds / 2.0
    return [
        _row(unit, now, stale_after)
        for unit in plan.units
        if unit.status in ("leased", "done")
    ]


def render_top(
    plan: "DispatchPlan",
    now: float | None = None,
    stale_after: float | None = None,
    width: int = 30,
) -> str:
    """The ``repro top`` screen: a header plus one line per active unit.

    Pure function of the manifest — callers loop ``load / render /
    sleep`` for the live view, or call once for ``--once``.
    """
    now = time.time() if now is None else now
    rows = fleet_rows(plan, now=now, stale_after=stale_after)
    done_scenarios = sum(
        unit.scenarios for unit in plan.units if unit.status == "done"
    )
    lines = [
        f"run {plan.run_id or '(unstamped)'}  {plan.describe(now)}",
        render_progress(done_scenarios, plan.total_scenarios, width=width),
    ]
    active = [row for row in rows if row.state != "done"]
    if not active:
        lines.append("no active workers")
        return "\n".join(lines)
    lines.append(
        f"{'UNIT':<18} {'WORKER':<16} {'STATE':<8} "
        f"{'PROGRESS':<12} {'RATE':>8} {'PULSE':>7}  ETA"
    )
    for row in active:
        pulse = (
            "-" if row.heartbeat_age is None
            else f"{row.heartbeat_age:.0f}s"
        )
        rate = f"{row.throughput:.1f}/s" if row.throughput > 0 else "-"
        flags = " STALE" if row.straggler else ""
        lines.append(
            f"{row.unit:<18} {row.worker:<16} {row.state:<8} "
            f"{row.done}/{row.total:<10} {rate:>8} {pulse:>7}  "
            f"{row.eta}{flags}".rstrip()
        )
    return "\n".join(lines)
