"""Labelled counters, gauges and histograms for fleet telemetry.

The instrumentation bus (:mod:`repro.instrumentation`) gives the kernel
zero-cost *event streams*; this module gives the fleet zero-cost
*aggregates over them*.  A :class:`MetricsRegistry` is a namespace of
named metrics, each a family of label-keyed series:

* :class:`Counter` — monotonically increasing totals (messages sent,
  scenarios executed, cache hits);
* :class:`Gauge` — last-written values (scenarios in flight, queue
  depth);
* :class:`Histogram` — bucketed distributions (per-scenario wall time).

The registry honours the same contract as every other observer in this
codebase: **nothing attaches unless somebody asks**.  An unobserved run
never constructs a registry, so every kernel probe keeps ``emit is
None`` and the hot path pays exactly one pointer test per call site.
When a sweep *is* observed, :meth:`MetricsRegistry.arm` attaches three
sinks to the kernel probes (``net.send``, ``net.deliver``, ``sim.step``)
— re-armed per run by :meth:`KernelContext.fresh_bus
<repro.orchestration.kernel.KernelContext.fresh_bus>`, exactly like the
profiler — and the sweep backends bump the harness-level counters
directly.

Metrics are process-local and in-memory; :meth:`MetricsRegistry.snapshot`
renders the whole registry as one JSON-friendly dict, which the event
ledger (:mod:`repro.obs.events`) embeds into ``sweep_finished`` /
``unit_completed`` events so a fleet's numbers survive the processes
that produced them.  See ``docs/observability.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..instrumentation import InstrumentationBus

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds (seconds-flavoured: a scenario
#: takes milliseconds, a shard unit minutes).  ``inf`` is implicit.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: A label set, canonicalised to a sorted item tuple so ``{"a":1,"b":2}``
#: and ``{"b":2,"a":1}`` key the same series.
_LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared shape of one metric family: name, help text, series map."""

    kind = "untyped"

    __slots__ = ("name", "help")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def _series_dicts(self) -> list[dict[str, Any]]:  # pragma: no cover
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot of every series of this family."""
        return {
            "type": self.kind,
            "help": self.help,
            "series": self._series_dicts(),
        }


class Counter(_Metric):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    __slots__ = ("_series",)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current total for one label set (0.0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def _series_dicts(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Metric):
    """A last-written value, per label set."""

    kind = "gauge"

    __slots__ = ("_series",)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def _series_dicts(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Metric):
    """A bucketed distribution, per label set.

    Buckets are cumulative upper bounds (Prometheus-style), with an
    implicit ``+Inf`` bucket; ``sum`` and ``count`` ride along so means
    survive snapshotting.
    """

    kind = "histogram"

    __slots__ = ("buckets", "_series")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket")
        self.buckets = bounds
        # key -> [bucket counts..., +Inf count, sum, count]
        self._series: dict[_LabelKey, list[float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = [0.0] * (len(self.buckets) + 3)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state[i] += 1
                break
        else:
            state[len(self.buckets)] += 1
        state[-2] += value
        state[-1] += 1

    def count(self, **labels: Any) -> int:
        state = self._series.get(_label_key(labels))
        return int(state[-1]) if state is not None else 0

    def sum(self, **labels: Any) -> float:
        state = self._series.get(_label_key(labels))
        return state[-2] if state is not None else 0.0

    def _series_dicts(self) -> list[dict[str, Any]]:
        out = []
        for key, state in sorted(self._series.items()):
            cumulative, running = [], 0.0
            for i in range(len(self.buckets) + 1):
                running += state[i]
                cumulative.append(running)
            out.append({
                "labels": dict(key),
                "buckets": [
                    {"le": bound, "count": cumulative[i]}
                    for i, bound in enumerate(self.buckets)
                ] + [{"le": "+Inf", "count": cumulative[-1]}],
                "sum": state[-2],
                "count": state[-1],
            })
        return out


class MetricsRegistry:
    """A namespace of metrics plus the kernel-probe sinks that feed it.

    Get-or-create accessors (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram`) make registration order irrelevant; asking for an
    existing name with a different type raises, because two writers
    silently sharing a name would corrupt both series.
    """

    __slots__ = ("_metrics", "armed_runs", "_kernel_sinks")

    #: Kernel metric names fed by :meth:`arm`.
    KERNEL_SENT = "kernel.messages_sent"
    KERNEL_DELIVERED = "kernel.messages_delivered"
    KERNEL_STEPS = "kernel.sim_steps"
    KERNEL_RUNS = "kernel.runs"

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        #: Runs the kernel sinks were armed for (introspection).
        self.armed_runs = 0
        #: Precompiled kernel sinks, built lazily on first :meth:`arm`.
        self._kernel_sinks: dict[str, Any] | None = None

    def _get(self, name: str, cls: type, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, **kwargs)
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- kernel sinks ----------------------------------------------------

    def arm(self, bus: "InstrumentationBus") -> None:
        """Attach the kernel counting sinks on ``bus`` for one run.

        Called by :meth:`KernelContext.fresh_bus
        <repro.orchestration.kernel.KernelContext.fresh_bus>` after the
        per-run ``bus.clear()`` — the same re-arm discipline as the
        profiler's step sink, so metrics survive the per-run observer
        strip while unobserved runs attach nothing at all.
        """
        sinks = self._kernel_sinks
        if sinks is None:
            sinks = self._kernel_sinks = self._compile_kernel_sinks()
        bus.attach_many(sinks)
        self.counter(self.KERNEL_RUNS).inc()
        self.armed_runs += 1

    def _compile_kernel_sinks(self) -> dict[str, Any]:
        """Build the three kernel sinks as closures over the series dicts.

        These run once per message / sim step of every *observed* run, so
        the generic ``counter(name).inc(tag=...)`` path (metric lookup,
        kwargs packing, ``sorted()`` label canonicalisation) is hoisted
        out: each closure binds its family's ``_series`` dict directly
        and writes the canonical label key inline.  Snapshot output is
        identical — the same series dicts are mutated either way.
        """
        sent = self.counter(self.KERNEL_SENT)._series
        delivered = self.counter(self.KERNEL_DELIVERED)._series
        steps = self.counter(self.KERNEL_STEPS)._series

        def on_send(message: Any, time: float) -> None:
            key = (("tag", message.tag),)
            sent[key] = sent.get(key, 0.0) + 1.0

        def on_deliver(message: Any, time: float) -> None:
            key = (("tag", message.tag),)
            delivered[key] = delivered.get(key, 0.0) + 1.0

        def on_step(handle: Any) -> None:
            steps[()] = steps.get((), 0.0) + 1.0

        from ..instrumentation import NET_DELIVER, NET_SEND, SIM_STEP

        return {NET_SEND: on_send, NET_DELIVER: on_deliver, SIM_STEP: on_step}

    # -- snapshot --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as one JSON-friendly dict, sorted by name."""
        return {
            name: self._metrics[name].to_dict()
            for name in sorted(self._metrics)
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(metrics={len(self._metrics)}, "
            f"armed_runs={self.armed_runs})"
        )
