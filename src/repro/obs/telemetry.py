"""The observer object that threads fleet telemetry through a sweep.

The sweep backends (:mod:`repro.orchestration.parallel`) and the
dispatch worker loop (:func:`repro.orchestration.dispatch.run_claims`)
know nothing about ledgers or metric registries — they accept one
optional *observer* and call a handful of duck-typed hooks on it.
:class:`SweepTelemetry` is the concrete observer: it fans each hook out
to the event ledger (:mod:`repro.obs.events`), the metrics registry
(:mod:`repro.obs.metrics`) and an optional per-scenario callback (how
dispatch heartbeats count progress), each of which is independently
optional.

The dependency points *into* this package only: orchestration code never
imports :mod:`repro.obs`, so an unobserved sweep — ``observer is None``
everywhere — pays one pointer test per hook site and constructs nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .events import (
    EVENT_CACHE_HIT,
    EVENT_CACHE_MISS,
    EVENT_POOL_STARTED,
    EVENT_SWEEP_FINISHED,
    EVENT_SWEEP_STARTED,
    EVENT_UNIT_CLAIMED,
    EVENT_UNIT_COMPLETED,
    EVENT_UNIT_RELEASED,
    EVENT_UNIT_RENEWED,
    EventLedger,
)
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.dispatch import ShardUnit
    from ..orchestration.matrix import ScenarioOutcome
    from ..orchestration.parallel import SweepResult

__all__ = ["SweepTelemetry"]


class SweepTelemetry:
    """Ledger + metrics + progress callback behind one observer face.

    Args:
        ledger: Event sink; ``None`` records no history.
        metrics: Registry; ``None`` counts nothing.  When present, the
            sweep backends install it on the kernel context so the
            ``net.send`` / ``net.deliver`` / ``sim.step`` sinks re-arm
            per run (see :meth:`MetricsRegistry.arm
            <repro.obs.metrics.MetricsRegistry.arm>`).
        on_scenario: Called with the running finished-scenario count
            after every outcome (cache hits included) — the dispatch
            heartbeat rides this.

    Sweep-level metric names: ``sweep.scenarios`` (labelled
    ``source=cache|executed``) and ``sweep.units`` (labelled by final
    state).
    """

    __slots__ = ("ledger", "metrics", "on_scenario", "scenarios", "cache_hits")

    def __init__(
        self,
        ledger: EventLedger | None = None,
        metrics: MetricsRegistry | None = None,
        on_scenario: Callable[[int], None] | None = None,
    ) -> None:
        self.ledger = ledger
        self.metrics = metrics
        self.on_scenario = on_scenario
        #: Outcomes seen so far (cache hits + executed).
        self.scenarios = 0
        #: Outcomes served from the result store.
        self.cache_hits = 0

    # -- per-scenario hooks (called by the sweep backends) ---------------

    def cache_hit(self, outcome: "ScenarioOutcome") -> None:
        """One scenario served from the result store."""
        self.scenarios += 1
        self.cache_hits += 1
        if self.metrics is not None:
            self.metrics.counter("sweep.scenarios").inc(source="cache")
        if self.ledger is not None:
            self.ledger.emit(
                EVENT_CACHE_HIT,
                cell=outcome.spec.cell_id,
                seed=outcome.spec.seed_index,
            )
        if self.on_scenario is not None:
            self.on_scenario(self.scenarios)

    def executed(self, outcome: "ScenarioOutcome") -> None:
        """One scenario actually run (a store miss, or no store at all)."""
        self.scenarios += 1
        if self.metrics is not None:
            self.metrics.counter("sweep.scenarios").inc(source="executed")
        if self.ledger is not None:
            self.ledger.emit(
                EVENT_CACHE_MISS,
                cell=outcome.spec.cell_id,
                seed=outcome.spec.seed_index,
                decided=outcome.decided,
            )
        if self.on_scenario is not None:
            self.on_scenario(self.scenarios)

    def pool_started(
        self, workers: int, startup_seconds: float, reused: bool
    ) -> None:
        """The pooled backend acquired its worker pool.

        ``reused`` distinguishes a warm shared pool (startup already
        amortised by an earlier sweep) from a cold spawn whose cost this
        sweep paid; the ``sweep.pool`` counter is labelled accordingly,
        so a fleet run shows exactly one ``state=spawned`` increment per
        worker generation.
        """
        if self.metrics is not None:
            self.metrics.counter("sweep.pool").inc(
                state="reused" if reused else "spawned"
            )
        if self.ledger is not None:
            self.ledger.emit(
                EVENT_POOL_STARTED,
                workers=workers,
                startup_seconds=round(startup_seconds, 6),
                reused=reused,
            )

    # -- sweep lifecycle (called by the CLI / worker loop) ---------------

    def sweep_started(self, total: int, **fields: Any) -> None:
        if self.ledger is not None:
            self.ledger.emit(EVENT_SWEEP_STARTED, total=total, **fields)

    def sweep_finished(self, result: "SweepResult", **fields: Any) -> None:
        if self.ledger is not None:
            payload: dict[str, Any] = dict(
                scenarios=len(result.outcomes),
                cache_hits=result.cache_hits,
                elapsed=round(result.elapsed, 6),
                decided=result.report.decided_runs,
                safe=result.report.all_safe,
                **fields,
            )
            if self.metrics is not None:
                payload["metrics"] = self.metrics.snapshot()
            self.ledger.emit(EVENT_SWEEP_FINISHED, **payload)

    # -- dispatch-unit lifecycle (called by run_claims) ------------------

    def unit_claimed(self, unit: "ShardUnit") -> None:
        if self.ledger is not None:
            self.ledger.emit(
                EVENT_UNIT_CLAIMED, unit=unit.name,
                scenarios=unit.scenarios, attempt=unit.attempts,
            )

    def unit_renewed(self, unit: "ShardUnit", done: int, renewed: bool) -> None:
        if self.metrics is not None:
            self.metrics.counter("dispatch.heartbeats").inc()
        if self.ledger is not None:
            self.ledger.emit(
                EVENT_UNIT_RENEWED, unit=unit.name, done=done,
                total=unit.scenarios, renewed=renewed,
            )

    def unit_completed(self, unit: "ShardUnit", records: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("sweep.units").inc(state="done")
        if self.ledger is not None:
            payload: dict[str, Any] = dict(unit=unit.name, records=records)
            if self.metrics is not None:
                payload["metrics"] = self.metrics.snapshot()
            self.ledger.emit(EVENT_UNIT_COMPLETED, **payload)

    def unit_released(self, unit: "ShardUnit", error: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("sweep.units").inc(state="released")
        if self.ledger is not None:
            self.ledger.emit(
                EVENT_UNIT_RELEASED, unit=unit.name, error=error,
            )
