"""Experiment orchestration: configs, the runner, matrices, sweep engines."""

from .config import RunConfig
from .matrix import (
    ScenarioMatrix,
    ScenarioOutcome,
    ScenarioSpec,
    adversary_from_name,
    build_config,
    outcome_from_record,
    run_scenario,
    topology_from_name,
)
from .parallel import (
    SweepResult,
    default_workers,
    sweep_async,
    sweep_parallel,
    sweep_serial,
)
from .runner import (
    ConsensusRunResult,
    RandomizedRunResult,
    default_topology,
    run_consensus,
    run_randomized,
)
from .sweeps import format_table, standard_proposals, sweep_seeds

__all__ = [
    "RunConfig",
    "ScenarioMatrix",
    "ScenarioOutcome",
    "ScenarioSpec",
    "adversary_from_name",
    "build_config",
    "outcome_from_record",
    "run_scenario",
    "topology_from_name",
    "SweepResult",
    "default_workers",
    "sweep_async",
    "sweep_parallel",
    "sweep_serial",
    "ConsensusRunResult",
    "RandomizedRunResult",
    "default_topology",
    "run_consensus",
    "run_randomized",
    "format_table",
    "standard_proposals",
    "sweep_seeds",
]
