"""Experiment orchestration: configs, the runner, matrices, sweep engines.

The sweepable vocabulary — which knobs a :class:`ScenarioMatrix` can
grid over — lives in the :mod:`~repro.orchestration.axes` registry;
register an :class:`~repro.orchestration.axes.Axis` to add a dimension
without touching the matrix, the store or the CLI.

Beyond one machine, :mod:`~repro.orchestration.dispatch` turns a matrix
into a filesystem work queue: :func:`plan_dispatch` writes a manifest
of leased shard units, :func:`run_claims` is the worker loop, and the
incremental collector in :mod:`repro.store.collector` folds the
resulting shards as they land (``docs/sweeps.md`` walks it through).
"""

from .axes import AXES, SCHEMA_VERSION, Axis, AxisRegistry
from .config import RunConfig
from .dispatch import (
    DispatchError,
    DispatchPlan,
    ShardUnit,
    plan_dispatch,
    run_claims,
)
from .kernel import KernelContext, default_context
from .matrix import (
    ScenarioMatrix,
    ScenarioOutcome,
    ScenarioSpec,
    adversary_from_name,
    build_config,
    normalize_topology,
    outcome_from_record,
    run_scenario,
    topology_from_name,
)
from .parallel import (
    SweepResult,
    default_workers,
    shard_slice,
    sweep_async,
    sweep_parallel,
    sweep_serial,
)
from .runner import (
    ConsensusRunResult,
    RandomizedRunResult,
    default_topology,
    run_consensus,
    run_randomized,
)
from .sweeps import (
    PROPOSAL_PROFILES,
    format_table,
    proposal_profile,
    standard_proposals,
    sweep_seeds,
)

__all__ = [
    "AXES",
    "SCHEMA_VERSION",
    "Axis",
    "AxisRegistry",
    "KernelContext",
    "default_context",
    "RunConfig",
    "DispatchError",
    "DispatchPlan",
    "ShardUnit",
    "plan_dispatch",
    "run_claims",
    "ScenarioMatrix",
    "ScenarioOutcome",
    "ScenarioSpec",
    "adversary_from_name",
    "build_config",
    "normalize_topology",
    "outcome_from_record",
    "run_scenario",
    "topology_from_name",
    "SweepResult",
    "default_workers",
    "shard_slice",
    "sweep_async",
    "sweep_parallel",
    "sweep_serial",
    "ConsensusRunResult",
    "RandomizedRunResult",
    "default_topology",
    "run_consensus",
    "run_randomized",
    "PROPOSAL_PROFILES",
    "format_table",
    "proposal_profile",
    "standard_proposals",
    "sweep_seeds",
]
