"""Experiment orchestration: configs, the runner, sweep helpers."""

from .config import RunConfig
from .runner import (
    ConsensusRunResult,
    RandomizedRunResult,
    default_topology,
    run_consensus,
    run_randomized,
)
from .sweeps import format_table, standard_proposals, sweep_seeds

__all__ = [
    "RunConfig",
    "ConsensusRunResult",
    "RandomizedRunResult",
    "default_topology",
    "run_consensus",
    "run_randomized",
    "format_table",
    "standard_proposals",
    "sweep_seeds",
]
