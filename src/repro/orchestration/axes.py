"""Extensible scenario-axis registry: the vocabulary of sweepable knobs.

Every dimension a :class:`~repro.orchestration.matrix.ScenarioMatrix`
can grid over — system size, synchrony topology, adversary strategy,
value diversity, per-cell fault count and placement, proposal profile,
the Section 5.4 ``k`` knob, timing budgets — is a registered
:class:`Axis`.  An axis bundles everything the engine needs to treat a
knob generically:

* a **parser** (``parse``) turning one CLI token into a value
  (``repro sweep --axis k=0,1,2`` works for *any* registered axis);
* a **canonical codec** (``canonical`` / ``encode`` / ``decode``) whose
  output feeds the JSONL records, the content-addressed cache keys and
  the structural seed derivation — one codec, four subsystems;
* **feasibility hooks** (``check`` drops infeasible cells, ``clamp``
  adjusts them) applied during matrix expansion;
* an optional **apply hook** mapping the value onto
  :class:`~repro.orchestration.config.RunConfig` keyword arguments, so
  axes that live outside :class:`ScenarioSpec`'s built-in fields (the
  ``extras`` mapping) still reach the runner.

Schema versioning
-----------------
The spec codec is *omit-defaults*: a spec whose non-legacy axes all sit
at their defaults serializes to exactly the schema-1 (PR-2) record, so
its SHA-256 cache key, shard-dedup key and derived seeds are unchanged —
pre-registry cache directories and JSONL shards keep working verbatim.
Only a spec using a new axis gains the new fields plus a
``"schema": 2`` marker; readers accept both and refuse records from a
*newer* schema loudly.  :data:`SCHEMA_VERSION` is the current writer
version.

Registering a custom axis (see ``examples/axis_sweep.py``)::

    from repro.orchestration.axes import AXES, Axis

    AXES.register(Axis(
        name="fifo", default=False, parse=parse_bool,
        apply=lambda kwargs, v: kwargs.__setitem__("fifo", v),
    ))

after which ``ScenarioMatrix(axes={"fifo": [False, True]})`` (or
``--axis fifo=false,true``) grids over it, outcomes carry it through
JSONL and the cache, and ``build_config`` applies it to every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, MutableMapping

from ..adversary import strategies
from ..adversary.strategies import AdversarySpec, normalize_placement
from ..analysis.feasibility import clamp_values, feasible_cell
from ..net.topology import Topology, fully_asynchronous, fully_timely

__all__ = [
    "SCHEMA_VERSION",
    "TOPOLOGY_KINDS",
    "ADVERSARY_KINDS",
    "Axis",
    "AxisRegistry",
    "AXES",
    "adversary_from_name",
    "normalize_topology",
    "topology_from_name",
    "parse_bool",
    "cell_extra_items",
    "decode_extras",
    "spec_schema2_fields",
    "spec_extra_labels",
]

#: Current writer version of the spec codec.  Schema 1 is the PR-2
#: fixed-field record; schema 2 adds registry axes (omit-defaults, so a
#: schema-1 record is exactly a schema-2 record with every new axis at
#: its default).
SCHEMA_VERSION = 2

#: Topology grid vocabulary (aliases accepted by :func:`normalize_topology`).
TOPOLOGY_KINDS = ("single_bisource", "fully_timely", "fully_asynchronous")

_TOPOLOGY_ALIASES = {
    "minimal": "single_bisource",
    "bisource": "single_bisource",
    "single_bisource": "single_bisource",
    "timely": "fully_timely",
    "fully_timely": "fully_timely",
    "async": "fully_asynchronous",
    "asynchronous": "fully_asynchronous",
    "fully_asynchronous": "fully_asynchronous",
}

#: ``kind -> (arg string -> AdversarySpec)``; the CLI shares this registry.
ADVERSARY_KINDS: dict[str, Callable[[str], AdversarySpec]] = {
    "crash": lambda arg: strategies.crash(),
    "noise": lambda arg: strategies.noise(float(arg) if arg else 0.5),
    "two_faced": lambda arg: strategies.two_faced(arg or "evil"),
    "flip_flop": lambda arg: strategies.flip_flop(
        arg.split("|") if arg else None
    ),
    "mute_coord": lambda arg: strategies.mute_coordinator(),
    "collude": lambda arg: strategies.collude(arg or "evil"),
    "spam_decide": lambda arg: strategies.spam_decide(arg or "evil"),
    "bot_relays": lambda arg: strategies.bot_relays(int(arg) if arg else 500),
    "crash_at": lambda arg: strategies.crash_at(float(arg) if arg else 25.0),
}


def adversary_from_name(name: str) -> AdversarySpec | None:
    """Build an :class:`AdversarySpec` from ``"kind"`` or ``"kind:arg"``.

    ``"none"`` (or the empty string) yields ``None`` — no adversary.
    """
    if name in ("", "none"):
        return None
    kind, _, arg = name.partition(":")
    if kind not in ADVERSARY_KINDS:
        raise ValueError(
            f"unknown adversary kind {kind!r} "
            f"(known: {', '.join(sorted(ADVERSARY_KINDS))}, none)"
        )
    return ADVERSARY_KINDS[kind](arg)


def normalize_topology(name: str) -> str:
    """Canonicalise a topology name (accepting CLI-style aliases)."""
    try:
        return _TOPOLOGY_ALIASES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r} (known: "
            f"{', '.join(sorted(set(_TOPOLOGY_ALIASES)))})"
        ) from None


def topology_from_name(kind: str, n: int) -> Topology | None:
    """Instantiate the named topology (``None`` = the runner's minimal
    single-bisource default, which depends on the correct set)."""
    kind = normalize_topology(kind)
    if kind == "single_bisource":
        return None
    if kind == "fully_timely":
        return fully_timely(n)
    return fully_asynchronous(n)


def parse_bool(text: str) -> bool:
    """Parse a CLI boolean token (``true/false``, ``1/0``, ``yes/no``)."""
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {text!r}")


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class Axis:
    """One sweepable scenario dimension.

    Attributes:
        name: Axis (and, for built-ins, spec-field) name.
        default: Value cells take when the axis is not gridded.  For a
            *non-legacy* axis the default also controls serialization:
            default values are omitted from records and keys, which is
            what keeps pre-registry stores loading unchanged.
        parse: One CLI token -> value (``--axis name=tok1,tok2``).
        fields: The :class:`ScenarioSpec` fields this axis owns.
            ``("n", "t")`` for the size axis, a 1-tuple for most others,
            and ``()`` for axes stored in the spec's open ``extras``
            mapping (custom axes).
        aliases: Alternative CLI names (``--axis grid=...``).
        encode / decode: JSON-level codec for the value (defaults to
            identity; must be deterministic — the output feeds cache
            keys and seed derivation).
        canonical: Validator/normaliser applied to every gridded value
            (raises ``ValueError`` on junk, returns the canonical form).
        check: Cell-level feasibility predicate: given the full cell
            mapping, ``False`` drops the cell from the expansion.
        clamp: Cell-level adjuster, mutating the cell mapping in place
            (e.g. value diversity clamped to the feasibility bound).
        label: ``value -> cell-id fragment`` (``None`` = contribute
            nothing).  When unset, non-legacy axes auto-label non-default
            values as ``name=value``.
        apply: Hook mapping the value onto ``RunConfig`` kwargs during
            :func:`~repro.orchestration.matrix.build_config`.  Built-in
            axes are wired directly and leave this unset; extras-backed
            axes need it to reach the runner.
        legacy: True for the schema-1 (PR-2) field set, which is always
            serialized and participates in the fixed seed-key tuple.
        help: One-line description for CLI listings.
    """

    name: str
    default: Any
    parse: Callable[[str], Any]
    fields: tuple[str, ...] = ()
    aliases: tuple[str, ...] = ()
    encode: Callable[[Any], Any] = _identity
    decode: Callable[[Any], Any] = _identity
    canonical: Callable[[Any], Any] = _identity
    check: Callable[[Mapping[str, Any]], bool] | None = None
    clamp: Callable[[MutableMapping[str, Any]], None] | None = None
    label: Callable[[Any], str | None] | None = None
    apply: Callable[[MutableMapping[str, Any], Any], None] | None = None
    legacy: bool = False
    help: str = ""

    def set_on(self, cell: MutableMapping[str, Any], value: Any) -> None:
        """Store ``value`` into a cell mapping under this axis's fields."""
        if not self.fields:
            cell["extras"][self.name] = value
        elif len(self.fields) == 1:
            cell[self.fields[0]] = value
        else:
            for field_name, part in zip(self.fields, value):
                cell[field_name] = part

    def get_from_cell(self, cell: Mapping[str, Any]) -> Any:
        """Read this axis's value back out of a cell mapping."""
        if not self.fields:
            return cell["extras"].get(self.name, self.default)
        if len(self.fields) == 1:
            return cell[self.fields[0]]
        return tuple(cell[field_name] for field_name in self.fields)

    def of_spec(self, spec: Any) -> Any:
        """Read this axis's value from a :class:`ScenarioSpec`."""
        if not self.fields:
            return dict(spec.extras).get(self.name, self.default)
        if len(self.fields) == 1:
            return getattr(spec, self.fields[0])
        return tuple(getattr(spec, field_name) for field_name in self.fields)

    def label_for(self, value: Any) -> str | None:
        """The cell-id fragment for ``value`` (``None`` = omit)."""
        if self.label is not None:
            return self.label(value)
        if self.legacy or value == self.default:
            return None
        return f"{self.name}={value}"


class AxisRegistry:
    """Ordered registry of scenario axes.

    Registration order is load-bearing: it is the nesting order of the
    matrix cross-product (so the built-in axes reproduce the historical
    ``sizes × topologies × adversaries × value_counts`` expansion order
    exactly) and the order of cell-id label fragments.
    """

    def __init__(self) -> None:
        self._axes: dict[str, Axis] = {}
        self._aliases: dict[str, str] = {}

    def register(self, axis: Axis) -> Axis:
        """Add an axis; name/alias collisions raise ``ValueError``."""
        for name in (axis.name, *axis.aliases):
            if name in self._axes or name in self._aliases:
                raise ValueError(f"axis name {name!r} is already registered")
        self._axes[axis.name] = axis
        for alias in axis.aliases:
            self._aliases[alias] = axis.name
        return axis

    def unregister(self, name: str) -> None:
        """Remove a (typically custom) axis and its aliases."""
        axis = self.resolve(name)
        del self._axes[axis.name]
        for alias in axis.aliases:
            self._aliases.pop(alias, None)

    def resolve(self, name: str) -> Axis:
        """Look an axis up by name or alias; unknown names raise with
        the full vocabulary in the message."""
        canonical = self._aliases.get(name, name)
        try:
            return self._axes[canonical]
        except KeyError:
            raise ValueError(
                f"unknown axis {name!r} (known: {', '.join(self.names())})"
            ) from None

    def get(self, name: str) -> Axis | None:
        try:
            return self.resolve(name)
        except ValueError:
            return None

    def names(self) -> tuple[str, ...]:
        return tuple(self._axes)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Axis]:
        return iter(self._axes.values())

    def __len__(self) -> int:
        return len(self._axes)

    def describe(self) -> str:
        """One line per axis: name, aliases, default, help (CLI use)."""
        lines = []
        for axis in self:
            alias = f" (alias: {', '.join(axis.aliases)})" if axis.aliases else ""
            lines.append(
                f"{axis.name}{alias} [default: {axis.default!r}] {axis.help}"
            )
        return "\n".join(lines)


def _parse_size(text: str) -> tuple[int, int]:
    n_text, sep, t_text = text.partition(":")
    if not sep:
        raise ValueError(f"bad size {text!r} (expected N:T)")
    return (int(n_text), int(t_text))


def _canonical_size(value: Any) -> tuple[int, int]:
    n, t = value
    n, t = int(n), int(t)
    if n < 1 or t < 0:
        raise ValueError(f"bad size (n={n}, t={t})")
    return (n, t)


def _canonical_adversary(name: str) -> str:
    adversary_from_name(str(name))  # validate eagerly
    return str(name)


def _canonical_num_values(value: Any) -> int:
    m = int(value)
    if m < 1:
        raise ValueError(f"value diversity must be >= 1, got {m}")
    return m


def _parse_faults(text: str) -> int | None:
    return None if text in ("none", "t") else int(text)


def _canonical_faults(value: Any) -> int | None:
    if value is None:
        return None
    faults = int(value)
    if faults < 0:
        raise ValueError(f"faults must be >= 0, got {faults}")
    return faults


def _canonical_variant(value: Any) -> str:
    variant = str(value)
    if variant not in ("standard", "bot"):
        raise ValueError(f"unknown variant {variant!r}")
    return variant


def _canonical_k(value: Any) -> int:
    k = int(value)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return k


def _canonical_profile(value: Any) -> str:
    from .sweeps import normalize_profile

    return normalize_profile(str(value))


def _clamp_num_values(cell: MutableMapping[str, Any]) -> None:
    cell["num_values"] = clamp_values(
        cell["n"], cell["t"], cell["num_values"],
        faults=cell["faults"], variant=cell["variant"],
    )


#: The global axis registry.  Registration order defines grid nesting
#: (legacy axes first, matching the pre-registry expansion order).
AXES = AxisRegistry()

AXES.register(Axis(
    name="size", default=(4, 1), parse=_parse_size, fields=("n", "t"),
    aliases=("grid",), canonical=_canonical_size,
    encode=lambda v: list(v), decode=lambda v: tuple(int(x) for x in v),
    check=lambda cell: cell["n"] > 3 * cell["t"],
    legacy=True, help="system size as N:T pairs (resilience n > 3t)",
))
AXES.register(Axis(
    name="topology", default="single_bisource", parse=str,
    fields=("topology",), canonical=normalize_topology, legacy=True,
    help="synchrony topology (minimal/timely/async)",
))
AXES.register(Axis(
    name="adversary", default="crash", parse=str, fields=("adversary",),
    canonical=_canonical_adversary, legacy=True,
    help="Byzantine strategy as KIND or KIND:ARG ('none' for none)",
))
AXES.register(Axis(
    name="num_values", default=2, parse=int, fields=("num_values",),
    aliases=("m",), canonical=_canonical_num_values,
    clamp=_clamp_num_values, legacy=True,
    help="distinct-proposal count, clamped to the feasibility bound",
))
AXES.register(Axis(
    name="faults", default=None, parse=_parse_faults, fields=("faults",),
    canonical=_canonical_faults,
    check=lambda cell: feasible_cell(
        cell["n"], cell["t"], faults=cell["faults"]
    ),
    legacy=True, help="per-cell Byzantine count (none = full budget t)",
))
AXES.register(Axis(
    name="variant", default="standard", parse=str, fields=("variant",),
    canonical=_canonical_variant, legacy=True,
    help="protocol variant (standard = Figure 4, bot = Section 7)",
))
AXES.register(Axis(
    name="k", default=0, parse=int, fields=("k",), canonical=_canonical_k,
    check=lambda cell: feasible_cell(cell["n"], cell["t"], k=cell["k"]),
    legacy=True, help="Section 5.4 knob (bisource width t+1+k; k <= t)",
))
AXES.register(Axis(
    name="max_time", default=1_000_000.0, parse=float, fields=("max_time",),
    canonical=float, legacy=True, help="virtual-time budget per run",
))
AXES.register(Axis(
    name="max_events", default=20_000_000, parse=int, fields=("max_events",),
    canonical=int, legacy=True, help="event budget per run",
))
AXES.register(Axis(
    name="placement", default="tail", parse=str, fields=("placement",),
    canonical=normalize_placement,
    label=lambda v: None if v == "tail" else f"place={v}",
    help="where the faulty pids sit (tail/head/spread)",
))
AXES.register(Axis(
    name="proposals", default="round_robin", parse=str, fields=("proposals",),
    canonical=_canonical_profile,
    label=lambda v: None if v == "round_robin" else f"prop={v}",
    help="proposal profile (round_robin/block/skewed/unanimous)",
))
AXES.register(Axis(
    name="fifo", default=False, parse=parse_bool,
    canonical=lambda v: bool(v),
    label=lambda v: "fifo" if v else None,
    apply=lambda kwargs, v: kwargs.__setitem__("fifo", bool(v)),
    help="FIFO channel delivery (extras-backed demonstration axis)",
))


def _canonical_timeouts(value: Any) -> str:
    from ..errors import ConfigurationError
    from ..net.timing import normalize_timeout_schedule

    try:
        return normalize_timeout_schedule(str(value))
    except ConfigurationError as exc:
        # The axis contract reports bad grid values as ValueError.
        raise ValueError(str(exc)) from None


def _apply_timeouts(kwargs: MutableMapping[str, Any], value: str) -> None:
    if value != "linear":
        from ..net.timing import timeout_schedule

        kwargs["timeout_fn"] = timeout_schedule(value)


AXES.register(Axis(
    name="timeouts", default="linear", parse=str,
    canonical=_canonical_timeouts,
    label=lambda v: None if v == "linear" else f"to={v}",
    apply=_apply_timeouts,
    help="EA round-timeout schedule "
         "(linear[:SLOPE]/constant:VALUE/exponential:BASE[:SCALE])",
))


def _parse_schedule(text: str) -> tuple[int, ...] | None:
    if text in ("", "none"):
        return None
    return tuple(int(part) for part in text.split("-") if part != "")


def _canonical_schedule(value: Any) -> tuple[int, ...] | None:
    if value is None:
        return None
    schedule = tuple(int(c) for c in value)
    if any(c < 0 for c in schedule):
        raise ValueError(f"schedule indices must be >= 0, got {schedule}")
    return schedule


def _apply_schedule(
    kwargs: MutableMapping[str, Any], value: tuple[int, ...] | None
) -> None:
    if value is not None:
        kwargs["check_schedule"] = value


AXES.register(Axis(
    name="schedule", default=None, parse=_parse_schedule,
    canonical=_canonical_schedule,
    encode=lambda v: None if v is None else list(v),
    decode=lambda v: None if v is None else tuple(int(c) for c in v),
    label=lambda v: None if v is None else "sched=" + "-".join(map(str, v)),
    apply=_apply_schedule,
    help="checker schedule replay: '-'-joined choice indices "
         "(repro.checking counterexamples; forces check-mode semantics)",
))


def canonical_extras(
    extras: Mapping[str, Any],
) -> tuple[tuple[str, Any], ...]:
    """Canonical ``ScenarioSpec.extras`` tuple: sorted, defaults omitted
    (a spec with every custom axis at its default must compare — and
    hash — equal to one that never mentioned them)."""
    out = []
    for name, value in extras.items():
        axis = AXES.get(name)
        if axis is None or value != axis.default:
            out.append((name, value))
    return tuple(sorted(out))


def cell_extra_items(cell: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Sorted non-default ``(name, encoded value)`` pairs of a cell's
    non-legacy axes — the schema-2 extension of the structural seed key
    (empty for purely legacy cells, which therefore keep their
    pre-registry seeds)."""
    out = []
    for axis in AXES:
        if axis.legacy:
            continue
        value = axis.get_from_cell(cell)
        if value != axis.default:
            out.append((axis.name, axis.encode(value)))
    return tuple(sorted(out))


def spec_schema2_fields(spec: Any) -> dict[str, Any]:
    """The fields a spec's schema-2 record adds on top of the schema-1
    layout (empty for legacy-valued specs): non-default field-backed
    non-legacy axes flat under their names, and the open ``extras``
    mapping — registered entries through their codec, *unregistered*
    entries verbatim, so a record written with a custom axis round-trips
    byte-identically even through a process that never registered it."""
    out: dict[str, Any] = {}
    for axis in AXES:
        if axis.legacy or not axis.fields:
            continue
        value = axis.of_spec(spec)
        if value != axis.default:
            out[axis.name] = axis.encode(value)
    if spec.extras:
        encoded = {}
        for name, value in spec.extras:
            axis = AXES.get(name)
            encoded[name] = axis.encode(value) if axis is not None else value
        out["extras"] = encoded
    return out


def decode_extras(raw: Mapping[str, Any]) -> dict[str, Any]:
    """Decode a record's ``extras`` mapping: registered axes go through
    their codec and validator; unregistered names are preserved verbatim
    (dropping them would silently collapse distinct scenarios)."""
    out: dict[str, Any] = {}
    for name, value in raw.items():
        axis = AXES.get(name)
        if axis is not None and not axis.fields:
            out[name] = axis.canonical(axis.decode(value))
        else:
            out[name] = value
    return out


def spec_extra_labels(spec: Any) -> list[str]:
    """Cell-id fragments contributed by non-legacy axes, in registry
    order (empty for legacy specs, keeping historical cell ids).
    Extras of axes not currently registered label as ``name=value`` so
    distinct scenarios keep distinct cell ids on foreign machines."""
    labels = []
    for axis in AXES:
        if axis.legacy:
            continue
        text = axis.label_for(axis.of_spec(spec))
        if text:
            labels.append(text)
    for name, value in spec.extras:
        if AXES.get(name) is None:
            labels.append(f"{name}={value}")
    return labels
