"""Run configuration for consensus experiments.

A :class:`RunConfig` is the *live* description of one run (value
objects, callables, a topology instance).  The sweep engine never ships
it across process boundaries: workers reconstruct it from a picklable
:class:`~repro.orchestration.matrix.ScenarioSpec` via
:func:`~repro.orchestration.matrix.build_config`, where every registered
scenario axis (:mod:`repro.orchestration.axes`) contributes its field —
fault placement chooses ``adversaries``, the proposal profile deals
``proposals``, and extras-backed custom axes patch keyword arguments
(e.g. ``fifo``) through their ``apply`` hooks before ``__post_init__``
validates the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..adversary.strategies import AdversarySpec
from ..analysis.feasibility import check_feasibility
from ..errors import ConfigurationError
from ..net.topology import Topology

__all__ = ["RunConfig"]


@dataclass
class RunConfig:
    """Everything needed to execute one consensus run.

    Attributes:
        n: Number of processes (ids ``1..n``).
        t: Resilience parameter; must satisfy ``n > 3t``.  The number of
            *actual* adversaries may be anything up to ``t``.
        proposals: ``pid -> value`` for every correct process.  Keys must
            be exactly the processes not named in ``adversaries``.
        adversaries: ``pid -> AdversarySpec`` for the faulty processes.
        topology: Channel-timing matrix; ``None`` selects the minimal
            single-``<t+1+k>bisource`` topology with the lowest correct
            pid as bisource.
        m: Bound on distinct correct proposals; ``None`` derives it from
            ``proposals`` (standard variant) or disables the check (⊥
            variant).
        k: Section 5.4 tuning parameter.
        seed: Master seed for all randomness (channels, adversaries).
        variant: ``"standard"`` (Figure 4) or ``"bot"`` (Section 7).
        ea_factory: Override for the EA implementation (baselines).
        timeout_fn: EA round-timeout schedule override.
        max_rounds: Cap on consensus rounds per process (``None``: none).
        selector: Deterministic "any value in cb_valid" choice override
            (default: first value added; see repro.core.values).
        max_time: Virtual-time budget for the run.
        max_events: Event budget for the run (runaway guard).
        fifo: Whether channels deliver in order.
        trace: Record a full structured event trace (network sends and
            deliveries, RB deliveries, decisions) on the result's
            ``trace`` attribute.  Adds memory/CPU cost; off by default.
        check_schedule: Replay a checker schedule (:mod:`repro.checking`):
            the run executes under check-mode semantics (instant
            deliveries, ``topology`` ignored) with delivery order forced
            by the given choice indices, defaulting to first-candidate
            once the schedule is consumed.  ``None`` (default) runs the
            ordinary sampled semantics.
    """

    n: int
    t: int
    proposals: dict[int, Any]
    adversaries: dict[int, AdversarySpec] = field(default_factory=dict)
    topology: Topology | None = None
    m: int | None = None
    k: int = 0
    seed: int = 0
    variant: str = "standard"
    ea_factory: Callable[..., Any] | None = None
    timeout_fn: Callable[[int], float] | None = None
    max_rounds: int | None = None
    selector: Callable[..., Any] | None = None
    max_time: float = 100_000.0
    max_events: int = 20_000_000
    fifo: bool = False
    trace: bool = False
    check_schedule: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.check_schedule is not None:
            self.check_schedule = tuple(int(c) for c in self.check_schedule)
            if any(c < 0 for c in self.check_schedule):
                raise ConfigurationError(
                    f"check_schedule indices must be >= 0, "
                    f"got {self.check_schedule}"
                )
        if not self.n > 3 * self.t:
            raise ConfigurationError(
                f"resilience bound requires n > 3t, got n={self.n}, t={self.t}"
            )
        if len(self.adversaries) > self.t:
            raise ConfigurationError(
                f"{len(self.adversaries)} adversaries exceed t={self.t}"
            )
        all_pids = set(range(1, self.n + 1))
        byzantine = set(self.adversaries)
        if not byzantine <= all_pids:
            raise ConfigurationError(f"adversary pids out of range: {byzantine}")
        expected_correct = all_pids - byzantine
        if set(self.proposals) != expected_correct:
            raise ConfigurationError(
                f"proposals must cover exactly the correct processes "
                f"{sorted(expected_correct)}, got {sorted(self.proposals)}"
            )
        if self.variant not in ("standard", "bot"):
            raise ConfigurationError(f"unknown variant {self.variant!r}")
        if not 0 <= self.k <= self.t:
            raise ConfigurationError(f"k must be in 0..t, got {self.k}")
        if self.variant == "standard" and self.m is None:
            # Derive m from the profile and fail fast if infeasible.
            self.m = max(1, len(set(self.proposals.values())))
        if self.variant == "standard":
            check_feasibility(self.n, self.t, self.m)

    @property
    def correct(self) -> frozenset[int]:
        """The correct process ids."""
        return frozenset(self.proposals)

    @property
    def byzantine(self) -> frozenset[int]:
        """The faulty process ids."""
        return frozenset(self.adversaries)
