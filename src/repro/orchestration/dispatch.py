"""Distributed sweep dispatch: a filesystem work queue over shard units.

``repro sweep --shard i/N`` (PR 3) proved that the N round-robin slices
of one matrix execute independently and merge bit-identically back into
the unsharded sweep — but left assigning those slices to workers as a
manual job.  This module closes that gap with a *work-queue dispatcher*:

* :func:`plan_dispatch` partitions a
  :class:`~repro.orchestration.matrix.ScenarioMatrix` into named
  :class:`ShardUnit` slices and persists the whole plan as one atomic
  JSON **manifest** (the matrix itself rides along via
  :meth:`~repro.orchestration.matrix.ScenarioMatrix.to_dict`, so a
  claimant needs nothing but the manifest to reconstruct its exact
  specs — same seeds, same indices);
* any worker process — on this machine or any machine sharing the
  filesystem — **claims** a unit (:meth:`DispatchPlan.claim`), executes
  it through the ordinary sweep backends (optionally against a shared
  :class:`~repro.store.cache.ResultCache`), writes its shard JSONL
  atomically, and marks the unit done;
* claims carry a **lease**: a worker that dies mid-unit stops renewing
  nothing — its lease simply expires and the unit becomes claimable
  again, up to ``max_attempts`` total tries (the straggler/retry
  semantics that make the queue safe without any coordinator process);
* live claimants **heartbeat** (:meth:`DispatchPlan.heartbeat`):
  periodic progress writes into the lease record that double as lease
  *renewal*, so a long-running unit is never reclaimed while its worker
  is demonstrably alive — only silence lets a lease run out.  ``repro
  top`` renders the heartbeats as a live fleet view, and
  ``dispatch status --reclaim`` (:meth:`DispatchPlan.reclaim_stale`)
  reconciles units whose lease expired with no heartbeat back to
  ``pending`` in one step, so status reflects reality instead of
  accumulating stale leases.

Mutual exclusion is a sidecar lock file taken with ``O_CREAT | O_EXCL``
(atomic on POSIX and NFS alike) around every read-modify-write of the
manifest; the manifest itself is only ever replaced atomically
(:mod:`repro.store.atomic`), so readers — ``repro dispatch status``,
the collector — never see a torn plan.  Because scenario execution is
deterministic in the spec, two workers racing the same expired unit is
harmless: both produce byte-identical shards, and "done" is idempotent.

The other half of the pipeline — folding the shard files back into one
report as they land — is :mod:`repro.store.collector`; the walkthrough
lives in ``docs/sweeps.md``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from ..store.atomic import atomic_write_text
from .matrix import ScenarioMatrix, ScenarioSpec
from .parallel import shard_slice

if TYPE_CHECKING:  # pragma: no cover
    from ..store.cache import ResultCache
    from .parallel import SweepResult

__all__ = [
    "DispatchError",
    "DispatchPlan",
    "ManifestLockTimeout",
    "ShardUnit",
    "plan_dispatch",
    "run_claims",
]

#: On-disk names inside a dispatch directory.
MANIFEST_NAME = "manifest.json"
LOCK_NAME = "manifest.lock"
SHARD_DIR = "shards"

#: Bump when the manifest layout changes (older code refuses newer
#: manifests instead of mis-reading them).
MANIFEST_FORMAT = 1


class DispatchError(RuntimeError):
    """A dispatch directory is missing, malformed or inconsistent."""


class ManifestLockTimeout(DispatchError):
    """The manifest lock could not be acquired in time."""


class _ManifestLock:
    """Sidecar-file mutex for manifest read-modify-writes.

    ``O_CREAT | O_EXCL`` creation is atomic even over NFS, which is the
    lowest common denominator for a directory shared between machines.
    A holder that died leaves a stale file; anyone who finds the lock
    older than ``stale_after`` breaks it — the worst case is two workers
    in the critical section at once, which the atomic manifest replace
    degrades to a lost *lease update*, never a torn file.
    """

    def __init__(
        self,
        path: Path,
        timeout: float = 10.0,
        poll: float = 0.02,
        stale_after: float = 30.0,
    ) -> None:
        self.path = path
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after

    def __enter__(self) -> "_ManifestLock":
        deadline = time.monotonic() + self.timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    age = 0.0  # holder just released; retry immediately
                if age > self.stale_after:
                    # Break the stale lock; losing the unlink race to
                    # another breaker is fine (both then re-contend).
                    self.path.unlink(missing_ok=True)
                    continue
                if time.monotonic() >= deadline:
                    raise ManifestLockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout:.1f}s (held by a live claimant?)"
                    )
                time.sleep(self.poll)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()}\n")
            return self

    def __exit__(self, *exc: object) -> None:
        self.path.unlink(missing_ok=True)


@dataclass
class ShardUnit:
    """One claimable slice of a dispatched matrix.

    ``index``/``count`` feed :func:`~repro.orchestration.parallel.shard_slice`,
    so the unit's spec list is derived, never stored.  ``status`` moves
    ``pending -> leased -> done``; an expired lease makes a ``leased``
    unit claimable again without a status change (expiry is a property
    of *now*, not of the record).
    """

    name: str
    index: int
    count: int
    scenarios: int
    shard: str
    status: str = "pending"
    owner: str | None = None
    lease_expires: float | None = None
    attempts: int = 0
    records: int | None = None
    completed_at: float | None = None
    #: When the current lease was taken (wall clock).
    claimed_at: float | None = None
    #: Last heartbeat write (wall clock); ``None`` = never heartbeat.
    heartbeat_at: float | None = None
    #: Progress reported by the last heartbeat.
    progress_done: int | None = None
    progress_total: int | None = None

    def lease_expired(self, now: float) -> bool:
        """True when a leased unit's worker ran out its lease."""
        return (
            self.status == "leased"
            and self.lease_expires is not None
            and now >= self.lease_expires
        )

    def heartbeat_age(self, now: float) -> float | None:
        """Seconds since the claimant last proved it was alive — the
        heartbeat if one ever arrived, else the claim itself.  ``None``
        for units not currently leased."""
        if self.status != "leased":
            return None
        last = self.heartbeat_at if self.heartbeat_at is not None \
            else self.claimed_at
        return None if last is None else max(0.0, now - last)

    def claimable(self, now: float, max_attempts: int) -> bool:
        """May a worker (re)claim this unit right now?"""
        if self.attempts >= max_attempts:
            return False
        return self.status == "pending" or self.lease_expired(now)

    def abandoned(self, now: float, max_attempts: int) -> bool:
        """This unit will never complete: its retry budget is spent and
        no live lease remains.  (A unit *on* its final attempt, lease
        still running, is not abandoned — that worker may yet finish.)"""
        if self.status == "done" or self.attempts < max_attempts:
            return False
        return self.status == "pending" or self.lease_expired(now)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "index": self.index, "count": self.count,
            "scenarios": self.scenarios, "shard": self.shard,
            "status": self.status, "owner": self.owner,
            "lease_expires": self.lease_expires, "attempts": self.attempts,
            "records": self.records, "completed_at": self.completed_at,
            "claimed_at": self.claimed_at,
            "heartbeat_at": self.heartbeat_at,
            "progress_done": self.progress_done,
            "progress_total": self.progress_total,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardUnit":
        return cls(
            name=str(data["name"]),
            index=int(data["index"]),
            count=int(data["count"]),
            scenarios=int(data["scenarios"]),
            shard=str(data["shard"]),
            status=str(data.get("status", "pending")),
            owner=data.get("owner"),
            lease_expires=(
                None if data.get("lease_expires") is None
                else float(data["lease_expires"])
            ),
            attempts=int(data.get("attempts", 0)),
            records=(
                None if data.get("records") is None else int(data["records"])
            ),
            completed_at=(
                None if data.get("completed_at") is None
                else float(data["completed_at"])
            ),
            # Heartbeat fields arrived after PR 5: absent in older
            # manifests, which load as "never heartbeat" (the truth).
            claimed_at=(
                None if data.get("claimed_at") is None
                else float(data["claimed_at"])
            ),
            heartbeat_at=(
                None if data.get("heartbeat_at") is None
                else float(data["heartbeat_at"])
            ),
            progress_done=(
                None if data.get("progress_done") is None
                else int(data["progress_done"])
            ),
            progress_total=(
                None if data.get("progress_total") is None
                else int(data["progress_total"])
            ),
        )


@dataclass
class DispatchPlan:
    """A dispatch directory: the manifest plus its derived accessors.

    All mutation goes through :meth:`claim` / :meth:`complete` /
    :meth:`release`, each a locked read-modify-write that reloads the
    units from disk first — a plan object never trusts its in-memory
    copy across operations, because other claimants mutate the same
    manifest concurrently.
    """

    root: Path
    matrix: ScenarioMatrix
    units: list[ShardUnit]
    lease_seconds: float = 300.0
    max_attempts: int = 3
    total_scenarios: int = 0
    created_at: float = 0.0
    #: Stable identity stamped on every ledger event of this fleet run
    #: (empty for manifests written before telemetry existed).
    run_id: str = ""
    _specs: list[ScenarioSpec] | None = field(
        default=None, repr=False, compare=False
    )

    # -- paths ----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def shard_dir(self) -> Path:
        return self.root / SHARD_DIR

    def shard_path(self, unit: ShardUnit) -> Path:
        return self.root / unit.shard

    def _lock(self) -> _ManifestLock:
        return _ManifestLock(self.root / LOCK_NAME)

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "created_at": self.created_at,
            "lease_seconds": self.lease_seconds,
            "max_attempts": self.max_attempts,
            "total_scenarios": self.total_scenarios,
            "run_id": self.run_id,
            "matrix": self.matrix.to_dict(),
            "units": [unit.to_dict() for unit in self.units],
        }

    def _save(self) -> None:
        atomic_write_text(
            self.manifest_path,
            json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n",
        )

    @classmethod
    def load(cls, root: str | os.PathLike[str]) -> "DispatchPlan":
        """Read a dispatch directory's manifest."""
        path = Path(root) / MANIFEST_NAME
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise DispatchError(f"no dispatch manifest at {path}") from None
        except (OSError, ValueError) as exc:
            raise DispatchError(f"unreadable manifest {path}: {exc}") from None
        fmt = int(data.get("format", 0))
        if fmt != MANIFEST_FORMAT:
            raise DispatchError(
                f"{path}: manifest format {fmt} not supported "
                f"(this code reads format {MANIFEST_FORMAT})"
            )
        return cls(
            root=Path(root),
            matrix=ScenarioMatrix.from_dict(data["matrix"]),
            units=[ShardUnit.from_dict(u) for u in data["units"]],
            lease_seconds=float(data["lease_seconds"]),
            max_attempts=int(data["max_attempts"]),
            total_scenarios=int(data.get("total_scenarios", 0)),
            created_at=float(data.get("created_at", 0.0)),
            run_id=str(data.get("run_id", "")),
        )

    def _reload_units(self) -> None:
        """Refresh lease state from disk (callers hold the lock)."""
        self.units = DispatchPlan.load(self.root).units

    # -- spec derivation ------------------------------------------------

    def specs_for(self, unit: ShardUnit) -> list[ScenarioSpec]:
        """The unit's scenario slice, derived from the manifest's matrix
        through the same :func:`~repro.orchestration.parallel.shard_slice`
        that backs ``repro sweep --shard`` (matrix indices are preserved,
        so the shard merges bit-identically into the unsharded sweep)."""
        if self._specs is None:
            self._specs = self.matrix.expand()
        return shard_slice(self._specs, unit.index, unit.count)

    # -- the work-queue protocol ----------------------------------------

    def claim(
        self, worker: str, now: float | None = None
    ) -> ShardUnit | None:
        """Atomically lease the next claimable unit to ``worker``.

        Claim order is pending units first (by index), then expired
        leases (stragglers are retried only once fresh work runs out).
        Returns the leased unit snapshot, or ``None`` when nothing is
        claimable — all done, all leased out to live workers, or the
        remainder exhausted its retry budget.
        """
        now = time.time() if now is None else now
        with self._lock():
            self._reload_units()
            candidates = sorted(
                (u for u in self.units
                 if u.claimable(now, self.max_attempts)),
                key=lambda u: (u.status != "pending", u.index),
            )
            if not candidates:
                return None
            unit = candidates[0]
            unit.status = "leased"
            unit.owner = worker
            unit.lease_expires = now + self.lease_seconds
            unit.attempts += 1
            unit.claimed_at = now
            # A fresh lease never inherits the previous claimant's pulse.
            unit.heartbeat_at = None
            unit.progress_done = None
            unit.progress_total = None
            self._save()
            return replace(unit)

    def heartbeat(
        self,
        unit_name: str,
        worker: str,
        done: int | None = None,
        total: int | None = None,
        now: float | None = None,
        renew: bool = True,
    ) -> bool:
        """Record live progress on a leased unit; renews the lease.

        Returns ``False`` (changing nothing) unless the unit is still
        leased *to this worker* — after an expired lease was reclaimed
        by someone else, the straggler's late heartbeat must not steal
        the unit back.  An expired-but-unreclaimed lease *is* renewed:
        the worker just proved it is alive, which is exactly the state
        renewal exists for.
        """
        now = time.time() if now is None else now
        with self._lock():
            self._reload_units()
            unit = self._unit(unit_name)
            if unit.status != "leased" or unit.owner != worker:
                return False
            unit.heartbeat_at = now
            if done is not None:
                unit.progress_done = int(done)
            if total is not None:
                unit.progress_total = int(total)
            if renew:
                unit.lease_expires = now + self.lease_seconds
            self._save()
            return True

    def stale_units(self, now: float | None = None) -> list[ShardUnit]:
        """Leased units whose lease ran out with no renewing heartbeat —
        the claimant is presumed dead and the manifest is lying about
        the lease (``dispatch status`` flags these)."""
        now = time.time() if now is None else now
        return [unit for unit in self.units if unit.lease_expired(now)]

    def reclaim_stale(self, now: float | None = None) -> list[ShardUnit]:
        """Release every expired lease back to ``pending`` in one step.

        The autopod reconciliation idiom: status must reflect reality,
        so a dead claimant's lease is removed rather than displayed
        forever.  The spent attempt stays counted (the claim consumed
        it); reclaimed units are immediately claimable again.  Returns
        snapshots of the units reclaimed.
        """
        now = time.time() if now is None else now
        with self._lock():
            self._reload_units()
            reclaimed = []
            for unit in self.units:
                if not unit.lease_expired(now):
                    continue
                unit.status = "pending"
                unit.owner = None
                unit.lease_expires = None
                unit.claimed_at = None
                unit.heartbeat_at = None
                unit.progress_done = None
                unit.progress_total = None
                reclaimed.append(replace(unit))
            if reclaimed:
                self._save()
            return reclaimed

    def complete(
        self,
        unit_name: str,
        worker: str,
        records: int,
        now: float | None = None,
    ) -> bool:
        """Mark a unit done after its shard file is safely on disk.

        Idempotent: if a racing worker (an expired-lease reclaim) got
        there first, returns ``False`` and changes nothing — both
        workers wrote byte-identical shards, so nothing is lost.
        """
        now = time.time() if now is None else now
        with self._lock():
            self._reload_units()
            unit = self._unit(unit_name)
            if unit.status == "done":
                return False
            unit.status = "done"
            unit.owner = worker
            unit.lease_expires = None
            unit.records = records
            unit.completed_at = now
            self._save()
            return True

    def release(self, unit_name: str, worker: str) -> bool:
        """Give a lease back (execution failed); the attempt still
        counts against ``max_attempts``."""
        with self._lock():
            self._reload_units()
            unit = self._unit(unit_name)
            if unit.status != "leased" or unit.owner != worker:
                return False
            unit.status = "pending"
            unit.owner = None
            unit.lease_expires = None
            unit.claimed_at = None
            unit.heartbeat_at = None
            unit.progress_done = None
            unit.progress_total = None
            self._save()
            return True

    def _unit(self, name: str) -> ShardUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise DispatchError(f"no unit named {name!r} in {self.manifest_path}")

    # -- introspection --------------------------------------------------

    @property
    def finished(self) -> bool:
        """Every unit executed to completion."""
        return all(unit.status == "done" for unit in self.units)

    def counts(self, now: float | None = None) -> dict[str, int]:
        """Unit tallies by effective state (expired leases counted as
        ``expired``, retry-capped units as ``exhausted``)."""
        now = time.time() if now is None else now
        tally = {
            "pending": 0, "leased": 0, "expired": 0,
            "done": 0, "exhausted": 0,
        }
        for unit in self.units:
            if unit.status == "done":
                tally["done"] += 1
            elif unit.abandoned(now, self.max_attempts):
                tally["exhausted"] += 1
            elif unit.lease_expired(now):
                tally["expired"] += 1
            else:
                tally[unit.status] += 1
        return tally

    def abandoned_units(self, now: float | None = None) -> list[ShardUnit]:
        """Units that will never complete (the collector surfaces these
        instead of waiting forever)."""
        now = time.time() if now is None else now
        return [
            unit for unit in self.units
            if unit.abandoned(now, self.max_attempts)
        ]

    def describe(self, now: float | None = None) -> str:
        """One status line: ``3/4 units done, 1 leased (12/16 scenarios)``."""
        tally = self.counts(now)
        done_scenarios = sum(
            u.scenarios for u in self.units if u.status == "done"
        )
        extras = ", ".join(
            f"{count} {state}"
            for state, count in tally.items()
            if state != "done" and count
        )
        line = f"{tally['done']}/{len(self.units)} units done"
        if extras:
            line += f", {extras}"
        return f"{line} ({done_scenarios}/{self.total_scenarios} scenarios)"


def plan_dispatch(
    matrix: ScenarioMatrix,
    root: str | os.PathLike[str],
    units: int,
    lease_seconds: float = 300.0,
    max_attempts: int = 3,
    now: float | None = None,
    run_id: str | None = None,
) -> DispatchPlan:
    """Partition ``matrix`` into ``units`` shard units under ``root``.

    Writes the manifest atomically and returns the live plan.  The unit
    count is clamped to the matrix size (no empty units) and an existing
    manifest is refused — a plan is immutable once claimants may have
    seen it; re-planning means a fresh directory.
    """
    if units < 1:
        raise ValueError(f"units must be >= 1, got {units}")
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if lease_seconds <= 0:
        raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
    total = len(matrix.expand())
    if total == 0:
        raise ValueError("cannot dispatch an empty scenario matrix")
    count = min(units, total)
    root_path = Path(root)
    manifest = root_path / MANIFEST_NAME
    if manifest.exists():
        raise DispatchError(
            f"{manifest} already exists; dispatch plans are immutable "
            f"(use a fresh directory)"
        )
    width = len(str(count))
    shard_units = []
    for index in range(1, count + 1):
        name = f"unit-{index:0{width}d}-of-{count}"
        scenarios = len(range(index - 1, total, count))
        shard_units.append(ShardUnit(
            name=name, index=index, count=count, scenarios=scenarios,
            shard=f"{SHARD_DIR}/{name}.jsonl",
        ))
    created_at = time.time() if now is None else now
    if run_id is None:
        # Distinct per plan, readable in a ledger: creation time plus the
        # planner's pid (two plans in the same second are different pids).
        run_id = f"run-{int(created_at)}-{os.getpid():x}"
    plan = DispatchPlan(
        root=root_path,
        matrix=matrix,
        units=shard_units,
        lease_seconds=float(lease_seconds),
        max_attempts=int(max_attempts),
        total_scenarios=total,
        created_at=created_at,
        run_id=run_id,
    )
    plan.shard_dir.mkdir(parents=True, exist_ok=True)
    plan._save()
    return plan


def run_claims(
    plan: DispatchPlan | str | os.PathLike[str],
    worker: str,
    backend: str = "serial",
    cache: "ResultCache | None" = None,
    workers: int | None = None,
    max_units: int | None = None,
    on_unit: Callable[[ShardUnit, "SweepResult"], None] | None = None,
    heartbeat_interval: float | None = None,
    telemetry: Any | None = None,
) -> list[ShardUnit]:
    """Claim-execute-complete until the queue has nothing for us.

    The worker loop of ``repro dispatch claim``: lease a unit, execute
    its slice on the chosen backend (``serial`` / ``async`` /
    ``parallel``, optionally against a shared result cache), write the
    shard JSONL atomically, mark the unit done, repeat.  A unit whose
    execution raises is released (its attempt still counted) before the
    error propagates, so a crashing worker never wedges the queue for
    longer than its lease.

    While a unit executes, the worker **heartbeats** every
    ``heartbeat_interval`` seconds (default: a quarter of the plan's
    lease; ``0`` disables): each finished scenario checks the clock and,
    when due, writes progress into the lease record via
    :meth:`DispatchPlan.heartbeat` — which also *renews* the lease, so a
    unit slower than its lease survives as long as its worker keeps
    finishing scenarios.  The heartbeat rides the backends' ordinary
    ``on_result`` callback, so all three backends report identically.

    ``telemetry`` is an optional observer
    (:class:`~repro.obs.telemetry.SweepTelemetry`): unit lifecycle and
    per-scenario cache events land in its ledger/metrics, and it is
    passed to the backends as their ``observer``.  ``None`` — the
    default — keeps the loop exactly as cheap as before.

    Returns the units this worker completed, in execution order.
    """
    from ..orchestration import parallel

    if not isinstance(plan, DispatchPlan):
        plan = DispatchPlan.load(plan)
    backends: dict[str, Callable[..., "SweepResult"]] = {
        "serial": parallel.sweep_serial,
        "async": parallel.sweep_async,
        "parallel": parallel.sweep_parallel,
    }
    try:
        sweep = backends[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r} "
            f"(known: {', '.join(sorted(backends))})"
        ) from None
    if heartbeat_interval is None:
        heartbeat_interval = plan.lease_seconds / 4.0
    kwargs: dict[str, Any] = {"cache": cache, "observer": telemetry}
    if backend == "parallel":
        if workers is not None:
            kwargs["workers"] = workers
        # One transport for the whole plan: the matrix codec is shipped
        # to each pool worker at most once, and every subsequent unit's
        # chunks reference it by digest — consecutive units reuse the
        # warm worker-side expansion instead of re-pickling specs.
        from .pool import SpecTransport

        kwargs["transport"] = SpecTransport.from_matrix(plan.matrix)
    executed: list[ShardUnit] = []
    while max_units is None or len(executed) < max_units:
        unit = plan.claim(worker)
        if unit is None:
            break
        if telemetry is not None:
            telemetry.unit_claimed(unit)
        kwargs["on_result"] = _heartbeat_on_result(
            plan, unit, worker, heartbeat_interval, telemetry
        )
        try:
            result = sweep(plan.specs_for(unit), **kwargs)
            # write_jsonl reuses the workers' pre-encoded record lines
            # (byte-identical to write_shard, without re-encoding).
            result.write_jsonl(plan.shard_path(unit))
        except BaseException as exc:
            plan.release(unit.name, worker)
            if telemetry is not None:
                telemetry.unit_released(
                    unit, f"{type(exc).__name__}: {exc}"
                )
            raise
        plan.complete(unit.name, worker, records=len(result.outcomes))
        if telemetry is not None:
            telemetry.unit_completed(unit, records=len(result.outcomes))
        executed.append(unit)
        if on_unit is not None:
            on_unit(unit, result)
    return executed


def _heartbeat_on_result(
    plan: DispatchPlan,
    unit: ShardUnit,
    worker: str,
    interval: float,
    telemetry: Any | None,
) -> Callable[[Any], None] | None:
    """The per-scenario callback that paces one unit's heartbeats.

    Clock checks use the monotonic clock (wall-clock steps must not
    suppress or burst-fire renewals); the manifest stamps stay wall
    clock, as every lease field does.  With a zero/negative interval
    and no telemetry there is nothing to do — return ``None`` so the
    backends skip the callback entirely.
    """
    if interval <= 0 and telemetry is None:
        return None
    state = {"done": 0, "last": time.monotonic()}

    def on_result(outcome: Any) -> None:
        state["done"] += 1
        if interval <= 0:
            return
        now = time.monotonic()
        if now - state["last"] < interval:
            return
        state["last"] = now
        renewed = plan.heartbeat(
            unit.name, worker,
            done=state["done"], total=unit.scenarios,
        )
        if telemetry is not None:
            telemetry.unit_renewed(unit, state["done"], renewed)

    return on_result
