"""Reusable per-worker execution context for the scenario fast path.

A sweep dispatches thousands of :class:`~repro.orchestration.matrix.ScenarioSpec`
cells into worker processes, and each cell used to rebuild *everything*
from scratch: topology objects, adversary specs, proposal profiles, hook
lists and counters.  Most of that is pure, spec-keyed data — identical
across the cells of one grid — so rebuilding it per scenario is wasted
allocation on the hottest orchestration path.

:class:`KernelContext` is the per-worker home for that reusable state:

* **topology cache** — ``(kind, n) -> Topology``; timing models are
  stateless (all per-run state lives in the lazily materialized
  channels), so one instance safely serves every run in the process;
* **adversary cache** — ``name -> AdversarySpec``; specs are read-only
  descriptions, shared freely;
* a **shared instrumentation bus** created once and re-armed per run,
  so sweeps do not churn probe/bus objects per scenario.

Per-run state (simulator, network, processes, protocol stacks) is still
built fresh for every scenario — determinism demands it — but the
context trims the per-scenario overhead to exactly that.

:func:`default_context` returns the process-local context that
:func:`~repro.orchestration.matrix.run_scenario` (and therefore every
sweep backend and pool worker) uses implicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..instrumentation import InstrumentationBus
from ..sim.pool import ObjectPools

if TYPE_CHECKING:  # pragma: no cover
    from ..adversary.strategies import AdversarySpec
    from ..net.topology import Topology
    from ..profiling import SweepProfiler

__all__ = ["KernelContext", "default_context"]


class KernelContext:
    """Process-local reusable state for executing scenario specs."""

    def __init__(self) -> None:
        self._topologies: dict[tuple[str, int], "Topology | None"] = {}
        self._adversaries: dict[str, "AdversarySpec | None"] = {}
        #: Shared bus for runs executed through this context.  Cleared
        #: (all sinks detached) before each run, so one scenario's
        #: observers can never leak into the next.
        self.bus = InstrumentationBus()
        #: Shared object freelists / intern tables
        #: (:class:`~repro.sim.pool.ObjectPools`).  Handles and messages
        #: retired by one scenario are re-stamped by the next, so a warm
        #: worker stops allocating kernel objects almost entirely.
        self.pools = ObjectPools()
        #: Scenarios executed through this context (introspection).
        self.runs = 0
        #: Active :class:`~repro.profiling.SweepProfiler`, or ``None``.
        #: Set by the sweep backends for the duration of one profiled
        #: sweep; :meth:`fresh_bus` re-arms its ``sim.step`` sink after
        #: each per-run ``bus.clear()``.  The unprofiled fast path pays
        #: one ``is None`` test per run.
        self.profiler: "SweepProfiler | None" = None
        #: Active :class:`~repro.obs.metrics.MetricsRegistry`, or
        #: ``None``.  Same lifecycle as :attr:`profiler`: the sweep
        #: backends install it for one observed sweep, and
        #: :meth:`fresh_bus` re-arms its kernel counting sinks per run.
        #: Unobserved runs pay one ``is None`` test here and keep every
        #: probe's ``emit`` at ``None``.
        self.metrics: Any | None = None
        #: Warm-cache accounting: how often a lookup was served from the
        #: context instead of rebuilt.  The pooled backend round-trips
        #: these (:meth:`stats`) to prove worker reuse across sweeps and
        #: dispatch units.
        self.topology_hits = 0
        self.topology_misses = 0
        self.adversary_hits = 0
        self.adversary_misses = 0

    def topology(self, kind: str, n: int) -> "Topology | None":
        """The (cached) topology instance for ``kind`` at size ``n``.

        ``None`` stands for the runner's minimal single-bisource default,
        which depends on the correct-process set and is built per run.
        Cached instances are safe to share: timing models are stateless
        maps from send time to delivery time.
        """
        key = (kind, n)
        try:
            cached = self._topologies[key]
        except KeyError:
            from .axes import topology_from_name

            cached = self._topologies[key] = topology_from_name(kind, n)
            self.topology_misses += 1
        else:
            self.topology_hits += 1
        return cached

    def adversary(self, name: str) -> "AdversarySpec | None":
        """The (cached) adversary spec for ``"kind"`` / ``"kind:arg"``."""
        try:
            cached = self._adversaries[name]
        except KeyError:
            from .axes import adversary_from_name

            cached = self._adversaries[name] = adversary_from_name(name)
            self.adversary_misses += 1
        else:
            self.adversary_hits += 1
        return cached

    def stats(self) -> dict[str, int]:
        """Warm-reuse counters as one JSON-friendly dict."""
        return {
            "runs": self.runs,
            "topologies": len(self._topologies),
            "adversaries": len(self._adversaries),
            "topology_hits": self.topology_hits,
            "topology_misses": self.topology_misses,
            "adversary_hits": self.adversary_hits,
            "adversary_misses": self.adversary_misses,
            **self.pools.counters(),
        }

    def fresh_bus(self) -> InstrumentationBus:
        """The shared bus, re-armed (every sink detached) for a new run."""
        self.bus.clear()
        self.runs += 1
        if self.profiler is not None:
            self.profiler.arm(self.bus)
        if self.metrics is not None:
            self.metrics.arm(self.bus)
        return self.bus

    def clear(self) -> None:
        """Drop every cached object (tests; registry mutations)."""
        self._topologies.clear()
        self._adversaries.clear()
        self.bus.clear()
        self.pools.clear()
        self.topology_hits = self.topology_misses = 0
        self.adversary_hits = self.adversary_misses = 0

    def __repr__(self) -> str:
        return (
            f"KernelContext(runs={self.runs}, "
            f"topologies={len(self._topologies)}, "
            f"adversaries={len(self._adversaries)})"
        )


#: The process-local context (one per worker; workers are processes).
_DEFAULT: KernelContext | None = None


def default_context() -> KernelContext:
    """The process-local :class:`KernelContext`, created on first use."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = KernelContext()
    return _DEFAULT
