"""Declarative scenario matrices for batch consensus experiments.

A :class:`ScenarioMatrix` describes a grid over system sizes, synchrony
topologies, adversary strategies, value diversity and seeds, and expands
it into a list of :class:`ScenarioSpec` cells.  Specs are deliberately
*light*: plain picklable data (ints and strings, no live objects), so a
spec can cross a process boundary and be reconstructed into a full
:class:`~repro.orchestration.config.RunConfig` on the worker side via
:func:`build_config`.  :func:`run_scenario` executes one spec and boils
the heavyweight :class:`~repro.orchestration.runner.ConsensusRunResult`
down to a picklable :class:`ScenarioOutcome`.

Expansion applies the paper's m-valued feasibility condition
(``n - t > m*t``, see :mod:`repro.analysis.feasibility`): requested value
diversity is clamped to ``max_values(n, t)`` for the standard variant
(the ⊥ variant tolerates any diversity), and (n, t) pairs violating the
resilience bound or a ``k > t`` knob are filtered out.

Seed derivation is deterministic and *structural*: every scenario's
master seed is derived from the matrix ``base_seed`` plus the cell key
and the seed index, so the same cell gets the same seed no matter how
the surrounding grid is shaped, and serial and parallel execution are
bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Sequence

from ..adversary import strategies
from ..adversary.strategies import AdversarySpec
from ..analysis.feasibility import max_values
from ..net.topology import Topology, fully_asynchronous, fully_timely
from ..sim.random import derive_seed
from .config import RunConfig
from .runner import ConsensusRunResult, run_consensus

__all__ = [
    "TOPOLOGY_KINDS",
    "ADVERSARY_KINDS",
    "adversary_from_name",
    "topology_from_name",
    "ScenarioSpec",
    "ScenarioOutcome",
    "ScenarioMatrix",
    "build_config",
    "outcome_from_record",
    "run_scenario",
]

#: Topology grid vocabulary (aliases accepted by :func:`normalize_topology`).
TOPOLOGY_KINDS = ("single_bisource", "fully_timely", "fully_asynchronous")

_TOPOLOGY_ALIASES = {
    "minimal": "single_bisource",
    "bisource": "single_bisource",
    "single_bisource": "single_bisource",
    "timely": "fully_timely",
    "fully_timely": "fully_timely",
    "async": "fully_asynchronous",
    "asynchronous": "fully_asynchronous",
    "fully_asynchronous": "fully_asynchronous",
}

#: ``kind -> (arg string -> AdversarySpec)``; the CLI shares this registry.
ADVERSARY_KINDS: dict[str, Callable[[str], AdversarySpec]] = {
    "crash": lambda arg: strategies.crash(),
    "noise": lambda arg: strategies.noise(float(arg) if arg else 0.5),
    "two_faced": lambda arg: strategies.two_faced(arg or "evil"),
    "flip_flop": lambda arg: strategies.flip_flop(
        arg.split("|") if arg else None
    ),
    "mute_coord": lambda arg: strategies.mute_coordinator(),
    "collude": lambda arg: strategies.collude(arg or "evil"),
    "spam_decide": lambda arg: strategies.spam_decide(arg or "evil"),
    "bot_relays": lambda arg: strategies.bot_relays(int(arg) if arg else 500),
    "crash_at": lambda arg: strategies.crash_at(float(arg) if arg else 25.0),
}


def adversary_from_name(name: str) -> AdversarySpec | None:
    """Build an :class:`AdversarySpec` from ``"kind"`` or ``"kind:arg"``.

    ``"none"`` (or the empty string) yields ``None`` — no adversary.
    """
    if name in ("", "none"):
        return None
    kind, _, arg = name.partition(":")
    if kind not in ADVERSARY_KINDS:
        raise ValueError(
            f"unknown adversary kind {kind!r} "
            f"(known: {', '.join(sorted(ADVERSARY_KINDS))}, none)"
        )
    return ADVERSARY_KINDS[kind](arg)


def normalize_topology(name: str) -> str:
    """Canonicalise a topology name (accepting CLI-style aliases)."""
    try:
        return _TOPOLOGY_ALIASES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r} (known: "
            f"{', '.join(sorted(set(_TOPOLOGY_ALIASES)))})"
        ) from None


def topology_from_name(kind: str, n: int) -> Topology | None:
    """Instantiate the named topology (``None`` = the runner's minimal
    single-bisource default, which depends on the correct set)."""
    kind = normalize_topology(kind)
    if kind == "single_bisource":
        return None
    if kind == "fully_timely":
        return fully_timely(n)
    return fully_asynchronous(n)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully determined scenario: picklable data, no live objects.

    ``seed`` is the run's master seed (already derived); ``seed_index``
    records which ensemble slot it came from.  ``index`` is the spec's
    position in its matrix expansion, used to keep parallel results in
    deterministic order.
    """

    n: int
    t: int
    topology: str
    adversary: str
    num_values: int
    seed: int
    seed_index: int = 0
    #: Explicit proposal values (first ``num_values`` are used);
    #: ``None`` generates the generic ``v0..v(num_values-1)``.
    values: tuple[str, ...] | None = None
    faults: int | None = None
    variant: str = "standard"
    k: int = 0
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000
    index: int = 0

    @property
    def cell(self) -> tuple[Any, ...]:
        """The grid cell this scenario belongs to (everything but seed)."""
        return (
            self.n, self.t, self.topology, self.adversary, self.num_values,
            self.values, self.faults, self.variant, self.k,
        )

    @property
    def cell_id(self) -> str:
        """Human-readable cell label, stable across runs."""
        faults = self.t if self.faults is None else self.faults
        parts = [
            f"n{self.n}", f"t{self.t}", self.topology, self.adversary,
            f"m{self.num_values}", f"f{faults}",
        ]
        if self.variant != "standard":
            parts.append(self.variant)
        if self.k:
            parts.append(f"k{self.k}")
        return "/".join(parts)

    def with_seed(self, seed: int, seed_index: int = 0) -> "ScenarioSpec":
        """A copy of this spec with a different master seed."""
        return replace(self, seed=seed, seed_index=seed_index)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready representation (JSONL persistence)."""
        return {
            "n": self.n, "t": self.t, "topology": self.topology,
            "adversary": self.adversary, "num_values": self.num_values,
            "values": list(self.values) if self.values is not None else None,
            "seed": self.seed, "seed_index": self.seed_index,
            "faults": self.faults, "variant": self.variant, "k": self.k,
            "max_time": self.max_time, "max_events": self.max_events,
            "cell_id": self.cell_id, "index": self.index,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (extra keys, e.g. outcome fields in
        a flat JSONL record, are ignored)."""
        values = data.get("values")
        faults = data.get("faults")
        return cls(
            n=int(data["n"]),
            t=int(data["t"]),
            topology=str(data["topology"]),
            adversary=str(data["adversary"]),
            num_values=int(data["num_values"]),
            seed=int(data["seed"]),
            seed_index=int(data.get("seed_index", 0)),
            values=tuple(values) if values is not None else None,
            faults=None if faults is None else int(faults),
            variant=str(data.get("variant", "standard")),
            k=int(data.get("k", 0)),
            max_time=float(data.get("max_time", 1_000_000.0)),
            max_events=int(data.get("max_events", 20_000_000)),
            index=int(data.get("index", 0)),
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """Picklable digest of one executed scenario.

    Values are rendered with ``repr`` (⊥ included) so outcomes survive a
    process boundary and a JSONL round-trip without the value objects.
    """

    spec: ScenarioSpec
    decided: bool
    decisions: dict[int, str]
    decided_value: str | None
    rounds: dict[int, int]
    max_round: int
    messages_sent: int
    events_processed: int
    finished_at: float
    timed_out: bool
    invariants_ok: bool
    violations: tuple[str, ...] = ()
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        """One flat JSONL record (scenario fields inlined)."""
        record = self.spec.to_dict()
        record.update({
            "decided": self.decided,
            "decisions": {str(pid): v for pid, v in self.decisions.items()},
            "decided_value": self.decided_value,
            "rounds": {str(pid): r for pid, r in self.rounds.items()},
            "max_round": self.max_round,
            "messages_sent": self.messages_sent,
            "events_processed": self.events_processed,
            "finished_at": self.finished_at,
            "timed_out": self.timed_out,
            "invariants_ok": self.invariants_ok,
            "violations": list(self.violations),
            "error": self.error,
        })
        return record


def outcome_from_record(
    record: dict[str, Any], spec: ScenarioSpec | None = None
) -> ScenarioOutcome:
    """Inverse of :meth:`ScenarioOutcome.to_record`.

    Passing ``spec`` reattaches a live spec instead of reconstructing one
    from the record — the result store uses this so a cache hit returns
    an outcome carrying the *caller's* spec (same matrix index and all),
    which keeps resumed sweeps bit-identical to fresh ones.
    """
    if spec is None:
        spec = ScenarioSpec.from_dict(record)
    return ScenarioOutcome(
        spec=spec,
        decided=bool(record["decided"]),
        decisions={int(pid): v for pid, v in record["decisions"].items()},
        decided_value=record["decided_value"],
        rounds={int(pid): int(r) for pid, r in record["rounds"].items()},
        max_round=int(record["max_round"]),
        messages_sent=int(record["messages_sent"]),
        events_processed=int(record["events_processed"]),
        finished_at=float(record["finished_at"]),
        timed_out=bool(record["timed_out"]),
        invariants_ok=bool(record["invariants_ok"]),
        violations=tuple(record.get("violations", ())),
        error=record.get("error"),
    )


@dataclass
class ScenarioMatrix:
    """A declarative grid of consensus scenarios.

    Attributes:
        sizes: ``(n, t)`` pairs; pairs violating ``n > 3t`` are dropped.
        topologies: Topology names (``single_bisource`` / ``fully_timely``
            / ``fully_asynchronous``, CLI aliases accepted).
        adversaries: Adversary names (``"kind"`` / ``"kind:arg"`` /
            ``"none"``).
        value_counts: Requested distinct-proposal counts; clamped to the
            feasibility bound ``max_values(n, t)`` for the standard
            variant (duplicate cells after clamping are dropped).
        value_pool: Explicit proposal values; each cell uses the first
            ``m`` of them (``None``: generic ``v0..v(m-1)``).
        seeds: Seed *indices*; each scenario's master seed is derived
            from ``base_seed``, the cell key and the index.
        faults: Byzantine process count (``None``: ``t``).
        variant: ``"standard"`` or ``"bot"``.
        k: Section 5.4 knob; cells with ``k > t`` are dropped.
        base_seed: Root of the deterministic seed derivation.
        max_time / max_events: Per-run budgets.
    """

    sizes: Sequence[tuple[int, int]] = ((4, 1),)
    topologies: Sequence[str] = ("single_bisource",)
    adversaries: Sequence[str] = ("crash",)
    value_counts: Sequence[int] = (2,)
    value_pool: Sequence[str] | None = None
    seeds: Sequence[int] = (0,)
    faults: int | None = None
    variant: str = "standard"
    k: int = 0
    base_seed: int = 0
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000

    def cells(self) -> list[tuple[int, int, str, str, int]]:
        """The feasible (n, t, topology, adversary, m) grid cells."""
        out: list[tuple[int, int, str, str, int]] = []
        seen: set[tuple[int, int, str, str, int]] = set()
        for n, t in self.sizes:
            if not n > 3 * t or self.k > t:
                continue
            faults = t if self.faults is None else self.faults
            if faults > t or faults >= n:
                continue
            for topology in self.topologies:
                topo = normalize_topology(topology)
                for adversary in self.adversaries:
                    adversary_from_name(adversary)  # validate early
                    for requested in self.value_counts:
                        m = requested
                        if self.variant == "standard":
                            m = max(1, min(requested, max_values(n, t)))
                        m = max(1, min(m, n - faults))
                        if self.value_pool is not None:
                            m = max(1, min(m, len(self.value_pool)))
                        cell = (n, t, topo, adversary, m)
                        if cell in seen:
                            continue
                        seen.add(cell)
                        out.append(cell)
        return out

    def expand(self) -> list[ScenarioSpec]:
        """All scenarios: feasible cells × seed indices, in grid order."""
        specs: list[ScenarioSpec] = []
        values = tuple(self.value_pool) if self.value_pool is not None else None
        for n, t, topology, adversary, m in self.cells():
            cell_values = values[:m] if values is not None else None
            for seed_index in self.seeds:
                key = (n, t, topology, adversary, m, cell_values,
                       self.faults, self.variant, self.k)
                specs.append(ScenarioSpec(
                    n=n, t=t, topology=topology, adversary=adversary,
                    num_values=m, values=cell_values,
                    seed=derive_seed(self.base_seed, "scenario", key, seed_index),
                    seed_index=seed_index,
                    faults=self.faults, variant=self.variant, k=self.k,
                    max_time=self.max_time, max_events=self.max_events,
                    index=len(specs),
                ))
        return specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.expand())

    def __len__(self) -> int:
        return len(self.cells()) * len(self.seeds)


def build_config(spec: ScenarioSpec) -> RunConfig:
    """Reconstruct the full :class:`RunConfig` for one spec (worker side)."""
    from .sweeps import standard_proposals

    faults = spec.t if spec.faults is None else spec.faults
    adversary = adversary_from_name(spec.adversary)
    adversaries: dict[int, AdversarySpec] = {}
    if adversary is not None and faults > 0:
        adversaries = {
            pid: adversary for pid in range(spec.n - faults + 1, spec.n + 1)
        }
    correct = [pid for pid in range(1, spec.n + 1) if pid not in adversaries]
    if spec.values is not None:
        values = list(spec.values[: spec.num_values])
    else:
        values = [f"v{i}" for i in range(spec.num_values)]
    return RunConfig(
        n=spec.n,
        t=spec.t,
        proposals=standard_proposals(correct, values),
        adversaries=adversaries,
        topology=topology_from_name(spec.topology, spec.n),
        variant=spec.variant,
        k=spec.k,
        seed=spec.seed,
        max_time=spec.max_time,
        max_events=spec.max_events,
    )


def summarize_run(spec: ScenarioSpec, result: ConsensusRunResult) -> ScenarioOutcome:
    """Boil a live run result down to its picklable outcome."""
    decisions = {pid: repr(v) for pid, v in sorted(result.decisions.items())}
    decided_value = None
    if result.decisions:
        distinct = sorted(set(decisions.values()))
        decided_value = distinct[0] if len(distinct) == 1 else None
    return ScenarioOutcome(
        spec=spec,
        decided=result.all_decided,
        decisions=decisions,
        decided_value=decided_value,
        rounds=dict(sorted(result.rounds.items())),
        max_round=result.max_round,
        messages_sent=result.messages_sent,
        events_processed=result.events_processed,
        finished_at=result.finished_at,
        timed_out=result.timed_out,
        invariants_ok=result.invariants.ok,
        violations=tuple(str(v) for v in result.invariants.violations),
    )


def run_scenario(spec: ScenarioSpec, check_invariants: bool = False) -> ScenarioOutcome:
    """Execute one scenario end to end.

    With ``check_invariants`` false (the sweep default) safety violations
    are *recorded* on the outcome rather than raised, so one bad cell
    cannot abort a thousand-scenario sweep.  Configuration errors are
    likewise captured as ``error`` outcomes.
    """
    try:
        result = run_consensus(build_config(spec), check_invariants=check_invariants)
    except Exception as exc:
        if check_invariants:
            raise
        return ScenarioOutcome(
            spec=spec, decided=False, decisions={}, decided_value=None,
            rounds={}, max_round=0, messages_sent=0, events_processed=0,
            finished_at=0.0, timed_out=False, invariants_ok=False,
            violations=(), error=f"{type(exc).__name__}: {exc}",
        )
    return summarize_run(spec, result)
