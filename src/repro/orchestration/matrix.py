"""Declarative scenario matrices for batch consensus experiments.

A :class:`ScenarioMatrix` describes a grid over scenario axes and
expands it into a list of :class:`ScenarioSpec` cells.  The *vocabulary*
of axes lives in :mod:`repro.orchestration.axes`: every sweepable knob
(system size, topology, adversary, value diversity, per-cell fault
count and placement, proposal profile, the Section 5.4 ``k`` knob,
timing budgets, plus any user-registered axis) is an
:class:`~repro.orchestration.axes.Axis` with its own parser, validator,
feasibility hook and canonical codec.  The matrix takes the cross
product of whatever axes are present — the classic field-based
constructor still works, and the open ``axes={"k": [0, 1], ...}``
mapping grids over anything registered.

Specs are deliberately *light*: plain picklable data (ints and strings,
no live objects), so a spec can cross a process boundary and be
reconstructed into a full :class:`~repro.orchestration.config.RunConfig`
on the worker side via :func:`build_config`.  :func:`run_scenario`
executes one spec and boils the heavyweight
:class:`~repro.orchestration.runner.ConsensusRunResult` down to a
picklable :class:`ScenarioOutcome`.

Expansion applies the paper's feasibility conditions through the axis
hooks (:mod:`repro.analysis.feasibility`): requested value diversity is
clamped to ``max_values(n, t)`` for the standard variant (the ⊥ variant
tolerates any diversity), and cells violating the resilience bound, the
``k <= t`` knob bound or the fault-count bounds are filtered out.

Seed derivation is deterministic and *structural*: every scenario's
master seed is derived from the matrix ``base_seed`` plus the cell key
and the seed index, so the same cell gets the same seed no matter how
the surrounding grid is shaped, and serial and parallel execution are
bit-identical by construction.  Cells using only pre-registry axes keep
their historical seeds, serialized records and cache digests exactly
(see the schema-versioning notes in :mod:`repro.orchestration.axes`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from itertools import product
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from ..adversary import strategies
from ..adversary.strategies import AdversarySpec
from ..profiling import PHASE_BUILD_CONFIG, PHASE_REPORT, PHASE_SIMULATE
from ..sim.random import derive_seed
from . import axes as axes_mod
from .axes import (
    ADVERSARY_KINDS,
    AXES,
    SCHEMA_VERSION,
    TOPOLOGY_KINDS,
    adversary_from_name,
    normalize_topology,
    topology_from_name,
)
from .config import RunConfig
from .runner import ConsensusRunResult, run_consensus

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import KernelContext

__all__ = [
    "TOPOLOGY_KINDS",
    "ADVERSARY_KINDS",
    "adversary_from_name",
    "normalize_topology",
    "topology_from_name",
    "ScenarioSpec",
    "ScenarioOutcome",
    "ScenarioMatrix",
    "build_config",
    "outcome_from_record",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully determined scenario: picklable data, no live objects.

    ``seed`` is the run's master seed (already derived); ``seed_index``
    records which ensemble slot it came from.  ``index`` is the spec's
    position in its matrix expansion, used to keep parallel results in
    deterministic order.  ``extras`` carries the values of any
    user-registered (non-built-in) axes as sorted ``(name, value)``
    pairs, so custom dimensions survive pickling, JSONL and the cache
    without new dataclass fields.
    """

    n: int
    t: int
    topology: str
    adversary: str
    num_values: int
    seed: int
    seed_index: int = 0
    #: Explicit proposal values (first ``num_values`` are used);
    #: ``None`` generates the generic ``v0..v(num_values-1)``.
    values: tuple[str, ...] | None = None
    faults: int | None = None
    variant: str = "standard"
    k: int = 0
    placement: str = "tail"
    proposals: str = "round_robin"
    extras: tuple[tuple[str, Any], ...] = ()
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000
    index: int = 0

    @property
    def cell(self) -> tuple[Any, ...]:
        """The grid cell this scenario belongs to (everything but seed)."""
        return (
            self.n, self.t, self.topology, self.adversary, self.num_values,
            self.values, self.faults, self.variant, self.k,
            self.placement, self.proposals, self.extras,
        )

    @cached_property
    def cell_id(self) -> str:
        """Human-readable cell label, stable across runs.

        Legacy axes keep their historical fragments; non-legacy axes
        (placement, proposal profile, custom extras) contribute a
        fragment only at non-default values, so pre-registry cells keep
        their pre-registry ids.

        Cached per instance (``cached_property`` writes straight into
        ``__dict__``, bypassing the frozen ``__setattr__``): the label
        is pure spec data, and :meth:`to_dict` embeds it in every cache
        key, JSONL record and report row.
        """
        faults = self.t if self.faults is None else self.faults
        parts = [
            f"n{self.n}", f"t{self.t}", self.topology, self.adversary,
            f"m{self.num_values}", f"f{faults}",
        ]
        if self.variant != "standard":
            parts.append(self.variant)
        if self.k:
            parts.append(f"k{self.k}")
        parts.extend(axes_mod.spec_extra_labels(self))
        return "/".join(parts)

    def with_seed(self, seed: int, seed_index: int = 0) -> "ScenarioSpec":
        """A copy of this spec with a different master seed."""
        return replace(self, seed=seed, seed_index=seed_index)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready representation (JSONL persistence).

        Schema-versioned: the legacy (schema-1) fields are always
        present; non-legacy axes appear only at non-default values,
        together with a ``"schema"`` marker — so a spec that uses no
        new axis serializes byte-for-byte like pre-registry code did,
        and its cache digest is unchanged.
        """
        data = {
            "n": self.n, "t": self.t, "topology": self.topology,
            "adversary": self.adversary, "num_values": self.num_values,
            "values": list(self.values) if self.values is not None else None,
            "seed": self.seed, "seed_index": self.seed_index,
            "faults": self.faults, "variant": self.variant, "k": self.k,
            "max_time": self.max_time, "max_events": self.max_events,
            "cell_id": self.cell_id, "index": self.index,
        }
        extra = axes_mod.spec_schema2_fields(self)
        if extra:
            data["schema"] = SCHEMA_VERSION
            data.update(extra)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (extra keys, e.g. outcome fields in
        a flat JSONL record, are ignored).

        This is also the migration shim: schema-1 (pre-registry) records
        carry no ``schema`` key and no non-legacy fields, which decode
        to the axes' defaults — the exact spec the old code built.
        Records from a *newer* schema than this code raise ``ValueError``
        rather than silently dropping dimensions, and ``extras`` entries
        of axes this process never registered are preserved verbatim for
        the same reason (they are part of the scenario's identity).
        """
        schema = int(data.get("schema", 1))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"record schema {schema} is newer than supported "
                f"schema {SCHEMA_VERSION}"
            )
        values = data.get("values")
        faults = data.get("faults")
        extras = axes_mod.decode_extras(data.get("extras") or {})
        kwargs: dict[str, Any] = {}
        for axis in AXES:
            if axis.legacy or not axis.fields or axis.name not in data:
                continue
            kwargs[axis.fields[0]] = axis.canonical(axis.decode(data[axis.name]))
        return cls(
            n=int(data["n"]),
            t=int(data["t"]),
            topology=str(data["topology"]),
            adversary=str(data["adversary"]),
            num_values=int(data["num_values"]),
            seed=int(data["seed"]),
            seed_index=int(data.get("seed_index", 0)),
            values=tuple(values) if values is not None else None,
            faults=None if faults is None else int(faults),
            variant=str(data.get("variant", "standard")),
            k=int(data.get("k", 0)),
            extras=axes_mod.canonical_extras(extras),
            max_time=float(data.get("max_time", 1_000_000.0)),
            max_events=int(data.get("max_events", 20_000_000)),
            index=int(data.get("index", 0)),
            **kwargs,
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """Picklable digest of one executed scenario.

    Values are rendered with ``repr`` (⊥ included) so outcomes survive a
    process boundary and a JSONL round-trip without the value objects.
    """

    spec: ScenarioSpec
    decided: bool
    decisions: dict[int, str]
    decided_value: str | None
    rounds: dict[int, int]
    max_round: int
    messages_sent: int
    events_processed: int
    finished_at: float
    timed_out: bool
    invariants_ok: bool
    violations: tuple[str, ...] = ()
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        """One flat JSONL record (scenario fields inlined)."""
        record = self.spec.to_dict()
        record.update({
            "decided": self.decided,
            "decisions": {str(pid): v for pid, v in self.decisions.items()},
            "decided_value": self.decided_value,
            "rounds": {str(pid): r for pid, r in self.rounds.items()},
            "max_round": self.max_round,
            "messages_sent": self.messages_sent,
            "events_processed": self.events_processed,
            "finished_at": self.finished_at,
            "timed_out": self.timed_out,
            "invariants_ok": self.invariants_ok,
            "violations": list(self.violations),
            "error": self.error,
        })
        return record


def outcome_from_record(
    record: dict[str, Any], spec: ScenarioSpec | None = None
) -> ScenarioOutcome:
    """Inverse of :meth:`ScenarioOutcome.to_record`.

    Passing ``spec`` reattaches a live spec instead of reconstructing one
    from the record — the result store uses this so a cache hit returns
    an outcome carrying the *caller's* spec (same matrix index and all),
    which keeps resumed sweeps bit-identical to fresh ones.
    """
    if spec is None:
        spec = ScenarioSpec.from_dict(record)
    return ScenarioOutcome(
        spec=spec,
        decided=bool(record["decided"]),
        decisions={int(pid): v for pid, v in record["decisions"].items()},
        decided_value=record["decided_value"],
        rounds={int(pid): int(r) for pid, r in record["rounds"].items()},
        max_round=int(record["max_round"]),
        messages_sent=int(record["messages_sent"]),
        events_processed=int(record["events_processed"]),
        finished_at=float(record["finished_at"]),
        timed_out=bool(record["timed_out"]),
        invariants_ok=bool(record["invariants_ok"]),
        violations=tuple(record.get("violations", ())),
        error=record.get("error"),
    )


@dataclass
class ScenarioMatrix:
    """A declarative grid of consensus scenarios.

    The classic field-based surface (``sizes`` / ``topologies`` /
    ``adversaries`` / ``value_counts`` plus scalar knobs) is unchanged;
    the ``axes`` mapping grids over *any* registered axis by name —
    including the scalar knobs (``axes={"k": [0, 1, 2]}`` overrides
    ``k``) and user-registered custom axes.

    Attributes:
        sizes: ``(n, t)`` pairs; pairs violating ``n > 3t`` are dropped.
        topologies: Topology names (``single_bisource`` / ``fully_timely``
            / ``fully_asynchronous``, CLI aliases accepted).
        adversaries: Adversary names (``"kind"`` / ``"kind:arg"`` /
            ``"none"``).
        value_counts: Requested distinct-proposal counts; clamped to the
            feasibility bound ``max_values(n, t)`` for the standard
            variant (duplicate cells after clamping are dropped).
        value_pool: Explicit proposal values; each cell uses the first
            ``m`` of them (``None``: generic ``v0..v(m-1)``).
        seeds: Seed *indices*; each scenario's master seed is derived
            from ``base_seed``, the cell key and the index.
        faults: Byzantine process count (``None``: ``t``).
        variant: ``"standard"`` or ``"bot"``.
        k: Section 5.4 knob; cells with ``k > t`` are dropped.
        placement: Fault placement (``tail`` / ``head`` / ``spread``).
        proposals: Proposal profile (``round_robin`` / ``block`` /
            ``skewed`` / ``unanimous``).
        base_seed: Root of the deterministic seed derivation.
        max_time / max_events: Per-run budgets.
        axes: ``axis name -> values`` grid entries; overrides the
            field-based value list for that axis (aliases accepted).
    """

    sizes: Sequence[tuple[int, int]] = ((4, 1),)
    topologies: Sequence[str] = ("single_bisource",)
    adversaries: Sequence[str] = ("crash",)
    value_counts: Sequence[int] = (2,)
    value_pool: Sequence[str] | None = None
    seeds: Sequence[int] = (0,)
    faults: int | None = None
    variant: str = "standard"
    k: int = 0
    placement: str = "tail"
    proposals: str = "round_robin"
    base_seed: int = 0
    max_time: float = 1_000_000.0
    max_events: int = 20_000_000
    axes: Mapping[str, Sequence[Any]] | None = None

    def _axis_values(self) -> list[tuple[axes_mod.Axis, list[Any]]]:
        """Per-axis value lists in registry order, canonicalised.

        Field-based values seed the built-in axes; ``axes`` entries
        override by name (or alias); every other registered axis
        contributes its single default value.
        """
        base: dict[str, list[Any]] = {
            "size": list(self.sizes),
            "topology": list(self.topologies),
            "adversary": list(self.adversaries),
            "num_values": list(self.value_counts),
            "faults": [self.faults],
            "variant": [self.variant],
            "k": [self.k],
            "placement": [self.placement],
            "proposals": [self.proposals],
            "max_time": [self.max_time],
            "max_events": [self.max_events],
        }
        for name, values in (self.axes or {}).items():
            axis = AXES.resolve(name)
            base[axis.name] = list(values)
        return [
            (axis, [axis.canonical(v) for v in base.get(axis.name, [axis.default])])
            for axis in AXES
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready description of the whole grid (dispatch manifests).

        Every registered axis contributes its canonical value list
        through its own codec, so any knob — built-in or custom —
        survives the round-trip; :meth:`from_dict` rebuilds the matrix
        through the ``axes`` mapping and expands to the exact same
        specs (same seeds, same indices) on any machine with the same
        axes registered.
        """
        return {
            "axes": {
                axis.name: [axis.encode(value) for value in values]
                for axis, values in self._axis_values()
            },
            "seeds": [int(s) for s in self.seeds],
            "base_seed": int(self.base_seed),
            "value_pool": (
                list(self.value_pool) if self.value_pool is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioMatrix":
        """Inverse of :meth:`to_dict`.

        Unknown axis names fail loudly (``ValueError``): a manifest
        gridding an axis this process never registered must not execute
        under a silently different identity.
        """
        axes: dict[str, list[Any]] = {}
        for name, values in dict(data.get("axes") or {}).items():
            axis = AXES.resolve(name)
            axes[axis.name] = [
                axis.canonical(axis.decode(value)) for value in values
            ]
        pool = data.get("value_pool")
        return cls(
            seeds=[int(s) for s in data.get("seeds", (0,))],
            base_seed=int(data.get("base_seed", 0)),
            value_pool=list(pool) if pool is not None else None,
            axes=axes,
        )

    def cell_dicts(self) -> list[dict[str, Any]]:
        """The feasible grid cells as full axis-field mappings.

        The cross product runs in registry order (legacy axes first, so
        purely legacy grids expand in the historical order), feasibility
        ``check`` hooks drop infeasible cells, ``clamp`` hooks adjust
        them, and cells that coincide after clamping are deduplicated.
        """
        per_axis = self._axis_values()
        pool = tuple(self.value_pool) if self.value_pool is not None else None
        out: list[dict[str, Any]] = []
        seen: set[tuple[Any, ...]] = set()
        for combo in product(*(values for _, values in per_axis)):
            cell: dict[str, Any] = {"extras": {}}
            for (axis, _), value in zip(per_axis, combo):
                axis.set_on(cell, value)
            if not all(
                axis.check(cell) for axis, _ in per_axis if axis.check
            ):
                continue
            for axis, _ in per_axis:
                if axis.clamp:
                    axis.clamp(cell)
            if pool is not None:
                cell["num_values"] = max(
                    1, min(cell["num_values"], len(pool))
                )
            cell["values"] = (
                pool[: cell["num_values"]] if pool is not None else None
            )
            key = tuple(
                sorted((name, value) for name, value in cell.items()
                       if name != "extras")
            ) + (tuple(sorted(cell["extras"].items())),)
            if key in seen:
                continue
            seen.add(key)
            out.append(cell)
        return out

    def cells(self) -> list[tuple[int, int, str, str, int]]:
        """The feasible ``(n, t, topology, adversary, m)`` cells
        (compatibility view of :meth:`cell_dicts`; cells that differ
        only in non-legacy axes repeat here)."""
        return [
            (c["n"], c["t"], c["topology"], c["adversary"], c["num_values"])
            for c in self.cell_dicts()
        ]

    def expand(self) -> list[ScenarioSpec]:
        """All scenarios: feasible cells × seed indices, in grid order.

        The structural seed key of a purely legacy cell is the exact
        pre-registry tuple; non-default non-legacy axis values extend it
        — so historical grids keep historical seeds bit for bit.
        """
        specs: list[ScenarioSpec] = []
        for cell in self.cell_dicts():
            cell_values = cell["values"]
            key: tuple[Any, ...] = (
                cell["n"], cell["t"], cell["topology"], cell["adversary"],
                cell["num_values"], cell_values, cell["faults"],
                cell["variant"], cell["k"],
            )
            extra = axes_mod.cell_extra_items(cell)
            if extra:
                key = key + (extra,)
            for seed_index in self.seeds:
                specs.append(ScenarioSpec(
                    n=cell["n"], t=cell["t"], topology=cell["topology"],
                    adversary=cell["adversary"],
                    num_values=cell["num_values"], values=cell_values,
                    seed=derive_seed(self.base_seed, "scenario", key, seed_index),
                    seed_index=seed_index,
                    faults=cell["faults"], variant=cell["variant"],
                    k=cell["k"], placement=cell["placement"],
                    proposals=cell["proposals"],
                    extras=axes_mod.canonical_extras(cell["extras"]),
                    max_time=cell["max_time"], max_events=cell["max_events"],
                    index=len(specs),
                ))
        return specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.expand())

    def __len__(self) -> int:
        return len(self.cell_dicts()) * len(self.seeds)


def build_config(
    spec: ScenarioSpec, context: "KernelContext | None" = None
) -> RunConfig:
    """Reconstruct the full :class:`RunConfig` for one spec (worker side).

    Every axis participates: the built-in fields map directly (fault
    *placement* chooses the Byzantine pid set, the proposal *profile*
    deals the value pool), and registered axes with an ``apply`` hook —
    extras-backed custom axes — get a final pass over the keyword
    arguments before :class:`RunConfig` validates them.

    ``context`` (default: the process-local kernel context) supplies
    cached topology and adversary objects so grid-shaped sweeps stop
    rebuilding identical immutable structures for every cell.
    """
    from .kernel import default_context
    from .sweeps import proposal_profile

    if context is None:
        context = default_context()

    for name, _ in spec.extras:
        if AXES.get(name) is None:
            # Refusing beats silently running the default config: worker
            # processes started via spawn/forkserver do not inherit the
            # parent's registrations, so a missing axis here means the
            # run would not match the identity it gets recorded under.
            raise ValueError(
                f"scenario uses unregistered axis {name!r}; register it "
                f"with repro.orchestration.axes.AXES at import time in "
                f"every process that executes scenarios"
            )
    faults = spec.t if spec.faults is None else spec.faults
    adversary = context.adversary(spec.adversary)
    adversaries: dict[int, AdversarySpec] = {}
    if adversary is not None and faults > 0:
        adversaries = {
            pid: adversary
            for pid in strategies.place_adversaries(
                spec.placement, spec.n, faults
            )
        }
    correct = [pid for pid in range(1, spec.n + 1) if pid not in adversaries]
    if spec.values is not None:
        values = list(spec.values[: spec.num_values])
    else:
        values = [f"v{i}" for i in range(spec.num_values)]
    kwargs: dict[str, Any] = dict(
        n=spec.n,
        t=spec.t,
        proposals=proposal_profile(spec.proposals)(correct, values),
        adversaries=adversaries,
        topology=context.topology(spec.topology, spec.n),
        variant=spec.variant,
        k=spec.k,
        seed=spec.seed,
        max_time=spec.max_time,
        max_events=spec.max_events,
    )
    for axis in AXES:
        if axis.apply is not None:
            axis.apply(kwargs, axis.of_spec(spec))
    return RunConfig(**kwargs)


def summarize_run(spec: ScenarioSpec, result: ConsensusRunResult) -> ScenarioOutcome:
    """Boil a live run result down to its picklable outcome."""
    decisions = {pid: repr(v) for pid, v in sorted(result.decisions.items())}
    decided_value = None
    if result.decisions:
        distinct = sorted(set(decisions.values()))
        decided_value = distinct[0] if len(distinct) == 1 else None
    return ScenarioOutcome(
        spec=spec,
        decided=result.all_decided,
        decisions=decisions,
        decided_value=decided_value,
        rounds=dict(sorted(result.rounds.items())),
        max_round=result.max_round,
        messages_sent=result.messages_sent,
        events_processed=result.events_processed,
        finished_at=result.finished_at,
        timed_out=result.timed_out,
        invariants_ok=result.invariants.ok,
        violations=tuple(str(v) for v in result.invariants.violations),
    )


def run_scenario(
    spec: ScenarioSpec,
    check_invariants: bool = False,
    context: "KernelContext | None" = None,
) -> ScenarioOutcome:
    """Execute one scenario end to end.

    With ``check_invariants`` false (the sweep default) safety violations
    are *recorded* on the outcome rather than raised, so one bad cell
    cannot abort a thousand-scenario sweep.  Configuration errors are
    likewise captured as ``error`` outcomes.

    Execution goes through a :class:`~repro.orchestration.kernel.KernelContext`
    (default: the process-local one), which reuses cached topologies,
    adversary specs and the instrumentation bus across the scenarios of
    a sweep.
    """
    from .kernel import default_context

    if context is None:
        context = default_context()
    profiler = context.profiler
    if profiler is None:
        try:
            result = run_consensus(
                build_config(spec, context),
                check_invariants=check_invariants,
                context=context,
            )
        except Exception as exc:
            if check_invariants:
                raise
            return _error_outcome(spec, exc)
        return summarize_run(spec, result)
    try:
        with profiler.phase(PHASE_BUILD_CONFIG):
            config = build_config(spec, context)
        with profiler.phase(PHASE_SIMULATE):
            result = run_consensus(
                config, check_invariants=check_invariants, context=context
            )
    except Exception as exc:
        if check_invariants:
            raise
        return _error_outcome(spec, exc)
    with profiler.phase(PHASE_REPORT):
        return summarize_run(spec, result)


def _error_outcome(spec: ScenarioSpec, exc: Exception) -> ScenarioOutcome:
    """The sweep-tolerant outcome for a scenario that failed to run."""
    return ScenarioOutcome(
        spec=spec, decided=False, decisions={}, decided_value=None,
        rounds={}, max_round=0, messages_sent=0, events_processed=0,
        finished_at=0.0, timed_out=False, invariants_ok=False,
        violations=(), error=f"{type(exc).__name__}: {exc}",
    )
