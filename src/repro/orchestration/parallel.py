"""Serial, cooperative-async and multi-process execution of scenario matrices.

:func:`sweep_parallel` fans a :class:`~repro.orchestration.matrix.ScenarioMatrix`
(or any list of :class:`~repro.orchestration.matrix.ScenarioSpec`) out
over the persistent :class:`~repro.orchestration.pool.WorkerPool`:
workers are forked once per process (not per sweep) and keep a warm
:class:`~repro.orchestration.kernel.KernelContext` plus the sweep's spec
universe, so a chunk on the wire is just an index range and results come
back as pre-encoded JSONL batches (see :mod:`repro.orchestration.pool`
for the transport).  Because every run is deterministic in its spec (the
simulator draws all randomness from the spec's derived seed), serial and
pooled execution of the same matrix are bit-identical;
``tests/orchestration/test_parallel.py`` and
``tests/orchestration/test_pool.py`` lock this in.

:func:`sweep_async` is the in-process cooperative backend for platforms
where process pools are expensive (single-CPU containers, notebooks,
services embedding the engine next to other event-loop work): a small
set of asyncio tasks drains the spec queue, yielding to the loop between
scenarios.  No processes are forked, and results are — again —
bit-identical to :func:`sweep_serial`.

All three backends accept an optional
:class:`~repro.store.cache.ResultCache`: specs already in the store are
served from it (and re-attached to the caller's matrix indices), only
the missing cells are executed, and fresh outcomes are written back.
``SweepResult.cache_hits`` reports how much work the store saved.

Dispatch in the pooled path is chunked: specs are dealt into batches so
each IPC round-trip amortises its overhead, while results stream back
per *chunk* to feed progress callbacks.  Chunk sizing is *adaptive* by
default: workers report each chunk's wall time, the parent keeps an
exponential moving average of the per-scenario cost, and subsequent
chunks are sized to take roughly :data:`TARGET_CHUNK_SECONDS` each — so
a sweep of millisecond cells ships big batches while a sweep of
second-long cells stays responsive.  Passing an explicit ``chunksize``
restores fixed-size dispatch.  Chunking never affects results: outcomes
are re-ordered by matrix index before aggregation.  Sweeps too small to
amortise even one dispatch round-trip (fewer than
:data:`INLINE_THRESHOLD` scenarios left to execute, or ``workers <= 1``)
run on the in-process serial path automatically — the pooled backend is
never slower than serial on work that cannot use it.

:func:`shard_slice` deterministically slices an expanded matrix into
``1/N .. N/N`` round-robin shards (``repro sweep --shard i/N``), the
building block for distributed dispatch: the N shards partition the
full sweep exactly, so merging their JSONL outputs
(:func:`repro.store.shards.merge_shards`) reproduces the single-machine
sweep.

All paths share one aggregation
(:func:`repro.analysis.aggregation.aggregate_outcomes`) and one
persistence format (:meth:`SweepResult.write_jsonl`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..analysis.aggregation import MatrixReport, aggregate_outcomes
from ..profiling import (
    PHASE_CACHE_KEY,
    PHASE_CACHE_PUT,
    PHASE_EXPAND,
    PHASE_JSONL,
    PHASE_POOL,
    PHASE_REPORT,
    PHASE_SIMULATE,
)
from .matrix import (
    ScenarioMatrix,
    ScenarioOutcome,
    ScenarioSpec,
    outcome_from_record,
    run_scenario,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..profiling import SweepProfiler
    from ..store.cache import ResultCache
    from .pool import SpecTransport, WorkerPool

__all__ = [
    "SweepResult",
    "sweep_serial",
    "sweep_async",
    "sweep_parallel",
    "shard_slice",
    "default_workers",
    "INLINE_THRESHOLD",
    "TARGET_CHUNK_SECONDS",
]

#: Progress callback: invoked once per finished scenario, main process.
OnResult = Callable[[ScenarioOutcome], None]

#: Adaptive dispatch aims each chunk at about this much worker wall time
#: — long enough to amortise pickling, short enough that progress
#: callbacks and work stealing stay responsive.
TARGET_CHUNK_SECONDS = 0.25

#: Chunk size used before any timing observation exists.
_PROBE_CHUNK = 4

#: Upper bound on an adaptive chunk (keeps one IPC payload bounded even
#: for microsecond-scale cells).
_MAX_CHUNK = 256

#: Sweeps with fewer scenarios left to execute than this run inline on
#: the serial path: two probe chunks is the least work that can overlap
#: at all, and below it the dispatch round-trip is pure overhead.
INLINE_THRESHOLD = 2 * _PROBE_CHUNK


class _NullPhase:
    """No-op timing scope for the unprofiled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_PHASE = _NullPhase()


def _phase(profiler: "SweepProfiler | None", name: str) -> Any:
    """``profiler.phase(name)``, or a shared no-op scope when unprofiled."""
    return _NULL_PHASE if profiler is None else profiler.phase(name)


class _ProfiledSweep:
    """Scope that activates sweep observers on the process-local context.

    While active, :func:`~repro.orchestration.matrix.run_scenario` times
    its build/simulate/report stages and
    :meth:`~repro.orchestration.kernel.KernelContext.fresh_bus` arms the
    ``sim.step`` sink per run.  An ``observer`` carrying a metrics
    registry (:class:`~repro.obs.telemetry.SweepTelemetry`) likewise has
    its kernel counting sinks re-armed per run.  With neither a profiler
    nor an observer the scope is a no-op, so every backend can wrap its
    body unconditionally.
    """

    __slots__ = ("_profiler", "_metrics", "_context")

    def __init__(
        self,
        profiler: "SweepProfiler | None",
        observer: Any | None = None,
    ) -> None:
        self._profiler = profiler
        self._metrics = (
            getattr(observer, "metrics", None)
            if observer is not None else None
        )
        self._context = None

    def __enter__(self) -> "SweepProfiler | None":
        if self._profiler is not None or self._metrics is not None:
            from .kernel import default_context

            self._context = default_context()
            if self._profiler is not None:
                self._profiler.start()
                self._context.profiler = self._profiler
            if self._metrics is not None:
                self._context.metrics = self._metrics
        return self._profiler

    def __exit__(self, *exc: Any) -> None:
        if self._context is not None:
            if self._profiler is not None:
                self._context.profiler = None
                self._profiler.stop()
            if self._metrics is not None:
                self._context.metrics = None
            self._context = None


@dataclass
class SweepResult:
    """Outcomes plus aggregates for one executed scenario matrix."""

    #: Per-scenario outcomes, in matrix (expansion) order.
    outcomes: list[ScenarioOutcome]
    #: Global and per-cell aggregates.
    report: MatrixReport
    #: Worker processes used (1 = serial / async in-process).
    workers: int = 1
    #: Wall-clock seconds spent executing.
    elapsed: float = 0.0
    #: Scenarios served from the result cache instead of executed.
    cache_hits: int = 0
    #: Worker-pool spawn cost paid by *this* sweep (0.0 when the shared
    #: pool was already warm, or on the serial/async paths).
    pool_startup_seconds: float = 0.0
    #: Worker-encoded shard lines keyed by ``spec.index`` — the pooled
    #: backend fills this so :meth:`write_jsonl` persists the workers'
    #: bytes instead of re-encoding every record.
    _encoded: dict[int, str] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def executed(self) -> int:
        """Scenarios actually run (total minus cache hits)."""
        return len(self.outcomes) - self.cache_hits

    @property
    def scenarios_per_second(self) -> float:
        """Throughput over the whole sweep (0 when elapsed is unknown)."""
        if self.elapsed <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Sequence[ScenarioOutcome],
        workers: int = 1,
        elapsed: float = 0.0,
        cache_hits: int = 0,
        profiler: "SweepProfiler | None" = None,
        pool_startup: float = 0.0,
        encoded: dict[int, str] | None = None,
    ) -> "SweepResult":
        """Aggregate a finished outcome list into a result."""
        with _phase(profiler, PHASE_REPORT):
            ordered = sorted(outcomes, key=lambda o: o.spec.index)
            report = aggregate_outcomes(ordered)
        return cls(
            outcomes=list(ordered),
            report=report,
            workers=workers,
            elapsed=elapsed,
            cache_hits=cache_hits,
            pool_startup_seconds=pool_startup,
            _encoded=encoded or None,
        )

    def _shard_lines(self) -> Iterable[str]:
        """Canonical shard lines, reusing worker-encoded bytes when the
        pooled backend supplied them (cache hits and serial outcomes are
        encoded here; either way the bytes are
        :func:`repro.store.shards.encode_record`'s)."""
        from ..store.shards import encode_record

        encoded = self._encoded
        if not encoded:
            return (encode_record(outcome) for outcome in self.outcomes)
        return (
            encoded.get(outcome.spec.index) or encode_record(outcome)
            for outcome in self.outcomes
        )

    def write_jsonl(
        self,
        path: str | os.PathLike[str],
        profiler: "SweepProfiler | None" = None,
    ) -> Path:
        """Persist one JSON record per scenario; returns the path.

        Parent directories are created, and the write is atomic (temp
        file + rename via :func:`repro.store.atomic.atomic_write_lines`),
        so an interrupted sweep can never leave a truncated shard behind.
        """
        from ..store.atomic import atomic_write_lines

        if profiler is None:
            return atomic_write_lines(path, self._shard_lines())
        # measuring() keeps the wall window open: this usually runs
        # *after* the sweep's own window closed, and the encode time must
        # land inside, not on top of, the measured total.
        with profiler.measuring(), profiler.phase(PHASE_JSONL):
            return atomic_write_lines(path, self._shard_lines())


def _as_specs(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    profiler: "SweepProfiler | None" = None,
) -> list[ScenarioSpec]:
    if isinstance(scenarios, ScenarioMatrix):
        with _phase(profiler, PHASE_EXPAND):
            return scenarios.expand()
    # Strictly increasing indices (a matrix expansion, or a shard_slice
    # of one) are kept: result ordering (which sorts on spec.index)
    # already reproduces the input order, and preserving the original
    # matrix positions keeps shard JSONLs mergeable bit-identically with
    # the unsharded sweep.  Hand-built / filtered lists with stale or
    # duplicate indices are re-indexed positionally instead.
    specs = list(scenarios)
    indices = [spec.index for spec in specs]
    if all(b > a for a, b in zip(indices, indices[1:])):
        return specs
    from dataclasses import replace

    return [
        spec if spec.index == i else replace(spec, index=i)
        for i, spec in enumerate(specs)
    ]


def default_workers() -> int:
    """Worker count matching the actually schedulable CPUs.

    The ``REPRO_SWEEP_WORKERS`` environment variable overrides (clamped
    to >= 1; non-integer values are ignored).  Otherwise the size of the
    process's CPU affinity set where the platform exposes one —
    container CPU limits shrink affinity, not ``cpu_count()`` — falling
    back to ``os.cpu_count()``.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def shard_slice(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    index: int,
    count: int,
) -> list[ScenarioSpec]:
    """The 1-based shard ``index/count`` of an expanded scenario list.

    Slicing is round-robin over the deterministic matrix expansion, so
    the ``count`` shards partition the full sweep exactly (every
    scenario lands in precisely one shard) and shard sizes differ by at
    most one.  Each machine of a distributed sweep runs
    ``shard_slice(matrix, i, N)`` and persists a JSONL shard;
    :func:`repro.store.shards.merge_shards` folds them back into the
    single-machine result.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 1 <= index <= count:
        raise ValueError(
            f"shard index must be in 1..{count}, got {index}"
        )
    return _as_specs(scenarios)[index - 1 :: count]


def _run_chunk(
    specs: list[ScenarioSpec], check_invariants: bool
) -> tuple[list[ScenarioOutcome], float]:
    """Worker-side entry point: execute one batch of specs.

    Returns the outcomes plus the chunk's wall time, which the parent
    feeds into adaptive chunk sizing.
    """
    started = _timer()
    outcomes = [
        run_scenario(spec, check_invariants=check_invariants) for spec in specs
    ]
    return outcomes, _timer() - started


def _timer() -> float:
    import time

    return time.perf_counter()


def _split_cached(
    specs: list[ScenarioSpec],
    cache: "ResultCache | None",
    check_invariants: bool,
    profiler: "SweepProfiler | None" = None,
) -> tuple[list[ScenarioOutcome], list[ScenarioSpec]]:
    """Partition specs into (cached outcomes, specs still to run).

    A ``check_invariants`` sweep never reads from the cache: its
    contract is that a safety violation *raises* during execution, and a
    violating outcome served from the store would silently bypass that.
    It still writes back — clean outcomes are identical either way.
    """
    if cache is None or check_invariants:
        return [], specs
    from ..store.resume import plan_resume

    with _phase(profiler, PHASE_CACHE_KEY):
        plan = plan_resume(specs, cache)
    return plan.cached, plan.missing


def _store(
    cache: "ResultCache | None",
    outcome: ScenarioOutcome,
    profiler: "SweepProfiler | None" = None,
) -> None:
    """Write one fresh outcome back to the store.

    Error outcomes are *not* cached: the error may be environmental
    (memory pressure, recursion limits), and persisting it would poison
    every future sweep of the cell.  Timeouts are cached — they are
    deterministic in the spec's budgets, which are part of the key.
    """
    if cache is not None and outcome.error is None:
        with _phase(profiler, PHASE_CACHE_PUT):
            cache.put(outcome)


def _emit(outcomes: Iterable[ScenarioOutcome], on_result: OnResult | None) -> None:
    if on_result is not None:
        for outcome in outcomes:
            on_result(outcome)


def _observe_hits(observer: Any | None, outcomes: Iterable[ScenarioOutcome]) -> None:
    """Report store-served outcomes to the telemetry observer."""
    if observer is not None:
        for outcome in outcomes:
            observer.cache_hit(outcome)


def _finish_serial(
    cached: list[ScenarioOutcome],
    missing: list[ScenarioSpec],
    on_result: OnResult | None,
    check_invariants: bool,
    cache: "ResultCache | None",
    workers: int,
    started: float,
    profiler: "SweepProfiler | None" = None,
    observer: Any | None = None,
) -> SweepResult:
    """Shared tail for the serial paths: run ``missing``, merge, aggregate."""
    outcomes = list(cached)
    _observe_hits(observer, cached)
    _emit(cached, on_result)
    for spec in missing:
        outcome = run_scenario(spec, check_invariants=check_invariants)
        _store(cache, outcome, profiler)
        outcomes.append(outcome)
        if observer is not None:
            observer.executed(outcome)
        _emit((outcome,), on_result)
    return SweepResult.from_outcomes(
        outcomes,
        workers=workers,
        elapsed=_timer() - started,
        cache_hits=len(cached),
        profiler=profiler,
    )


def sweep_serial(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    on_result: OnResult | None = None,
    check_invariants: bool = False,
    cache: "ResultCache | None" = None,
    profiler: "SweepProfiler | None" = None,
    observer: Any | None = None,
) -> SweepResult:
    """Run every scenario in this process, in matrix order.

    With a ``cache``, scenarios already in the store are served from it
    (``on_result`` still sees them, first, in matrix order) and fresh
    outcomes are written back.

    ``profiler`` (a :class:`~repro.profiling.SweepProfiler`) is active
    for the duration of this sweep: harness phases are timed here, and
    the per-run ``sim.step`` sink attributes simulator wall time per
    event label.

    ``observer`` (a :class:`~repro.obs.telemetry.SweepTelemetry`) sees
    every outcome as it lands — ``cache_hit`` for store-served cells,
    ``executed`` for fresh ones — and its metrics registry, if any, is
    armed on the kernel bus per run.  Both hooks are pointer-test-free
    when absent: an unobserved sweep runs the exact same code with
    ``observer is None``.
    """
    started = _timer()
    with _ProfiledSweep(profiler, observer):
        cached, missing = _split_cached(
            _as_specs(scenarios, profiler), cache, check_invariants, profiler
        )
        return _finish_serial(
            cached, missing, on_result, check_invariants, cache,
            workers=1, started=started, profiler=profiler,
            observer=observer,
        )


def sweep_async(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    concurrency: int | None = None,
    on_result: OnResult | None = None,
    check_invariants: bool = False,
    cache: "ResultCache | None" = None,
    profiler: "SweepProfiler | None" = None,
    observer: Any | None = None,
) -> SweepResult:
    """Run a scenario matrix on a cooperative in-process asyncio backend.

    ``concurrency`` tasks (default: up to 8) drain one shared spec queue
    inside a private event loop, yielding control between scenarios — no
    worker processes are forked, which is the right trade on platforms
    where pools are expensive (single-CPU containers, notebooks) or when
    the engine is embedded next to other event-loop work via
    ``on_result``.  Scenario execution itself is synchronous and
    deterministic, so results are bit-identical to :func:`sweep_serial`
    on the same matrix.

    Must be called from outside a running event loop (it owns its own,
    via ``asyncio.run``).
    """
    import asyncio
    from collections import deque

    started = _timer()
    with _ProfiledSweep(profiler, observer):
        cached, missing = _split_cached(
            _as_specs(scenarios, profiler), cache, check_invariants, profiler
        )
        if concurrency is None:
            concurrency = min(8, max(1, len(missing)))
        outcomes: list[ScenarioOutcome] = list(cached)
        _observe_hits(observer, cached)
        _emit(cached, on_result)
        queue: deque[ScenarioSpec] = deque(missing)

        async def worker() -> None:
            while queue:
                spec = queue.popleft()
                outcome = run_scenario(spec, check_invariants=check_invariants)
                _store(cache, outcome, profiler)
                outcomes.append(outcome)
                if observer is not None:
                    observer.executed(outcome)
                _emit((outcome,), on_result)
                await asyncio.sleep(0)

        async def drive() -> None:
            await asyncio.gather(
                *(worker() for _ in range(max(1, concurrency)))
            )

        asyncio.run(drive())
        return SweepResult.from_outcomes(
            outcomes,
            workers=1,
            elapsed=_timer() - started,
            cache_hits=len(cached),
            profiler=profiler,
        )


def sweep_parallel(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    workers: int | None = None,
    chunksize: int | None = None,
    on_result: OnResult | None = None,
    check_invariants: bool = False,
    cache: "ResultCache | None" = None,
    profiler: "SweepProfiler | None" = None,
    observer: Any | None = None,
    pool: "WorkerPool | None" = None,
    transport: "SpecTransport | None" = None,
) -> SweepResult:
    """Run a scenario matrix on the persistent worker pool.

    Args:
        scenarios: A matrix or an explicit spec list.
        workers: Pool size; ``None`` uses :func:`default_workers`.
            ``workers <= 1``, or fewer than :data:`INLINE_THRESHOLD`
            scenarios left to execute, dispatches inline on the serial
            path — same results, no pool round-trips.
        chunksize: Specs per dispatch unit.  ``None`` (default) sizes
            chunks adaptively from the observed per-scenario wall time,
            targeting ~:data:`TARGET_CHUNK_SECONDS` of work per chunk;
            an explicit value restores fixed-size dispatch.  Either way
            the returned outcomes are in matrix order.
        on_result: Called in the parent for every finished scenario —
            cache hits first, then fresh outcomes in completion order
            (chunks complete out of order; outcomes in the returned
            result are nevertheless in matrix order).
        check_invariants: Propagated to every run; when true a safety
            violation raises in the worker and re-raises here (original
            exception type, worker traceback attached), aborting the
            sweep.
        cache: Optional result store; cached scenarios are not
            re-executed.  Fresh outcomes are written back *worker-side*
            through the pool's persistent cache handles (content-
            addressed atomic writes, so concurrent workers are safe).
            ``check_invariants`` sweeps bypass cache *reads* so
            violations always raise.
        profiler: Optional :class:`~repro.profiling.SweepProfiler`.
            Parent-side phases (expand, cache keying, aggregation, pool
            dispatch) are timed directly; each worker chunk runs under a
            chunk-local profiler whose export is merged back, so the
            build/simulate/report split and the per-event ``sim.step``
            breakdown populate on the pooled path too.  Summed worker
            time can exceed measured wall time (that is parallelism,
            not an accounting bug).
        pool: An explicit :class:`~repro.orchestration.pool.WorkerPool`
            to run on (kept alive for the caller); ``None`` uses the
            process-global shared pool, spawning it on first use.
        transport: A prebuilt
            :class:`~repro.orchestration.pool.SpecTransport` whose
            universe covers every spec of this sweep —
            :func:`~repro.orchestration.dispatch.run_claims` passes its
            plan's matrix transport so consecutive units reuse the
            worker-side expansion instead of re-shipping specs.
    """
    if workers is None:
        workers = default_workers()
    started = _timer()
    with _ProfiledSweep(profiler, observer):
        specs = _as_specs(scenarios, profiler)
        cached, missing = _split_cached(
            specs, cache, check_invariants, profiler
        )
        if workers <= 1 or len(missing) < max(2, INLINE_THRESHOLD):
            return _finish_serial(
                cached, missing, on_result, check_invariants, cache,
                workers=max(1, workers), started=started, profiler=profiler,
                observer=observer,
            )
        return _sweep_pooled(
            scenarios, specs, cached, missing, workers, chunksize,
            on_result, check_invariants, cache, profiler, observer,
            pool, transport, started,
        )


def _sweep_pooled(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    specs: list[ScenarioSpec],
    cached: list[ScenarioOutcome],
    missing: list[ScenarioSpec],
    workers: int,
    chunksize: int | None,
    on_result: OnResult | None,
    check_invariants: bool,
    cache: "ResultCache | None",
    profiler: "SweepProfiler | None",
    observer: Any | None,
    pool: "WorkerPool | None",
    transport: "SpecTransport | None",
    started: float,
) -> SweepResult:
    """The pooled dispatch loop (callers did the cache split already)."""
    from .pool import PoolWorkerError, SpecTransport, get_pool

    owns_pool = False
    pool_startup = 0.0
    if pool is None:
        pool, spawned = get_pool(workers)
        if spawned:
            pool_startup = pool.startup_seconds
        owns_pool = not pool.shared
    if pool.closed:
        raise PoolWorkerError("worker pool is shut down")
    if observer is not None:
        notify = getattr(observer, "pool_started", None)
        if notify is not None:
            notify(
                workers=pool.size,
                startup_seconds=pool_startup,
                reused=pool_startup == 0.0,
            )
    if transport is None:
        if isinstance(scenarios, ScenarioMatrix):
            transport = SpecTransport.from_matrix(scenarios)
        else:
            transport = SpecTransport.from_specs(specs)
    adaptive = chunksize is None
    # Seconds-per-scenario EMA; None until the first chunk reports back.
    cost_ema: float | None = None

    def _next_size() -> int:
        if not adaptive:
            return max(1, int(chunksize))
        if cost_ema is None or cost_ema <= 0:
            return _PROBE_CHUNK
        return max(
            1, min(_MAX_CHUNK, int(TARGET_CHUNK_SECONDS / cost_ema))
        )

    options: dict[str, Any] = {"check_invariants": check_invariants}
    if cache is not None:
        options["cache"] = (
            str(cache.root), cache.salt, cache.max_entries, cache.max_age
        )
    if profiler is not None:
        options["profile"] = True
    outcomes: list[ScenarioOutcome] = list(cached)
    encoded: dict[int, str] = {}
    _observe_hits(observer, cached)
    _emit(cached, on_result)
    position = 0
    inflight: dict[int, list[ScenarioSpec]] = {}
    pool.active = True
    try:
        pool.quiesce()
        while inflight or position < len(missing):
            # Keep up to two chunks queued per worker so a finishing
            # worker never idles while the parent drains results.
            while position < len(missing) and pool.has_capacity():
                chunk = missing[position : position + _next_size()]
                position += len(chunk)
                job_id = pool.submit_chunk(
                    pool.least_loaded(), transport,
                    transport.positions_for(chunk), options,
                )
                inflight[job_id] = chunk
            for job_id, payload in pool.wait_any():
                chunk_specs = inflight.pop(job_id)
                lines, spent, profile_export = payload
                with _phase(profiler, PHASE_POOL):
                    chunk_outcomes = [
                        outcome_from_record(json.loads(line), spec=spec)
                        for line, spec in zip(lines, chunk_specs)
                    ]
                    for spec, line in zip(chunk_specs, lines):
                        encoded[spec.index] = line
                if adaptive and chunk_outcomes and spent > 0:
                    per_spec = spent / len(chunk_outcomes)
                    cost_ema = (
                        per_spec if cost_ema is None
                        else 0.5 * cost_ema + 0.5 * per_spec
                    )
                if profiler is not None and profile_export is not None:
                    profiler.merge_remote(profile_export)
                if observer is not None:
                    for outcome in chunk_outcomes:
                        observer.executed(outcome)
                outcomes.extend(chunk_outcomes)
                _emit(chunk_outcomes, on_result)
    except BaseException:
        pool.abort(inflight)
        raise
    finally:
        pool.active = False
        if owns_pool:
            pool.shutdown()
    return SweepResult.from_outcomes(
        outcomes,
        workers=pool.size,
        elapsed=_timer() - started,
        cache_hits=len(cached),
        profiler=profiler,
        pool_startup=pool_startup,
        encoded=encoded,
    )
