"""Serial and multi-process execution of scenario matrices.

:func:`sweep_parallel` fans a :class:`~repro.orchestration.matrix.ScenarioMatrix`
(or any list of :class:`~repro.orchestration.matrix.ScenarioSpec`) out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  Only specs cross
the process boundary — each worker reconstructs its
:class:`~repro.orchestration.config.RunConfig` locally via
:func:`~repro.orchestration.matrix.build_config` — and only picklable
:class:`~repro.orchestration.matrix.ScenarioOutcome` digests come back.
Because every run is deterministic in its spec (the simulator draws all
randomness from the spec's derived seed), serial and parallel execution
of the same matrix are bit-identical; ``tests/orchestration/test_parallel.py``
locks this in.

Dispatch is chunked: specs are dealt round-robin into ``chunksize``
batches so each IPC round-trip amortises the pickle overhead, while
results stream back per *chunk* to feed progress callbacks.
:func:`sweep_serial` is the same pipeline minus the pool — both paths
share one aggregation (:func:`repro.analysis.aggregation.aggregate_outcomes`)
and one persistence format (:meth:`SweepResult.write_jsonl`).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..analysis.aggregation import MatrixReport, aggregate_outcomes
from .matrix import ScenarioMatrix, ScenarioOutcome, ScenarioSpec, run_scenario

__all__ = ["SweepResult", "sweep_serial", "sweep_parallel", "default_workers"]

#: Progress callback: invoked once per finished scenario, main process.
OnResult = Callable[[ScenarioOutcome], None]


@dataclass
class SweepResult:
    """Outcomes plus aggregates for one executed scenario matrix."""

    #: Per-scenario outcomes, in matrix (expansion) order.
    outcomes: list[ScenarioOutcome]
    #: Global and per-cell aggregates.
    report: MatrixReport
    #: Worker processes used (1 = serial).
    workers: int = 1
    #: Wall-clock seconds spent executing.
    elapsed: float = 0.0

    @property
    def scenarios_per_second(self) -> float:
        """Throughput over the whole sweep (0 when elapsed is unknown)."""
        if self.elapsed <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Sequence[ScenarioOutcome],
        workers: int = 1,
        elapsed: float = 0.0,
    ) -> "SweepResult":
        """Aggregate a finished outcome list into a result."""
        ordered = sorted(outcomes, key=lambda o: o.spec.index)
        return cls(
            outcomes=list(ordered),
            report=aggregate_outcomes(ordered),
            workers=workers,
            elapsed=elapsed,
        )

    def write_jsonl(self, path: str | os.PathLike[str]) -> Path:
        """Persist one JSON record per scenario; returns the path."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            for outcome in self.outcomes:
                fh.write(json.dumps(outcome.to_record(), sort_keys=True))
                fh.write("\n")
        return target


def _as_specs(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
) -> list[ScenarioSpec]:
    if isinstance(scenarios, ScenarioMatrix):
        return scenarios.expand()
    # Hand-built / filtered spec lists may carry stale or duplicate
    # indices; re-index positionally so result ordering (which sorts on
    # spec.index) always reproduces the input order.
    from dataclasses import replace

    return [
        spec if spec.index == i else replace(spec, index=i)
        for i, spec in enumerate(scenarios)
    ]


def default_workers() -> int:
    """Worker count matching the actually schedulable CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _run_chunk(
    specs: list[ScenarioSpec], check_invariants: bool
) -> list[ScenarioOutcome]:
    """Worker-side entry point: execute one batch of specs."""
    return [run_scenario(spec, check_invariants=check_invariants) for spec in specs]


def _timer() -> float:
    import time

    return time.perf_counter()


def sweep_serial(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    on_result: OnResult | None = None,
    check_invariants: bool = False,
) -> SweepResult:
    """Run every scenario in this process, in matrix order."""
    specs = _as_specs(scenarios)
    started = _timer()
    outcomes: list[ScenarioOutcome] = []
    for spec in specs:
        outcome = run_scenario(spec, check_invariants=check_invariants)
        outcomes.append(outcome)
        if on_result is not None:
            on_result(outcome)
    return SweepResult.from_outcomes(
        outcomes, workers=1, elapsed=_timer() - started
    )


def sweep_parallel(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    workers: int | None = None,
    chunksize: int | None = None,
    on_result: OnResult | None = None,
    check_invariants: bool = False,
) -> SweepResult:
    """Run a scenario matrix on a process pool.

    Args:
        scenarios: A matrix or an explicit spec list.
        workers: Pool size; ``None`` uses :func:`default_workers`, and
            ``workers <= 1`` (or a single scenario) degrades to
            :func:`sweep_serial` — same results, no pool overhead.
        chunksize: Specs per dispatch unit; ``None`` picks a size that
            gives each worker ~4 chunks (latency/overhead balance).
        on_result: Called in the parent for every finished scenario, in
            completion order (chunks complete out of order; outcomes in
            the returned result are nevertheless in matrix order).
        check_invariants: Propagated to every run; when true a safety
            violation raises in the worker and aborts the sweep.
    """
    specs = _as_specs(scenarios)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(specs) <= 1:
        result = sweep_serial(
            specs, on_result=on_result, check_invariants=check_invariants
        )
        return SweepResult(
            outcomes=result.outcomes,
            report=result.report,
            workers=max(1, workers),
            elapsed=result.elapsed,
        )
    if chunksize is None:
        chunksize = max(1, len(specs) // (workers * 4))
    chunks = [specs[i : i + chunksize] for i in range(0, len(specs), chunksize)]
    started = _timer()
    outcomes: list[ScenarioOutcome] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        pending = {
            pool.submit(_run_chunk, chunk, check_invariants) for chunk in chunks
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk_outcomes = future.result()
                outcomes.extend(chunk_outcomes)
                if on_result is not None:
                    for outcome in chunk_outcomes:
                        on_result(outcome)
    return SweepResult.from_outcomes(
        outcomes, workers=workers, elapsed=_timer() - started
    )
