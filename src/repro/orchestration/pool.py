"""Persistent worker pool: warm processes, batched spec transport.

``sweep_parallel`` used to pay for parallelism three times per sweep: a
fresh ``ProcessPoolExecutor`` (fork + interpreter warm-up per worker,
every sweep), pickled :class:`~repro.orchestration.matrix.ScenarioSpec`
lists per chunk (the spec is the *largest* object on the wire, and it
was shipped both directions), and a cold per-worker
:class:`~repro.orchestration.kernel.KernelContext` (topology and
adversary caches rebuilt from nothing each time).  On sweeps of
millisecond-scale scenarios the overhead swamped the simulator work —
``BENCH_sweep.json`` recorded parallel *slower* than serial.

:class:`WorkerPool` keeps the processes.  Workers are forked once and
live until :meth:`WorkerPool.shutdown` (or interpreter exit); each one
holds, for the pool's lifetime:

* a warm :class:`~repro.orchestration.kernel.KernelContext` — cached
  topologies/adversaries and the re-armed instrumentation bus survive
  across chunks, sweeps and dispatch units;
* a cache of **spec universes**: the scenario matrix codec
  (:meth:`ScenarioMatrix.to_dict`, which round-trips exact specs, seeds
  and indices) is shipped *once* per pool per matrix and expanded
  worker-side, so chunks are just index lists into it — no spec ever
  crosses the pipe again;
* open :class:`~repro.store.cache.ResultCache` handles, so fresh
  outcomes are written back worker-side (content-addressed atomic
  writes; concurrent writers are safe) without re-serialising in the
  parent.

Results return as **pre-encoded JSONL record batches**: each worker
encodes ``json.dumps(outcome.to_record(), sort_keys=True)`` — byte-for-
byte the :func:`repro.store.shards.write_shard` line format — and the
parent reattaches its own live specs via
:func:`~repro.orchestration.matrix.outcome_from_record`, so persisting
the sweep re-uses the worker's bytes instead of re-encoding.

Transport is one duplex :func:`multiprocessing.Pipe` per worker.  The
parent only ever sends small messages (a chunk is an index range; the
matrix payload is shipped only to a quiesced worker), so the classic
pipe deadlock — both sides blocked writing — cannot arise: a worker
blocked sending a large result batch is always drained by the parent's
``connection.wait`` loop.

Observability rides along: chunk replies carry worker wall time (feeds
the parent's adaptive chunk sizing), optional per-worker
:class:`~repro.profiling.SweepProfiler` phase exports (merged into the
parent's profiler, so ``repro profile`` attributes build/simulate/report
time even on the pooled path), and :meth:`WorkerPool.stats` round-trips
each worker's :meth:`KernelContext.stats
<repro.orchestration.kernel.KernelContext.stats>` — the warm-hit
counters that prove reuse across ``run_claims`` units.

The process-global pool (:func:`get_pool`) is what the sweep backends
use; it respawns automatically when the requested size changes or when
the axis registry gained/lost axes since the fork (workers inherited the
registry at fork time, so a stale pool would decode manifests under a
different vocabulary).
"""

from __future__ import annotations

import atexit
import hashlib
import json
import multiprocessing
import time
import traceback
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from .matrix import ScenarioMatrix, ScenarioSpec, run_scenario

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

    from ..store.cache import ResultCache

__all__ = [
    "PoolWorkerError",
    "SpecTransport",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
]

#: Spec universes kept per worker (a dispatch fleet works one matrix at
#: a time; a handful covers interleaved sweeps without unbounded growth).
_UNIVERSE_CACHE = 4

#: Chunks in flight per worker (two keeps a finishing worker busy while
#: the parent drains the other's results — same policy the old executor
#: path used).
MAX_INFLIGHT = 2


class PoolWorkerError(RuntimeError):
    """A worker process failed outside scenario execution (protocol
    violation, worker death).  Scenario-level errors re-raise as their
    original exception type."""


def _digest(payload: Any) -> str:
    """Stable id for a shipped payload (matrix dict or spec dict list)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class SpecTransport:
    """A once-shipped spec universe plus the index mapping into it.

    The parent builds one transport per sweep (or one per dispatch
    *plan* — :func:`repro.orchestration.dispatch.run_claims` reuses a
    matrix transport across every unit it claims) and resolves each
    spec to its position in the worker-side expansion; the pool ships
    the payload to each worker at most once per universe id.
    """

    __slots__ = ("uid", "kind", "payload", "_position_by_index")

    def __init__(
        self, uid: str, kind: str, payload: Any,
        position_by_index: dict[int, int] | None,
    ) -> None:
        self.uid = uid
        self.kind = kind  # "matrix" | "specs"
        self.payload = payload
        # None means positions == spec.index (a matrix expansion, whose
        # specs are indexed by construction position).
        self._position_by_index = position_by_index

    @classmethod
    def from_matrix(cls, matrix: ScenarioMatrix) -> "SpecTransport":
        payload = matrix.to_dict()
        return cls(_digest(payload), "matrix", payload, None)

    @classmethod
    def from_specs(cls, specs: Sequence[ScenarioSpec]) -> "SpecTransport":
        payload = [spec.to_dict() for spec in specs]
        positions = {spec.index: i for i, spec in enumerate(specs)}
        if len(positions) != len(specs):
            raise ValueError("spec list has duplicate indices")
        return cls(_digest(payload), "specs", payload, positions)

    def positions_for(self, specs: Iterable[ScenarioSpec]) -> list[int]:
        """Worker-side expansion positions of ``specs``."""
        if self._position_by_index is None:
            return [spec.index for spec in specs]
        by_index = self._position_by_index
        return [by_index[spec.index] for spec in specs]


def _compact(positions: list[int]) -> Any:
    """Wire form of a position list: contiguous runs ship as a range."""
    if positions and positions == list(
        range(positions[0], positions[0] + len(positions))
    ):
        return ("r", positions[0], positions[0] + len(positions))
    return ("l", positions)


def _expand_positions(wire: Any) -> list[int]:
    if wire[0] == "r":
        return list(range(wire[1], wire[2]))
    return list(wire[1])


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_main(conn: "Connection", worker_index: int) -> None:
    """The worker process loop: decode requests, run chunks, reply.

    All long-lived warm state lives in function locals and the process-
    local :func:`default_context` — nothing is re-created per chunk.
    """
    from collections import OrderedDict

    from .kernel import default_context

    context = default_context()
    # A forked child inherits whatever the parent's context held —
    # active observers, warm caches, run counters.  Reset to a clean
    # slate: worker-side profiling is opt-in per chunk, and the stats()
    # round-trip must account for *this worker's* work only.
    context.clear()
    context.runs = 0
    context.profiler = None
    context.metrics = None
    universes: "OrderedDict[str, Any]" = OrderedDict()
    caches: dict[tuple[Any, ...], "ResultCache"] = {}

    def universe(uid: str) -> list[ScenarioSpec]:
        entry = universes[uid]
        universes.move_to_end(uid)
        if isinstance(entry, Exception):
            raise entry
        return entry

    def open_cache(spec: tuple[Any, ...]) -> "ResultCache":
        handle = caches.get(spec)
        if handle is None:
            from ..store.cache import ResultCache

            root, salt, max_entries, max_age = spec
            handle = caches[spec] = ResultCache(
                root, salt=salt, max_entries=max_entries, max_age=max_age
            )
        return handle

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "shutdown":
            break
        if kind in ("matrix", "specs"):
            uid, payload = message[1], message[2]
            try:
                if kind == "matrix":
                    expansion = ScenarioMatrix.from_dict(payload).expand()
                else:
                    expansion = [ScenarioSpec.from_dict(d) for d in payload]
                universes[uid] = expansion
            except Exception as exc:  # surfaces at the next chunk
                universes[uid] = exc
            while len(universes) > _UNIVERSE_CACHE:
                universes.popitem(last=False)
            continue
        job_id = message[1]
        try:
            if kind == "chunk":
                _uid, wire, options = message[2], message[3], message[4]
                reply = _run_pooled_chunk(
                    universe(_uid), _expand_positions(wire), options,
                    context, open_cache,
                )
            elif kind == "stats":
                reply = dict(
                    context.stats(),
                    worker=worker_index,
                    universes=len(universes),
                    caches=len(caches),
                )
            elif kind == "ping":
                reply = "pong"
            else:
                raise PoolWorkerError(f"unknown pool message {kind!r}")
        except BaseException as exc:
            conn.send(("err", job_id, _portable(exc), traceback.format_exc()))
            continue
        conn.send(("ok", job_id, reply))


def _portable(exc: BaseException) -> Any:
    """The exception itself when picklable, else a stand-in string."""
    import pickle

    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return f"{type(exc).__name__}: {exc}"


def _run_pooled_chunk(
    specs: list[ScenarioSpec],
    positions: list[int],
    options: dict[str, Any],
    context: Any,
    open_cache: Any,
) -> tuple[list[str], float, dict[str, Any] | None]:
    """Execute one chunk; returns (encoded lines, wall seconds, profile).

    The encoded lines are byte-identical to
    :func:`repro.store.shards.write_shard` output for the same outcomes,
    which is what lets the parent persist them without re-encoding.
    """
    from ..profiling import PHASE_CACHE_PUT, PHASE_JSONL, SweepProfiler
    from ..store.shards import encode_record

    check_invariants = options.get("check_invariants", False)
    cache_spec = options.get("cache")
    profiler = None
    if options.get("profile"):
        profiler = SweepProfiler()
        context.profiler = profiler
    started = time.perf_counter()
    try:
        chunk = [specs[position] for position in positions]
        outcomes = [
            run_scenario(spec, check_invariants=check_invariants)
            for spec in chunk
        ]
        wall = time.perf_counter() - started
        if cache_spec is not None:
            cache = open_cache(cache_spec)
            if profiler is None:
                for outcome in outcomes:
                    if outcome.error is None:
                        cache.put(outcome)
            else:
                with profiler.phase(PHASE_CACHE_PUT):
                    for outcome in outcomes:
                        if outcome.error is None:
                            cache.put(outcome)
        if profiler is None:
            lines = [encode_record(outcome) for outcome in outcomes]
        else:
            with profiler.phase(PHASE_JSONL):
                lines = [encode_record(outcome) for outcome in outcomes]
        return lines, wall, None if profiler is None else profiler.export()
    finally:
        if profiler is not None:
            context.profiler = None


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side handle for one pooled process."""

    __slots__ = ("process", "conn", "index", "shipped", "outstanding")

    def __init__(self, process: Any, conn: "Connection", index: int) -> None:
        self.process = process
        self.conn = conn
        self.index = index
        #: Universe ids this worker already holds.
        self.shipped: set[str] = set()
        #: Job ids sent and not yet answered, in send order.
        self.outstanding: list[int] = []


class WorkerPool:
    """A fixed-size set of persistent scenario workers.

    Spawned once (``fork`` where available, so workers inherit the axis
    registry and loaded modules without re-importing), reused across
    sweeps and dispatch units, shut down explicitly or at interpreter
    exit.  Not thread-safe: one sweep drives the pool at a time
    (:attr:`active` guards against re-entrant use).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {workers}")
        started = time.perf_counter()
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        self._workers: list[_Worker] = []
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, index),
                daemon=True,
                name=f"repro-pool-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process, parent_conn, index))
        #: Wall seconds spent forking the workers (bench attribution).
        self.startup_seconds = time.perf_counter() - started
        self._next_job = 0
        self._results: dict[int, Any] = {}
        self._discard: set[int] = set()
        #: True once unusable — explicitly shut down, or a worker died.
        self.closed = False
        self._torn_down = False
        #: True while a sweep is driving this pool.
        self.active = False
        #: True for the process-global pool (:func:`get_pool`); sweeps
        #: shut down pools they privately spawned, never the shared one.
        self.shared = False

    @property
    def size(self) -> int:
        return len(self._workers)

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker (idempotent)."""
        if self._torn_down:
            return
        self._torn_down = True
        self.closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("shutdown",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()

    def quiesce(self) -> None:
        """Drain every outstanding reply (discarding aborted jobs), so a
        new sweep starts against idle workers and large payload sends
        can never interleave with a blocked result send."""
        for worker in self._workers:
            while worker.outstanding:
                self._recv(worker)

    # -- the wire --------------------------------------------------------

    def _recv(self, worker: _Worker) -> None:
        """Receive exactly one reply from ``worker`` into the result map."""
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError) as exc:
            self.closed = True
            raise PoolWorkerError(
                f"pool worker {worker.index} died "
                f"(exitcode={worker.process.exitcode})"
            ) from exc
        job_id = reply[1]
        if job_id in worker.outstanding:
            worker.outstanding.remove(job_id)
        if job_id in self._discard:
            self._discard.remove(job_id)
            return
        self._results[job_id] = reply

    def _send(self, worker: _Worker, message: tuple) -> None:
        """Send one request; a dead worker raises :class:`PoolWorkerError`
        instead of a bare ``BrokenPipeError``."""
        try:
            worker.conn.send(message)
        except (OSError, ValueError) as exc:
            self.closed = True
            raise PoolWorkerError(
                f"pool worker {worker.index} died "
                f"(exitcode={worker.process.exitcode})"
            ) from exc

    def _ship(self, worker: _Worker, transport: SpecTransport) -> None:
        if transport.uid not in worker.shipped:
            self._send(
                worker, (transport.kind, transport.uid, transport.payload)
            )
            worker.shipped.add(transport.uid)

    def submit_chunk(
        self,
        worker_index: int,
        transport: SpecTransport,
        positions: list[int],
        options: dict[str, Any],
    ) -> int:
        """Queue one chunk on a specific worker; returns the job id."""
        worker = self._workers[worker_index]
        self._ship(worker, transport)
        job_id = self._next_job
        self._next_job += 1
        self._send(
            worker,
            ("chunk", job_id, transport.uid, _compact(positions), options),
        )
        worker.outstanding.append(job_id)
        return job_id

    def wait_any(self) -> list[tuple[int, Any]]:
        """Block until >= 1 reply arrives; returns ``(job_id, payload)``
        pairs (scenario errors re-raise here as their original type,
        with the worker traceback attached as a note)."""
        from multiprocessing.connection import wait as connection_wait

        busy = [w for w in self._workers if w.outstanding]
        if not busy and not self._results:
            raise PoolWorkerError("wait_any() with no outstanding work")
        if not self._results:
            ready = connection_wait([w.conn for w in busy])
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                self._recv(by_conn[conn])
        done: list[tuple[int, Any]] = []
        for job_id in sorted(self._results):
            reply = self._results.pop(job_id)
            if reply[0] == "err":
                self._raise_worker_error(reply)
            done.append((job_id, reply[2]))
        return done

    def _raise_worker_error(self, reply: Any) -> None:
        exc, worker_tb = reply[2], reply[3]
        if isinstance(exc, BaseException):
            if hasattr(exc, "add_note"):
                exc.add_note(f"(in pool worker)\n{worker_tb}")
            raise exc
        raise PoolWorkerError(f"{exc}\n(worker traceback)\n{worker_tb}")

    def abort(self, job_ids: Iterable[int]) -> None:
        """Forget submitted jobs (their late replies will be dropped)."""
        pending = set(job_ids)
        for worker in self._workers:
            for job_id in worker.outstanding:
                if job_id in pending:
                    self._discard.add(job_id)
        self._results = {
            job_id: reply
            for job_id, reply in self._results.items()
            if job_id not in pending
        }

    def least_loaded(self) -> int:
        """Index of the worker with the fewest queued chunks."""
        return min(
            range(len(self._workers)),
            key=lambda i: len(self._workers[i].outstanding),
        )

    def inflight(self) -> int:
        return sum(len(w.outstanding) for w in self._workers)

    def has_capacity(self) -> bool:
        return any(
            len(w.outstanding) < MAX_INFLIGHT for w in self._workers
        )

    # -- introspection ---------------------------------------------------

    def _roundtrip(self, kind: str) -> list[Any]:
        self.quiesce()
        payloads = []
        for worker in self._workers:
            job_id = self._next_job
            self._next_job += 1
            self._send(worker, (kind, job_id))
            worker.outstanding.append(job_id)
            self._recv(worker)
            reply = self._results.pop(job_id)
            if reply[0] == "err":
                self._raise_worker_error(reply)
            payloads.append(reply[2])
        return payloads

    def stats(self) -> list[dict[str, Any]]:
        """Each worker's :meth:`KernelContext.stats` (plus universe and
        cache-handle counts) — the warm-reuse evidence."""
        return self._roundtrip("stats")

    def ping(self) -> bool:
        """All workers answer."""
        return all(p == "pong" for p in self._roundtrip("ping"))

    def __repr__(self) -> str:
        return (
            f"WorkerPool(size={self.size}, inflight={self.inflight()}, "
            f"closed={self.closed})"
        )


# ---------------------------------------------------------------------------
# the shared process-global pool
# ---------------------------------------------------------------------------

_SHARED: WorkerPool | None = None
_SHARED_AXES: tuple[str, ...] | None = None
_ATEXIT_REGISTERED = False


def _axes_fingerprint() -> tuple[str, ...]:
    from .axes import AXES

    return AXES.names()


def get_pool(workers: int) -> tuple[WorkerPool, bool]:
    """The shared pool at ``workers`` size; returns ``(pool, spawned)``.

    Reuses the live pool when the size matches and the axis registry is
    unchanged since the fork; otherwise the stale pool is shut down and
    a fresh one spawned (``spawned=True`` — its ``startup_seconds`` was
    paid by this call).
    """
    global _SHARED, _SHARED_AXES, _ATEXIT_REGISTERED
    fingerprint = _axes_fingerprint()
    pool = _SHARED
    if pool is not None and pool.active:
        # A sweep is already driving the shared pool (re-entrant use,
        # e.g. a sweep launched from an on_result callback): hand out a
        # private pool the caller will shut down itself.
        return WorkerPool(workers), True
    if (
        pool is not None
        and not pool.closed
        and pool.size == workers
        and _SHARED_AXES == fingerprint
    ):
        return pool, False
    if pool is not None:
        pool.shutdown()
    _SHARED = WorkerPool(workers)
    _SHARED.shared = True
    _SHARED_AXES = fingerprint
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_pool)
        _ATEXIT_REGISTERED = True
    return _SHARED, True


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; interpreter exit)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
        _SHARED = None
