"""Build, execute and post-process one consensus run.

:func:`run_consensus` is the library's front door: it assembles the
simulator, network, correct processes, adversaries and protocol stacks
from a :class:`~repro.orchestration.config.RunConfig`, drives the run to
completion (or to its budget), re-checks the safety invariants, and
returns a :class:`ConsensusRunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..adversary.behaviors import MisbehavingProcess, RawByzantine
from ..adversary.strategies import (
    AdversarySpec,
    compose_filters,
    crash_at_filter,
    honest_filter,
    mute_coordinator_filter,
    two_faced_filter,
)
from ..analysis.invariants import InvariantReport, verify_consensus_run
from ..baselines.randomized import CommonCoin, RandomizedBinaryConsensus
from ..broadcast.reliable import ReliableBroadcast
from ..core.consensus import Consensus
from ..core.consensus_variant import BotConsensus
from ..core.eventual_agreement import default_timeout
from ..errors import ConfigurationError, DeadlineExceeded, DeadlockError
from ..net.network import Network
from ..net.topology import Topology, instant_topology, single_bisource
from ..runtime.process import Process
from ..sim.loop import Simulator
from ..sim.random import RngRegistry, derive_seed
from ..sim.tasks import Task, gather
from .config import RunConfig
from .kernel import KernelContext

__all__ = [
    "ConsensusRunResult",
    "RuntimeFrame",
    "build_runtime",
    "run_consensus",
    "run_randomized",
]


@dataclass
class ConsensusRunResult:
    """Everything observable about one finished (or timed-out) run."""

    config: RunConfig
    #: Decisions of correct processes that decided (pid -> value).
    decisions: dict[int, Any]
    #: Virtual time of each decision (pid -> time).
    decision_times: dict[int, float]
    #: Rounds entered per correct process (pid -> count).
    rounds: dict[int, int]
    #: Whether the run hit its time/event budget before all decided.
    timed_out: bool
    #: Total messages sent on the network.
    messages_sent: int
    #: Message counts by tag.
    sent_by_tag: dict[str, int]
    #: Simulator events executed.
    events_processed: int
    #: Virtual time when the run stopped.
    finished_at: float
    #: Post-hoc safety report.
    invariants: InvariantReport
    #: Per-process protocol objects, for deeper inspection.
    consensi: dict[int, Any] = field(repr=False, default_factory=dict)
    network: Network | None = field(repr=False, default=None)
    #: Full structured event trace (only when ``config.trace`` is set).
    trace: Any = field(repr=False, default=None)

    @property
    def all_decided(self) -> bool:
        """Whether every correct process decided."""
        return set(self.decisions) == set(self.config.proposals)

    @property
    def decided_value(self) -> Any:
        """The common decided value (requires at least one decision)."""
        if not self.decisions:
            raise ConfigurationError("no process decided")
        return next(iter(self.decisions.values()))

    @property
    def max_round(self) -> int:
        """Largest round any correct process entered."""
        return max(self.rounds.values(), default=0)


def default_topology(config: RunConfig) -> Topology:
    """The minimal single-bisource topology for this configuration."""
    bisource = min(config.correct)
    return single_bisource(
        config.n,
        config.t,
        bisource=bisource,
        correct=config.correct,
        tau=0.0,
        delta=1.0,
        k=config.k,
    )


def _deploy_adversary(
    pid: int,
    spec: AdversarySpec,
    sim: Simulator,
    network: Network,
    rng: RngRegistry,
) -> Process | None:
    """Install one Byzantine actor; returns its process if it runs the
    protocol, else None."""
    if spec.kind == "crash":
        RawByzantine(pid, sim, network, rng.stream("adv", pid))
        return None
    if spec.kind == "noise":
        RawByzantine(
            pid,
            sim,
            network,
            rng.stream("adv", pid),
            noise_probability=spec.params.get("noise_probability", 0.5),
        )
        return None
    if spec.kind == "spam_decide":
        actor = RawByzantine(pid, sim, network, rng.stream("adv", pid))
        fake = spec.params["fake_value"]

        def unleash() -> None:
            # A forged DECIDE goes through real RB: it will be delivered,
            # but from a single origin — below the t+1 decision quorum.
            actor.broadcast_raw("RB_INIT", (Consensus.DECIDE_KEY, fake))
            for r in range(1, 21):
                actor.broadcast_raw("EA_RELAY", (r, fake))
                actor.broadcast_raw("EA_COORD", (r, fake))

        sim.call_soon(unleash)
        return None
    if spec.kind == "bot_relays":
        actor = RawByzantine(pid, sim, network, rng.stream("adv", pid))
        from ..core.values import BOT

        def poison() -> None:
            for r in range(1, spec.params.get("max_round", 500) + 1):
                actor.broadcast_raw("EA_RELAY", (r, BOT))

        sim.call_soon(poison)
        return None
    # Protocol-running strategies differ only in their outbound filter.
    if spec.kind == "collude":
        outbound = honest_filter
    elif spec.kind == "two_faced":
        outbound = two_faced_filter(spec.params["fake_value"])
    elif spec.kind == "flip_flop":
        from ..adversary.strategies import flip_flop_filter

        outbound = flip_flop_filter(spec.params["values"])
    elif spec.kind == "mute_coord":
        outbound = mute_coordinator_filter()
    elif spec.kind == "crash_at":
        outbound = crash_at_filter(spec.params["time"])
    else:
        raise ConfigurationError(f"unknown adversary kind {spec.kind!r}")
    if "crash_time" in spec.params and spec.kind != "crash_at":
        outbound = compose_filters(outbound, crash_at_filter(spec.params["crash_time"]))
    return MisbehavingProcess(pid, sim, network, outbound)


def _adversary_proposal(spec: AdversarySpec, config: RunConfig) -> Any:
    if spec.proposal is not None:
        return spec.proposal
    if "fake_value" in spec.params:
        return spec.params["fake_value"]
    # Default: echo some correct value (a subtle adversary blends in).
    return next(iter(config.proposals.values()))


@dataclass
class RuntimeFrame:
    """One fully wired (but not yet run) consensus runtime.

    :func:`build_runtime` assembles it; :func:`run_consensus` drives it
    to completion, while the exhaustive checker
    (:mod:`repro.checking.harness`) instead steps the simulator manually
    so it can verify invariants between events and abort explorations
    mid-run.
    """

    config: RunConfig
    sim: Simulator
    network: Network
    rng: RngRegistry
    #: Tracked (correct) protocol stacks, ``pid -> Consensus``.
    consensi: dict[int, Any]
    rb_engines: dict[int, ReliableBroadcast]
    decision_times: dict[int, float]
    #: Completes when every tracked process has decided.
    all_decided: "Task | Any"
    tracer: Any = None
    #: Protocol stacks of protocol-running *adversaries* (untracked by
    #: the invariants, but part of the global state the checker
    #: fingerprints — their internals steer future behaviour).
    adversary_consensi: dict[int, Any] = field(default_factory=dict)


def build_runtime(
    config: RunConfig,
    context: "KernelContext | None" = None,
    chooser: Any | None = None,
) -> RuntimeFrame:
    """Assemble the simulator, network and protocol stacks for one run.

    ``chooser`` switches the runtime to *check mode* (as does a config
    with ``check_schedule`` set, which installs a
    :class:`~repro.checking.choice.ScheduleChooser` for it): the
    topology under test is replaced by :func:`instant_topology`, the
    virtual self channel delivers at the send instant, and the chooser
    is installed on the simulator before any task or adversary is
    scheduled, so it observes every choice point from event zero.
    """
    if context is not None:
        sim = Simulator(bus=context.fresh_bus(), pools=context.pools)
    else:
        sim = Simulator()
    if chooser is None and config.check_schedule is not None:
        from ..checking.choice import ScheduleChooser

        chooser = ScheduleChooser(config.check_schedule)
    check_mode = chooser is not None
    rng = RngRegistry(config.seed)
    if check_mode:
        topology = instant_topology(config.n)
    elif config.topology is not None:
        topology = config.topology
    else:
        topology = default_topology(config)
    network = Network(
        sim,
        config.n,
        timing=topology.overrides,
        default_timing=topology.default,
        rng=rng,
        fifo=config.fifo,
        recycle=True,
    )
    if check_mode:
        from ..net.timing import Instant

        # Self-deliveries land on the ready tier like everything else;
        # the chooser treats them as eager internal events (sound: the
        # 1e-9 self channel always beats the sampled stack's positive
        # delay floor, so cascades drain first there too).
        network._self_timing = Instant()
        sim.set_chooser(chooser)
        bind = getattr(chooser, "bind", None)
        if bind is not None:
            bind(network)
    tracer = None
    if config.trace:
        from ..analysis.traces import Tracer

        tracer = Tracer().attach_network(network)
    timeout_fn = config.timeout_fn if config.timeout_fn is not None else default_timeout

    consensus_cls = BotConsensus if config.variant == "bot" else Consensus
    common_kwargs: dict[str, Any] = {
        "k": config.k,
        "timeout_fn": timeout_fn,
        "max_rounds": config.max_rounds,
    }
    if config.ea_factory is not None:
        common_kwargs["ea_factory"] = config.ea_factory
    if config.selector is not None:
        common_kwargs["selector"] = config.selector
    if config.variant == "standard":
        common_kwargs["m"] = config.m

    consensi: dict[int, Any] = {}
    rb_engines: dict[int, ReliableBroadcast] = {}
    adversary_consensi: dict[int, Any] = {}
    decision_times: dict[int, float] = {}

    def build_stack(process: Process, proposal: Any, track: bool) -> None:
        rb = ReliableBroadcast(process, config.n, config.t)
        consensus = consensus_cls(process, rb, config.n, config.t, **common_kwargs)
        if not track:
            adversary_consensi[process.pid] = consensus
        if track:
            consensi[process.pid] = consensus
            rb_engines[process.pid] = rb
            consensus.decision.add_done_callback(
                lambda fut, pid=process.pid: decision_times.setdefault(pid, sim.now)
            )
            if tracer is not None:
                rb.subscribe_all(
                    lambda origin, key, value, pid=process.pid: tracer.record(
                        sim.now, "rb_deliver", pid=pid,
                        origin=origin, instance=key, value=value,
                    )
                )
                consensus.decision.add_done_callback(
                    lambda fut, pid=process.pid: tracer.record(
                        sim.now, "decide", pid=pid,
                        value=fut.result() if not fut.cancelled() else None,
                    )
                )
        process.create_task(consensus.propose(proposal), name=f"p{process.pid}.propose")

    # Adversaries first so their network registrations exist before t=0.
    for pid, spec in config.adversaries.items():
        adv_process = _deploy_adversary(pid, spec, sim, network, rng)
        if adv_process is not None and spec.runs_protocol:
            build_stack(adv_process, _adversary_proposal(spec, config), track=False)

    for pid in sorted(config.proposals):
        process = Process(pid, sim, network)
        build_stack(process, config.proposals[pid], track=True)

    all_decided = gather(
        sim, [consensi[pid].decision for pid in sorted(consensi)], name="all-decisions"
    )
    return RuntimeFrame(
        config=config,
        sim=sim,
        network=network,
        rng=rng,
        consensi=consensi,
        rb_engines=rb_engines,
        decision_times=decision_times,
        all_decided=all_decided,
        tracer=tracer,
        adversary_consensi=adversary_consensi,
    )


def run_consensus(
    config: RunConfig,
    check_invariants: bool = True,
    context: "KernelContext | None" = None,
) -> ConsensusRunResult:
    """Execute one full consensus run described by ``config``.

    Returns a result whether or not every process decided: if the time or
    event budget ran out, ``timed_out`` is set and partial decisions are
    reported (benchmark E8 uses exactly this to measure non-convergence).
    When ``check_invariants`` is true (default), safety violations raise.

    ``context`` supplies the reusable per-worker kernel state (shared
    instrumentation bus); sweeps pass one so per-scenario object churn
    stays minimal.  The fast path attaches *no* instrumentation sinks —
    message totals and per-tag counts come from the network's native
    counters — so with ``config.trace`` unset the probes cost one
    pointer check per message.

    A config with ``check_schedule`` set replays a checker counterexample
    instead: check-mode semantics, delivery order forced by the schedule
    (see :func:`build_runtime`).
    """
    frame = build_runtime(config, context=context)
    sim = frame.sim
    network = frame.network
    consensi = frame.consensi
    timed_out = False
    try:
        sim.run_until_complete(
            frame.all_decided, max_time=config.max_time, max_events=config.max_events
        )
    except (DeadlineExceeded, DeadlockError):
        timed_out = True

    decisions = {
        pid: consensus.decision.result()
        for pid, consensus in consensi.items()
        if consensus.decision.done() and not consensus.decision.cancelled()
    }
    rounds = {pid: consensus.rounds_executed for pid, consensus in consensi.items()}
    report = verify_consensus_run(
        decisions,
        config.proposals,
        consensi=consensi,
        rb_engines=frame.rb_engines,
        allow_bot=(config.variant == "bot"),
    )
    if check_invariants:
        report.raise_if_failed()
    return ConsensusRunResult(
        config=config,
        decisions=decisions,
        decision_times=frame.decision_times,
        rounds=rounds,
        timed_out=timed_out,
        messages_sent=network.messages_sent,
        sent_by_tag=dict(network.sent_by_tag),
        events_processed=sim.events_processed,
        finished_at=sim.now,
        invariants=report,
        consensi=consensi,
        network=network,
        trace=frame.tracer,
    )


@dataclass
class RandomizedRunResult:
    """Outcome of one randomized-baseline run."""

    decisions: dict[int, int]
    decision_rounds: dict[int, int]
    timed_out: bool
    messages_sent: int
    finished_at: float

    @property
    def all_decided(self) -> bool:
        """Whether every correct process decided."""
        return not self.timed_out and bool(self.decisions)


def run_randomized(
    n: int,
    t: int,
    proposals: dict[int, int],
    topology: Topology,
    adversaries: dict[int, AdversarySpec] | None = None,
    seed: int = 0,
    max_rounds: int = 200,
    max_time: float = 1_000_000.0,
    max_events: int = 20_000_000,
) -> RandomizedRunResult:
    """Execute the randomized binary baseline under the same substrate.

    Supports the full adversary vocabulary: non-protocol kinds run as
    raw actors, protocol-running kinds (``two_faced``, ``crash_at``,
    ``collude``, ...) run the genuine randomized protocol behind their
    outbound filter, proposing ``spec.proposal`` when it is a bit.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(
        sim,
        n,
        timing=topology.overrides,
        default_timing=topology.default,
        rng=rng,
        recycle=True,
    )
    coin = CommonCoin(derive_seed(seed, "common-coin"))
    adversaries = adversaries or {}
    for pid, spec in adversaries.items():
        try:
            adv_process = _deploy_adversary(pid, spec, sim, network, rng)
        except KeyError:
            # Kinds needing consensus-specific params degrade to crash.
            RawByzantine(pid, sim, network, rng.stream("adv", pid))
            continue
        if adv_process is not None and spec.runs_protocol:
            bit = spec.proposal if spec.proposal in (0, 1) else 0
            instance = RandomizedBinaryConsensus(
                adv_process, n, t, coin, max_rounds=max_rounds
            )
            adv_process.create_task(
                instance.propose(bit), name=f"p{pid}.rbc-byz"
            )
    instances: dict[int, RandomizedBinaryConsensus] = {}
    for pid, value in sorted(proposals.items()):
        process = Process(pid, sim, network)
        instance = RandomizedBinaryConsensus(
            process, n, t, coin, max_rounds=max_rounds
        )
        instances[pid] = instance
        process.create_task(instance.propose(value), name=f"p{pid}.rbc")
    all_decided = gather(
        sim, [instances[pid].decision for pid in sorted(instances)], name="rbc"
    )
    timed_out = False
    try:
        sim.run_until_complete(all_decided, max_time=max_time, max_events=max_events)
    except (DeadlineExceeded, DeadlockError):
        timed_out = True
    decisions = {
        pid: inst.decision.result()
        for pid, inst in instances.items()
        if inst.decision.done() and not inst.decision.cancelled()
    }
    decision_rounds = {
        pid: inst.decided_round
        for pid, inst in instances.items()
        if inst.decided_round is not None
    }
    return RandomizedRunResult(
        decisions=decisions,
        decision_rounds=decision_rounds,
        timed_out=timed_out,
        messages_sent=network.messages_sent,
        finished_at=sim.now,
    )
