"""Parameter-sweep helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..analysis.feasibility import max_values
from .config import RunConfig
from .runner import ConsensusRunResult, run_consensus

__all__ = [
    "PROPOSAL_PROFILES",
    "standard_proposals",
    "block_proposals",
    "skewed_proposals",
    "unanimous_proposals",
    "proposal_profile",
    "normalize_profile",
    "sweep_seeds",
    "format_table",
]


def standard_proposals(
    correct: Iterable[int], values: Sequence[Any]
) -> dict[int, Any]:
    """Assign ``values`` to correct processes round-robin.

    With ``len(values) = m`` this produces a maximal-diversity profile:
    every value is proposed, and the profile is feasible whenever
    ``m <= max_values(n, t)``.
    """
    ordered = sorted(correct)
    return {pid: values[i % len(values)] for i, pid in enumerate(ordered)}


def block_proposals(
    correct: Iterable[int], values: Sequence[Any]
) -> dict[int, Any]:
    """Assign ``values`` in contiguous pid blocks (maximal diversity,
    minimal interleaving: low pids agree with their neighbours)."""
    ordered = sorted(correct)
    return {
        pid: values[i * len(values) // len(ordered)]
        for i, pid in enumerate(ordered)
    }


def skewed_proposals(
    correct: Iterable[int], values: Sequence[Any]
) -> dict[int, Any]:
    """A near-unanimous profile: every value appears, but all the slack
    goes to ``values[0]`` (one dissenting process per other value)."""
    ordered = sorted(correct)
    head = len(ordered) - (len(values) - 1)
    return {
        pid: values[0] if i < head else values[i - head + 1]
        for i, pid in enumerate(ordered)
    }


def unanimous_proposals(
    correct: Iterable[int], values: Sequence[Any]
) -> dict[int, Any]:
    """Everyone proposes ``values[0]`` (diversity 1, always feasible)."""
    return {pid: values[0] for pid in correct}


#: The ``proposals`` scenario axis: how a cell's value pool is dealt to
#: its correct processes.  Every profile is a pure function of the
#: sorted correct set and the cell's value list, so it is deterministic
#: and safe to reconstruct on the worker side of a process boundary.
PROPOSAL_PROFILES: dict[str, Callable[[Iterable[int], Sequence[Any]], dict[int, Any]]] = {
    "round_robin": standard_proposals,
    "block": block_proposals,
    "skewed": skewed_proposals,
    "unanimous": unanimous_proposals,
}


def normalize_profile(name: str) -> str:
    """Validate a proposal-profile name (the ``proposals`` axis codec)."""
    if name not in PROPOSAL_PROFILES:
        raise ValueError(
            f"unknown proposal profile {name!r} "
            f"(known: {', '.join(sorted(PROPOSAL_PROFILES))})"
        )
    return name


def proposal_profile(
    name: str,
) -> Callable[[Iterable[int], Sequence[Any]], dict[int, Any]]:
    """Look up a registered proposal profile by name."""
    return PROPOSAL_PROFILES[normalize_profile(name)]


def sweep_seeds(
    make_config: Callable[[int], RunConfig],
    seeds: Iterable[int],
    check_invariants: bool = True,
    on_result: Callable[[ConsensusRunResult], None] | None = None,
) -> list[ConsensusRunResult]:
    """Run one configuration across many seeds; returns all results.

    ``on_result`` is invoked once per finished run, in seed order — the
    same streaming contract as the matrix engine's
    :func:`~repro.orchestration.parallel.sweep_serial` /
    :func:`~repro.orchestration.parallel.sweep_parallel`, so callers can
    share one progress/aggregation path across all three
    (:func:`repro.analysis.reporting.aggregate` consumes the results).
    """
    results: list[ConsensusRunResult] = []
    for seed in seeds:
        result = run_consensus(make_config(seed), check_invariants=check_invariants)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned plain-text table (benchmark report output)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def feasible_value_count(n: int, t: int, requested: int) -> int:
    """Clamp a requested value-diversity to the feasibility bound."""
    return max(1, min(requested, max_values(n, t)))
