"""Virtual-time sweep profiler: where does sweep wall time actually go?

``benchmarks/results/history.txt`` caught the kernel getting *faster*
while end-to-end sweep throughput got *slower* — the classic sign that
the per-scenario harness (spec codec, cache keying, report
construction, JSONL encode), not the simulator, had become the
bottleneck.  This module makes that measurable instead of guessable, in
the spirit of the related work's "measure where latency actually
accrues before optimizing the consensus path" discipline (PAPERS.md).

Two instruments, one :class:`SweepProfiler`:

* **Wall-clock phase timers** around the harness stages every sweep
  backend runs per scenario — :data:`PHASE_EXPAND` (matrix expansion),
  :data:`PHASE_CACHE_KEY` (digest + store lookup),
  :data:`PHASE_BUILD_CONFIG`, :data:`PHASE_SIMULATE`,
  :data:`PHASE_REPORT` (outcome summarize + aggregation),
  :data:`PHASE_CACHE_PUT` and :data:`PHASE_JSONL`.  The phases tile the
  sweep, so their sum against the measured wall time (the
  :meth:`SweepProfiler.coverage` ratio) shows whether anything
  significant escaped the accounting.

* **A virtual-time step profiler** riding the zero-cost
  instrumentation bus (:mod:`repro.instrumentation`): a sink on the
  ``sim.step`` probe attributes the wall time between consecutive
  simulator events to the event that executed — labelled by the
  delivered message's ``tag`` for network deliveries and by the
  callback's qualified name otherwise.  That breaks the
  :data:`PHASE_SIMULATE` phase down *inside* the simulator, per
  protocol tag, without touching any kernel code: the kernel already
  publishes the probe, and with no profiler attached the call sites
  keep paying exactly one ``emit is None`` test.

Profiling is opt-in per sweep: the backends
(:mod:`repro.orchestration.parallel`) install the profiler on the
process-local :class:`~repro.orchestration.kernel.KernelContext` for
the duration of one sweep, and
:meth:`~repro.orchestration.kernel.KernelContext.fresh_bus` re-arms the
step sink before each run.  An unprofiled sweep executes the exact same
code paths with ``profiler is None`` checks — zero sinks, zero timers.

CLI faces: ``repro sweep --profile`` (breakdown table after any sweep)
and ``repro profile`` (dedicated command, also writes the
machine-readable ``BENCH_profile.json``).  See ``docs/profiling.md``.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .instrumentation import InstrumentationBus

__all__ = [
    "HARNESS_PHASES",
    "PHASE_BUILD_CONFIG",
    "PHASE_CACHE_KEY",
    "PHASE_CACHE_PUT",
    "PHASE_EXPAND",
    "PHASE_JSONL",
    "PHASE_POOL",
    "PHASE_REPORT",
    "PHASE_SIMULATE",
    "PhaseStat",
    "SweepProfiler",
]

#: The per-scenario harness stages, in sweep order.
PHASE_EXPAND = "expand"
PHASE_CACHE_KEY = "cache_key"
PHASE_BUILD_CONFIG = "build_config"
PHASE_SIMULATE = "simulate"
PHASE_REPORT = "report_construct"
PHASE_CACHE_PUT = "cache_put"
PHASE_JSONL = "jsonl_encode"
#: Parent-side pool overhead: shipping chunks, waiting on replies,
#: decoding result batches.  Only populates on the pooled backend.
PHASE_POOL = "pool_dispatch"

#: Canonical display order for the phase table.
HARNESS_PHASES = (
    PHASE_EXPAND,
    PHASE_CACHE_KEY,
    PHASE_BUILD_CONFIG,
    PHASE_SIMULATE,
    PHASE_POOL,
    PHASE_REPORT,
    PHASE_CACHE_PUT,
    PHASE_JSONL,
)


class PhaseStat:
    """Accumulated wall time and call count for one phase or sim label.

    ``blocks`` accumulates net ``sys.getallocatedblocks()`` deltas and
    only populates in allocation-profiling mode (``alloc=True``); the
    wall-time-only mode never touches it.
    """

    __slots__ = ("seconds", "calls", "blocks")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self.blocks = 0

    def add(self, seconds: float, calls: int = 1, blocks: int = 0) -> None:
        self.seconds += seconds
        self.calls += calls
        self.blocks += blocks

    def __repr__(self) -> str:
        return f"PhaseStat(seconds={self.seconds:.6f}, calls={self.calls})"


class _Phase:
    """Reusable timing scope: ``with profiler.phase(name): ...``.

    A plain object with ``__enter__``/``__exit__`` (no contextlib
    generator machinery) so the per-scenario cost of a profiled sweep
    stays two clock reads per phase.
    """

    __slots__ = ("_stat", "_clock", "_started")

    def __init__(self, stat: PhaseStat, clock: Callable[[], float]) -> None:
        self._stat = stat
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_Phase":
        self._started = self._clock()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stat.add(self._clock() - self._started)


class _AllocPhase:
    """Timing scope that also books the phase's net allocated-block delta.

    The allocation-mode twin of :class:`_Phase`: two clock reads plus
    two ``sys.getallocatedblocks()`` reads per phase.  Deltas are *net*
    (allocations minus frees inside the scope), which is the right
    number for "how much does this phase churn the allocator" — a phase
    that allocates and promptly frees shows near zero, a phase that
    builds retained structures shows its real footprint.
    """

    __slots__ = ("_stat", "_clock", "_started", "_blocks")

    def __init__(self, stat: PhaseStat, clock: Callable[[], float]) -> None:
        self._stat = stat
        self._clock = clock
        self._started = 0.0
        self._blocks = 0

    def __enter__(self) -> "_AllocPhase":
        self._started = self._clock()
        self._blocks = sys.getallocatedblocks()
        return self

    def __exit__(self, *exc: Any) -> None:
        blocks = sys.getallocatedblocks() - self._blocks
        self._stat.add(self._clock() - self._started, 1, blocks)


class _Window:
    """Re-entrant wall-window scope (see :meth:`SweepProfiler.measuring`)."""

    __slots__ = ("_profiler", "_opened")

    def __init__(self, profiler: "SweepProfiler") -> None:
        self._profiler = profiler
        self._opened = False

    def __enter__(self) -> "SweepProfiler":
        self._opened = self._profiler._started is None
        if self._opened:
            self._profiler.start()
        return self._profiler

    def __exit__(self, *exc: Any) -> None:
        if self._opened:
            self._profiler.stop()


class SweepProfiler:
    """Phase accounting plus per-tag virtual-time attribution.

    Args:
        clock: Wall-clock source (injectable for deterministic tests);
            defaults to :func:`time.perf_counter`.
        sim_steps: Whether to arm the ``sim.step`` sink (the per-tag
            breakdown inside :data:`PHASE_SIMULATE`).  Costs one clock
            read per simulator event while profiling; phase timers alone
            are nearly free.
        alloc: Allocation-profiling mode (``repro profile --alloc``).
            Phase scopes and the step sink additionally record net
            ``sys.getallocatedblocks()`` deltas, and the wall window
            runs under :mod:`tracemalloc` so :attr:`traced_peak_kib`
            reports the traced-memory high-water mark.  Noticeably
            slower than plain profiling (tracemalloc hooks every
            allocation) — never armed on an unprofiled sweep.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        sim_steps: bool = True,
        alloc: bool = False,
    ) -> None:
        self._clock = clock
        self.sim_steps = sim_steps
        self.alloc = alloc
        #: tracemalloc traced-memory high-water mark (KiB), alloc mode.
        self.traced_peak_kib = 0.0
        #: Net allocated-blocks delta across the wall window, alloc mode.
        self.blocks_delta = 0
        self._blocks_start = 0
        self._trace_started = False
        self.phases: dict[str, PhaseStat] = {}
        #: Wall time inside the simulator, keyed by event label
        #: (``tag:RB_ECHO`` for deliveries, callback qualname otherwise).
        self.sim_labels: dict[str, PhaseStat] = {}
        #: Simulator events observed by the step sink.
        self.sim_events = 0
        #: Runs the step sink was armed for.
        self.runs = 0
        self._started: float | None = None
        self._wall = 0.0
        # Pending attribution: (label, clock reading) of the event
        # whose execution is in progress.
        self._pending: tuple[str, float] | None = None

    # -- wall-clock window ----------------------------------------------

    def start(self) -> None:
        """Open the measured wall-time window (the whole sweep).

        A no-op while a window is already open, so nested scopes (a
        post-sweep :meth:`SweepResult.write_jsonl` inside a larger
        measured region) extend rather than reset the accounting.
        """
        if self._started is None:
            self._started = self._clock()
            if self.alloc:
                self._blocks_start = sys.getallocatedblocks()
                if not tracemalloc.is_tracing():
                    tracemalloc.start()
                    self._trace_started = True

    def stop(self) -> float:
        """Close the window; returns (and accumulates) its wall time."""
        if self._started is not None:
            self._wall += self._clock() - self._started
            self._started = None
            if self.alloc:
                self.blocks_delta += (
                    sys.getallocatedblocks() - self._blocks_start
                )
                if tracemalloc.is_tracing():
                    _, peak = tracemalloc.get_traced_memory()
                    if peak / 1024.0 > self.traced_peak_kib:
                        self.traced_peak_kib = peak / 1024.0
                    if self._trace_started:
                        tracemalloc.stop()
                        self._trace_started = False
        return self.wall_seconds

    @property
    def wall_seconds(self) -> float:
        """Measured wall time (running total across start/stop windows)."""
        if self._started is not None:
            return self._wall + self._clock() - self._started
        return self._wall

    def measuring(self) -> "_Window":
        """Scope that keeps the wall window open for its duration.

        Opens a window only when none is active (and closes only what it
        opened), so phase work that happens *after* a sweep returned —
        the JSONL persist, a post-hoc aggregation — still counts toward
        measured wall time instead of pushing coverage past 100%.
        """
        return _Window(self)

    # -- phase timers ----------------------------------------------------

    def phase(self, name: str) -> "_Phase | _AllocPhase":
        """A ``with``-scope adding its wall time to phase ``name``."""
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat()
        if self.alloc:
            return _AllocPhase(stat, self._clock)
        return _Phase(stat, self._clock)

    def add(
        self, name: str, seconds: float, calls: int = 1, blocks: int = 0
    ) -> None:
        """Credit ``seconds`` to phase ``name`` directly (e.g. worker-
        reported chunk wall time on the process-pool backend)."""
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat()
        stat.add(seconds, calls, blocks)

    def phase_seconds(self, name: str) -> float:
        stat = self.phases.get(name)
        return stat.seconds if stat is not None else 0.0

    def coverage(self) -> float:
        """Sum of phase times over measured wall time (0.0 when no wall
        window was recorded).  Values near 1.0 mean the phases explain
        the sweep; a low value means unaccounted harness work."""
        wall = self.wall_seconds
        if wall <= 0:
            return 0.0
        return sum(stat.seconds for stat in self.phases.values()) / wall

    # -- virtual-time step sink ------------------------------------------

    def arm(self, bus: "InstrumentationBus") -> None:
        """Attach the ``sim.step`` sink on ``bus`` for one run.

        Called by :meth:`KernelContext.fresh_bus` after the per-run
        ``bus.clear()``, so the sink survives the re-arm that strips
        ordinary observers.  Resets the pending attribution: wall time
        between runs (harness work) must never be booked to the last
        event of the previous run.
        """
        self._flush_pending()
        if self.sim_steps:
            from .instrumentation import SIM_STEP

            sink = self._on_step_alloc if self.alloc else self._on_step
            bus.probe(SIM_STEP).attach(sink)
            self.runs += 1

    def _on_step(self, handle: Any) -> None:
        now = self._clock()
        pending = self._pending
        if pending is not None:
            label, started = pending
            stat = self.sim_labels.get(label)
            if stat is None:
                stat = self.sim_labels[label] = PhaseStat()
            stat.add(now - started)
        self.sim_events += 1
        self._pending = (_event_label(handle), now)

    def _on_step_alloc(self, handle: Any) -> None:
        """Alloc-mode step sink: wall time *and* block delta per label."""
        now = self._clock()
        blocks = sys.getallocatedblocks()
        pending = self._pending
        if pending is not None:
            label, started, blocks0 = pending
            stat = self.sim_labels.get(label)
            if stat is None:
                stat = self.sim_labels[label] = PhaseStat()
            stat.add(now - started, 1, blocks - blocks0)
        self.sim_events += 1
        self._pending = (_event_label(handle), now, blocks)

    def _flush_pending(self) -> None:
        """Drop the attribution window left open by a run's final event
        (its cost cannot be separated from post-run harness work)."""
        if self._pending is not None:
            label = self._pending[0]
            stat = self.sim_labels.get(label)
            if stat is None:
                stat = self.sim_labels[label] = PhaseStat()
            stat.add(0.0)
            self._pending = None

    # -- cross-process merge ---------------------------------------------

    def export(self) -> dict[str, Any]:
        """Picklable snapshot of the accumulated accounting.

        The pooled sweep backend runs a short-lived profiler inside each
        worker chunk and ships this export back with the results;
        :meth:`merge_remote` folds it into the parent's profiler, so the
        phase table and per-tag breakdown cover worker-side work too.
        Wall-window state is deliberately excluded — the measured window
        is the parent's.
        """
        self._flush_pending()
        return {
            "phases": {
                name: (stat.seconds, stat.calls, stat.blocks)
                for name, stat in self.phases.items()
            },
            "sim_labels": {
                name: (stat.seconds, stat.calls, stat.blocks)
                for name, stat in self.sim_labels.items()
            },
            "sim_events": self.sim_events,
            "runs": self.runs,
        }

    def merge_remote(self, data: dict[str, Any]) -> None:
        """Fold a worker's :meth:`export` into this profiler."""
        for name, entry in data.get("phases", {}).items():
            blocks = entry[2] if len(entry) > 2 else 0
            self.add(name, entry[0], entry[1], blocks)
        for name, entry in data.get("sim_labels", {}).items():
            stat = self.sim_labels.get(name)
            if stat is None:
                stat = self.sim_labels[name] = PhaseStat()
            blocks = entry[2] if len(entry) > 2 else 0
            stat.add(entry[0], entry[1], blocks)
        self.sim_events += int(data.get("sim_events", 0))
        self.runs += int(data.get("runs", 0))

    # -- reporting -------------------------------------------------------

    def to_dict(self, top_labels: int = 20) -> dict[str, Any]:
        """Machine-readable profile (the ``BENCH_profile.json`` body).

        In allocation mode each phase/label additionally reports its
        net ``blocks`` delta, and a top-level ``alloc`` section carries
        the window-wide totals; the wall-time-only schema is unchanged
        (``tests/profiling/test_profile_schema.py`` pins it).
        """
        self._flush_pending()
        wall = self.wall_seconds
        alloc = self.alloc
        labels = sorted(
            self.sim_labels.items(), key=lambda kv: -kv[1].seconds
        )

        def phase_entry(stat: PhaseStat) -> dict[str, Any]:
            entry: dict[str, Any] = {
                "seconds": round(stat.seconds, 6),
                "calls": stat.calls,
            }
            if alloc:
                entry["blocks"] = stat.blocks
            return entry

        def label_entry(stat: PhaseStat) -> dict[str, Any]:
            entry: dict[str, Any] = {
                "seconds": round(stat.seconds, 6),
                "events": stat.calls,
            }
            if alloc:
                entry["blocks"] = stat.blocks
            return entry

        out = {
            "wall_seconds": round(wall, 6),
            "coverage": round(self.coverage(), 4),
            "phases": {
                name: phase_entry(stat)
                for name, stat in self._ordered_phases()
            },
            "sim": {
                "events": self.sim_events,
                "runs": self.runs,
                "labels": {
                    name: label_entry(stat)
                    for name, stat in labels[:top_labels]
                },
                "labels_truncated": max(0, len(labels) - top_labels),
            },
        }
        if alloc:
            out["alloc"] = {
                "blocks_delta": self.blocks_delta,
                "traced_peak_kib": round(self.traced_peak_kib, 1),
                "blocks_per_event": round(
                    sum(stat.blocks for stat in self.sim_labels.values())
                    / self.sim_events,
                    3,
                ) if self.sim_events else 0.0,
            }
        return out

    def render(self, top_labels: int = 12) -> str:
        """The human-readable per-phase / per-tag breakdown table."""
        from .orchestration.sweeps import format_table

        self._flush_pending()
        wall = self.wall_seconds
        alloc = self.alloc
        accounted = sum(stat.seconds for stat in self.phases.values())

        def pct(seconds: float) -> str:
            return f"{100.0 * seconds / wall:.1f}%" if wall > 0 else "-"

        phase_header = ["phase", "seconds", "calls", "of wall"]
        if alloc:
            phase_header.append("blocks")
        rows = []
        for name, stat in self._ordered_phases():
            row = [name, f"{stat.seconds:.4f}", stat.calls, pct(stat.seconds)]
            if alloc:
                row.append(f"{stat.blocks:+,}")
            rows.append(row)
        total_row = ["(total accounted)", f"{accounted:.4f}", "",
                     pct(accounted)]
        wall_row = ["(measured wall)", f"{wall:.4f}", "", "100.0%"]
        if alloc:
            total_row.append(
                f"{sum(stat.blocks for stat in self.phases.values()):+,}"
            )
            wall_row.append(f"{self.blocks_delta:+,}")
        rows.append(total_row)
        rows.append(wall_row)
        out = [format_table(phase_header, rows)]
        if self.sim_labels:
            labels = sorted(
                self.sim_labels.items(), key=lambda kv: -kv[1].seconds
            )
            sim_header = ["sim event", "seconds", "events", "of wall"]
            if alloc:
                sim_header.append("blocks/ev")
            sim_rows = []
            for name, stat in labels[:top_labels]:
                row = [
                    name, f"{stat.seconds:.4f}", stat.calls, pct(stat.seconds)
                ]
                if alloc:
                    per_event = stat.blocks / stat.calls if stat.calls else 0.0
                    row.append(f"{per_event:+.2f}")
                sim_rows.append(row)
            rest = labels[top_labels:]
            if rest:
                rest_seconds = sum(stat.seconds for _, stat in rest)
                rest_events = sum(stat.calls for _, stat in rest)
                rest_row = [
                    f"(+{len(rest)} more)", f"{rest_seconds:.4f}",
                    rest_events, pct(rest_seconds),
                ]
                if alloc:
                    rest_blocks = sum(stat.blocks for _, stat in rest)
                    per_event = rest_blocks / rest_events if rest_events else 0.0
                    rest_row.append(f"{per_event:+.2f}")
                sim_rows.append(rest_row)
            out.append("")
            out.append(
                f"inside {PHASE_SIMULATE} — wall time per simulator event "
                f"({self.sim_events} events over {self.runs} run(s)):"
            )
            out.append(format_table(sim_header, sim_rows))
        if alloc:
            out.append("")
            out.append(
                f"alloc: net blocks {self.blocks_delta:+,} over the window, "
                f"tracemalloc peak {self.traced_peak_kib:,.1f} KiB"
            )
        return "\n".join(out)

    def _ordered_phases(self) -> list[tuple[str, PhaseStat]]:
        """Phases in canonical harness order, then extras by cost."""
        ordered = [
            (name, self.phases[name])
            for name in HARNESS_PHASES
            if name in self.phases
        ]
        extras = sorted(
            (
                (name, stat)
                for name, stat in self.phases.items()
                if name not in HARNESS_PHASES
            ),
            key=lambda kv: -kv[1].seconds,
        )
        return ordered + extras

    def __repr__(self) -> str:
        return (
            f"SweepProfiler(phases={len(self.phases)}, "
            f"sim_events={self.sim_events}, wall={self.wall_seconds:.4f}s)"
        )


def _event_label(handle: Any) -> str:
    """A stable, low-cardinality label for one scheduled event.

    Network deliveries carry the :class:`~repro.net.messages.Message`
    as the callback's first argument — label those by protocol tag,
    which is what the throughput question is usually about.  Everything
    else (task steps, timers, predicate rechecks) falls back to the
    callback's qualified name.
    """
    args = getattr(handle, "_args", None)
    if args:
        tag = getattr(args[0], "tag", None)
        if tag is not None:
            return f"tag:{tag}"
    callback = getattr(handle, "_callback", None)
    return getattr(callback, "__qualname__", None) or repr(callback)
