"""Process runtime: event-driven processes and paper-semantics timers."""

from .process import Process
from .timers import RoundTimer

__all__ = ["Process", "RoundTimer"]
