"""The process runtime: mailboxes, handlers and predicate waits.

Every correct process in the paper's algorithms is an event-driven state
machine with two kinds of activity:

* ``when <message> ... do`` handlers — registered per message tag with
  :meth:`Process.register_handler`;
* blocking operations containing ``wait (<predicate>)`` lines — written as
  ``await self.wait_until(lambda: ...)``.

Predicates are re-evaluated after every handled message and whenever a
component (e.g. a timer callback) calls :meth:`Process.notify`, which is
exactly the paper's implicit model: local predicates change only when
local state changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Coroutine

from ..errors import ConfigurationError
from ..net.messages import Message
from ..sim.futures import Future
from ..sim.sync import ConditionVar
from ..sim.tasks import Task

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network
    from ..sim.loop import Simulator

__all__ = ["Process"]

HandlerFn = Callable[[Message], None]


class Process:
    """A correct process attached to the network.

    Protocol objects (reliable broadcast, adopt-commit, ...) bind to a
    process and register message handlers; the process dispatches each
    delivered message to the matching handler and then rechecks every
    pending ``wait_until`` predicate.
    """

    def __init__(self, pid: int, sim: "Simulator", network: "Network") -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self._handlers: dict[str, HandlerFn] = {}
        self._cond = ConditionVar(name=f"p{pid}")
        self._tasks: list[Task] = []
        #: Messages delivered to this process so far.
        self.delivered_count = 0
        network.register_process(pid, self._on_message)

    # ------------------------------------------------------------------
    # Handler registration and dispatch
    # ------------------------------------------------------------------
    def register_handler(self, tag: str, handler: HandlerFn) -> None:
        """Register the ``when <tag> ... do`` handler for a message tag."""
        if tag in self._handlers:
            raise ConfigurationError(
                f"process {self.pid}: handler for tag {tag!r} registered twice"
            )
        self._handlers[tag] = handler

    def _on_message(self, message: Message) -> None:
        self.delivered_count += 1
        handler = self._handlers.get(message.tag)
        if handler is not None:
            handler(message)
        # State may have changed: wake any satisfied ``wait`` lines.
        self._cond.recheck()

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait_until(self, predicate: Callable[[], Any]) -> Future:
        """Await a local predicate (the paper's ``wait (...)`` statement).

        Resolves with the predicate's truthy return value, so quorum
        predicates can hand back the witnessing message set.
        """
        return self._cond.wait_until(predicate)

    def notify(self) -> None:
        """Recheck pending predicates after a non-message state change.

        Must be called by timer callbacks and any other event that mutates
        protocol state outside a message handler.
        """
        self._cond.recheck()

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(self, dst: int, tag: str, payload: Any) -> None:
        """Point-to-point send (paper's ``send TAG(m) to p_j``)."""
        self.network.send(self.pid, dst, tag, payload)

    def broadcast(self, tag: str, payload: Any) -> None:
        """Best-effort broadcast: the same message to every process."""
        self.network.broadcast(self.pid, tag, payload)

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------
    def create_task(self, coro: Coroutine[Any, Any, Any], name: str = "") -> Task:
        """Run a protocol coroutine on behalf of this process."""
        task = self.sim.create_task(coro, name=name or f"p{self.pid}")
        self._tasks.append(task)
        return task

    def cancel_tasks(self) -> None:
        """Cancel all coroutines started via :meth:`create_task`."""
        for task in self._tasks:
            if not task.done():
                task.cancel()

    def __repr__(self) -> str:
        return f"Process(pid={self.pid})"
