"""Round timers with the semantics of Figure 3 (lines 5 and 15-17).

A timer can be *set* with a duration, can *expire*, and can be *disabled*.
Once expired, it stays expired (the EA algorithm inspects
``timer.expired`` after disabling it, line 17); disabling an unset or
running timer prevents any future expiry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import InvalidStateError
from ..sim.handles import EventHandle

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.loop import Simulator

__all__ = ["RoundTimer"]


class RoundTimer:
    """A one-shot virtual-time timer.

    States: *unset* -> *running* -> (*expired* | *disabled*).
    ``on_expire`` runs at expiry time, before ``expired`` readers observe
    the flag at later instants.
    """

    __slots__ = ("_sim", "_on_expire", "_handle", "_set_at", "_expired", "_disabled")

    def __init__(
        self, sim: "Simulator", on_expire: Callable[[], None] | None = None
    ) -> None:
        self._sim = sim
        self._on_expire = on_expire
        self._handle: EventHandle | None = None
        self._set_at: float | None = None
        self._expired = False
        self._disabled = False

    @property
    def running(self) -> bool:
        """True while set and neither expired nor disabled."""
        return self._handle is not None and not self._expired and not self._disabled

    @property
    def expired(self) -> bool:
        """True once the timer has fired (sticky, survives disable)."""
        return self._expired

    @property
    def disabled(self) -> bool:
        """True once :meth:`disable` was called."""
        return self._disabled

    @property
    def was_set(self) -> bool:
        """True once :meth:`set` was called (in any later state)."""
        return self._set_at is not None

    def set(self, duration: float) -> None:
        """Arm the timer to fire ``duration`` time units from now.

        A timer can be set only once; the EA object uses one timer per
        round (``timer_i[r]``).
        """
        if self._set_at is not None:
            raise InvalidStateError("round timer set twice")
        if self._disabled:
            # Disabled before being set (possible if EA_COORD arrives before
            # the proposer reaches line 5): stay silent forever.
            return
        self._set_at = self._sim.now
        self._handle = self._sim.call_later(max(duration, 0.0), self._fire)

    def disable(self) -> None:
        """Stop the timer from firing later; ``expired`` stays as-is."""
        self._disabled = True
        if self._handle is not None and not self._expired:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._disabled:
            return
        self._expired = True
        if self._on_expire is not None:
            self._on_expire()

    def __repr__(self) -> str:
        if self._expired:
            state = "expired"
        elif self._disabled:
            state = "disabled"
        elif self._handle is not None:
            state = "running"
        else:
            state = "unset"
        return f"RoundTimer({state})"
