"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs: a
virtual clock, an event heap with total deterministic order, awaitable
futures/tasks, predicate-based waiting, and reproducible hierarchical
random streams.
"""

from .clock import VirtualClock
from .futures import Future
from .handles import EventHandle
from .loop import Simulator
from .random import RngRegistry, derive_seed, substream
from .sync import ConditionVar, SimEvent
from .tasks import Task, gather

__all__ = [
    "VirtualClock",
    "Future",
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "derive_seed",
    "substream",
    "ConditionVar",
    "SimEvent",
    "Task",
    "gather",
]
