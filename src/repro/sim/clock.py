"""Virtual clock for the discrete-event simulator.

The clock only moves forward, and only when the simulator processes an
event scheduled at a later instant.  All protocol timers and channel
delays are expressed in these virtual time units; the paper's bound
``delta`` and the round timers of Figure 3 share this unit.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    The clock starts at ``0.0``.  Only the simulator is expected to call
    :meth:`advance_to`; protocol code reads :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`~repro.errors.SimulationError` if ``time`` lies in
        the past, which would indicate a scheduling bug.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {time!r} < {self._now!r}"
            )
        self._now = float(time)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
