"""Awaitable futures for the virtual-time simulator.

These mirror the small useful core of :mod:`asyncio` futures, but are
driven by :class:`repro.sim.loop.Simulator` instead of a wall-clock event
loop, so protocol code written with ``async``/``await`` runs entirely in
deterministic virtual time.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..errors import CancelledError, InvalidStateError

__all__ = ["Future"]

_PENDING = "PENDING"
_DONE = "DONE"
_CANCELLED = "CANCELLED"


class Future:
    """A one-shot container for a value that will exist later in virtual time.

    A future is *done* once :meth:`set_result`, :meth:`set_exception` or
    :meth:`cancel` has been called.  Done callbacks run synchronously at
    completion time (completion always happens inside a simulator event, so
    "synchronously" still means "at one virtual instant").
    """

    __slots__ = ("_state", "_result", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def done(self) -> bool:
        """True once a result, exception or cancellation has been set."""
        return self._state != _PENDING

    def cancelled(self) -> bool:
        """True if the future was cancelled."""
        return self._state == _CANCELLED

    def result(self) -> Any:
        """Return the result, raising the stored exception if there is one."""
        if self._state == _CANCELLED:
            raise CancelledError(f"future {self.name or id(self)} was cancelled")
        if self._state == _PENDING:
            raise InvalidStateError("result() called on a pending future")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        """Return the stored exception (or None) without raising it."""
        if self._state == _CANCELLED:
            raise CancelledError(f"future {self.name or id(self)} was cancelled")
        if self._state == _PENDING:
            raise InvalidStateError("exception() called on a pending future")
        return self._exception

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def set_result(self, value: Any) -> None:
        """Complete the future successfully with ``value``."""
        if self._state != _PENDING:
            raise InvalidStateError(f"future already {self._state}")
        self._result = value
        self._state = _DONE
        self._invoke_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Complete the future with an exception."""
        if self._state != _PENDING:
            raise InvalidStateError(f"future already {self._state}")
        if isinstance(exc, type):
            exc = exc()
        self._exception = exc
        self._state = _DONE
        self._invoke_callbacks()

    def cancel(self) -> bool:
        """Cancel the future.  Returns False if it was already done."""
        if self._state != _PENDING:
            return False
        self._state = _CANCELLED
        self._invoke_callbacks()
        return True

    # ------------------------------------------------------------------
    # Callbacks and await protocol
    # ------------------------------------------------------------------
    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when the future completes.

        If the future is already done the callback runs immediately.
        """
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_done_callback(self, callback: Callable[["Future"], None]) -> int:
        """Remove all registered instances of ``callback``; return the count."""
        before = len(self._callbacks)
        # Equality (not identity): bound methods compare equal across
        # attribute accesses while being distinct objects.
        self._callbacks = [cb for cb in self._callbacks if cb != callback]
        return before - len(self._callbacks)

    def _invoke_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __await__(self) -> Generator["Future", None, Any]:
        if not self.done():
            yield self
        return self.result()

    __iter__ = __await__

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Future{label} {self._state}>"
