"""Cancellable handles for scheduled simulator callbacks."""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["EventHandle"]


class EventHandle:
    """A callback scheduled at a virtual-time instant.

    Handles are ordered by ``(time, seq)`` where ``seq`` is a global
    scheduling sequence number; this makes event execution order fully
    deterministic (FIFO among events scheduled for the same instant).

    The scheduler keeps same-instant handles in a FIFO ready queue and
    future handles in a heap; ``_loop`` points back at the simulator
    only while the handle sits in the *heap*, so that :meth:`cancel`
    can feed the scheduler's lazy-compaction accounting without the
    ready fast path paying for it.

    ``_pooled`` marks handles owned by the scheduler's freelist
    (:mod:`repro.sim.pool`): they are created only by the simulator's
    internal scheduling entry points, never escape the kernel, and are
    re-armed in place after their callback runs.  Handles returned by
    the public ``call_soon``/``call_at``/``call_later`` API are never
    pooled — callers may hold and :meth:`cancel` them at any time.  A
    pooled handle's ``_args`` may be a reusable single-slot *list*
    (the preallocated argument slot of the delivery fast path) instead
    of a tuple; ``_run`` unpacks either.
    """

    __slots__ = (
        "time", "seq", "_callback", "_args", "_cancelled", "_loop", "_pooled"
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._loop = None
        self._pooled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the callback from running.

        Cancelling an already-executed or already-cancelled handle is a
        harmless no-op, matching the asyncio convention.
        """
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references eagerly so cancelled timers do not pin protocol
        # objects in memory for the rest of the run.
        self._callback = _noop
        self._args = ()
        loop = self._loop
        if loop is not None:
            self._loop = None
            loop._heap_cancelled += 1

    def _run(self) -> None:
        """Execute the callback (simulator internal)."""
        self._callback(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"EventHandle(time={self.time!r}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Replacement callback installed by :meth:`EventHandle.cancel`."""
