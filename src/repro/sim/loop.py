"""The deterministic discrete-event simulator.

:class:`Simulator` owns a virtual clock and a **two-tier** event queue.
Events are totally ordered by ``(time, sequence-number)``: two events
scheduled for the same virtual instant run in the order they were
scheduled, so a run is a pure function of its configuration and seeds.

The two tiers exploit the paper's system model (Section 2.1): local
processing time is zero relative to message delays, so real runs are
dominated by cascades of *same-instant* events — task steps, predicate
rechecks, zero-delay callbacks.  Those go through a FIFO ready deque
(:meth:`call_soon`, and any :meth:`call_at` for the current instant) at
O(1) per event; only genuinely future events (timers, message
deliveries) pay the heap's O(log n), and heap entries are
``(time, seq, handle)`` tuples so even those comparisons run in C.  The
two tiers are merged by ``(time, seq)`` at execution, so the observable
order is *identical* to a single global priority queue — golden-trace
fixtures (``tests/golden/``) pin this bit for bit.

Cancelled events are removed lazily: cancellation just flags the handle
(and, for heap entries, bumps a counter), tombstones are skipped when
they surface, and the heap is compacted in one pass when more than half
of it is dead — so protocol code can cancel thousands of round timers
without ever paying O(n) per cancel.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Coroutine

from ..errors import DeadlineExceeded, DeadlockError, SimulationError
from ..instrumentation import SIM_STEP, InstrumentationBus
from .clock import VirtualClock
from .futures import _PENDING, Future
from .handles import EventHandle
from .pool import MAX_POOL, ObjectPools
from .tasks import Task

__all__ = ["Simulator"]

#: Compact the heap only when it holds at least this many tombstones
#: (and they outnumber the live entries) — small heaps never bother.
_MIN_HEAP_COMPACTION = 64


class Simulator:
    """A virtual-time event loop for distributed-protocol simulation.

    Typical use::

        sim = Simulator()
        task = sim.create_task(protocol.run())
        result = sim.run_until_complete(task, max_time=10_000)

    ``bus`` shares an :class:`~repro.instrumentation.InstrumentationBus`
    with the other kernel components of a run; the simulator publishes
    the ``sim.step`` probe on it (payload: the handle about to run).
    With no sink attached the probe costs one pointer check per event.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        bus: InstrumentationBus | None = None,
        pools: ObjectPools | None = None,
    ) -> None:
        self._clock = VirtualClock(start_time)
        #: Future events: ``(time, seq, handle)`` tuples (C-compared).
        self._heap: list[tuple[float, int, EventHandle]] = []
        #: Same-instant events, FIFO (the fast tier).
        self._ready: deque[EventHandle] = deque()
        self._next_seq = 0
        self._heap_cancelled = 0
        self.bus = bus if bus is not None else InstrumentationBus()
        self._step_probe = self.bus.probe(SIM_STEP)
        #: Object freelists (shared with the network and, in sweeps,
        #: with the per-worker :class:`KernelContext` so reuse survives
        #: across runs).  A standalone simulator gets a private set.
        self.pools = pools if pools is not None else ObjectPools()
        #: Total events executed so far (cancelled events excluded).
        self.events_processed = 0
        #: Schedule chooser (exhaustive checking): when set, ready-tier
        #: pops go through :meth:`_pop_next_chosen` so delivery order
        #: becomes an explicit choice instead of FIFO.  ``None`` (the
        #: default) keeps every hot path untouched.
        self._chooser: Any | None = None

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._clock._now

    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at virtual time ``time``."""
        now = self._clock._now
        time = float(time)
        if time < now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < {now!r}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        if time == now:
            # Same-instant events take the FIFO fast tier: no heap, no
            # log-n, and (time, seq) order is preserved by construction.
            self._ready.append(handle)
        else:
            handle._loop = self
            cancelled = self._heap_cancelled
            if cancelled > _MIN_HEAP_COMPACTION and cancelled * 2 > len(self._heap):
                self._compact_heap()
            heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def call_later(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._clock._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant (FIFO)."""
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = EventHandle(self._clock._now, seq, callback, args)
        self._ready.append(handle)
        return handle

    # ------------------------------------------------------------------
    # Pooled scheduling (kernel-internal fast paths)
    # ------------------------------------------------------------------
    # The two entry points below return nothing and recycle their
    # handles through ``self.pools`` right after the callback runs.
    # They are safe only because their handles never escape the kernel:
    # nobody can hold one, so nobody can cancel one after reuse.  Public
    # scheduling stays on call_soon/call_at, which allocate caller-owned
    # handles.

    def schedule_delivery(
        self, time: float, callback: Callable[..., Any], arg: Any
    ) -> None:
        """Schedule ``callback(arg)`` on a recycled single-arg handle.

        The network's delivery path: ``time`` must already be clamped to
        ``>= now`` (channels guarantee it), and the handle's argument
        travels in a reusable one-slot list — the preallocated argument
        slot that replaces the per-delivery ``(message,)`` tuple.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        pools = self.pools
        pool = pools.handles
        if pool:
            handle = pool.pop()
            pools.handles_reused += 1
            handle.time = time
            handle.seq = seq
            handle._callback = callback
            args = handle._args
            if type(args) is list:
                args[0] = arg
            else:
                handle._args = [arg]
            handle._cancelled = False
        else:
            pools.handles_created += 1
            handle = EventHandle(time, seq, callback, [arg])
            handle._pooled = True
        if time == self._clock._now:
            self._ready.append(handle)
        else:
            # No ``_loop`` backref: pooled handles are never cancelled,
            # so they never feed the lazy-compaction accounting.
            heapq.heappush(self._heap, (time, seq, handle))

    def call_soon_pooled(
        self, callback: Callable[..., Any], args: tuple[Any, ...] = ()
    ) -> None:
        """Schedule ``callback(*args)`` now, on a recycled handle.

        ``args`` is taken by reference (pass a constant tuple on hot
        paths).  Used by the task-stepping machinery, whose handles are
        always discarded at the call site.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        pools = self.pools
        pool = pools.handles
        if pool:
            handle = pool.pop()
            pools.handles_reused += 1
            handle.time = self._clock._now
            handle.seq = seq
            handle._callback = callback
            handle._args = args
            handle._cancelled = False
        else:
            pools.handles_created += 1
            handle = EventHandle(self._clock._now, seq, callback, args)
            handle._pooled = True
        self._ready.append(handle)

    def _compact_heap(self) -> None:
        """Drop every tombstone from the heap in one O(n) pass.

        In place (slice assignment), never rebinding ``self._heap``:
        the ``run_until_complete`` hot loop holds a local alias, and a
        rebound list would silently strand events scheduled after a
        mid-run compaction.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2]._cancelled]
        heapq.heapify(heap)
        self._heap_cancelled = 0

    # ------------------------------------------------------------------
    # Coroutines
    # ------------------------------------------------------------------
    def create_task(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> Task:
        """Wrap ``coro`` in a :class:`~repro.sim.tasks.Task` and schedule it."""
        task = Task(coro, self, name=name)
        chooser = self._chooser
        if chooser is not None:
            on_task = getattr(chooser, "on_task", None)
            if on_task is not None:
                on_task(task)
        return task

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves ``delay`` time units from now."""
        fut = Future(name=f"sleep({delay})")
        handle = self.call_later(delay, _resolve_sleep, fut)
        fut.add_done_callback(lambda f: handle.cancel() if f.cancelled() else None)
        return fut

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self) -> EventHandle | None:
        """Remove and return the next live handle in (time, seq) order,
        advancing the clock to it; ``None`` when both tiers are empty."""
        ready = self._ready
        heap = self._heap
        # Skim tombstones so the tier merge below compares live events.
        while ready and ready[0]._cancelled:
            ready.popleft()
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self._heap_cancelled -= 1
        if ready:
            # Ready events sit at the current instant; a heap entry can
            # only precede them when it was scheduled for this same
            # instant earlier (lower seq) — merge by (time, seq).
            first = ready[0]
            if heap and (
                heap[0][0] < first.time
                or (heap[0][0] == first.time and heap[0][1] < first.seq)
            ):
                handle = heapq.heappop(heap)[2]
                handle._loop = None
            else:
                handle = ready.popleft()
            return handle
        if heap:
            handle = heapq.heappop(heap)[2]
            handle._loop = None
            # Monotone by heap order; bypass advance_to's backward check.
            self._clock._now = handle.time
            return handle
        return None

    def set_chooser(self, chooser: Any | None) -> None:
        """Install (or clear) a schedule chooser.

        A chooser exposes the scheduler's one remaining degree of freedom
        — which same-instant ready event runs next — as an explicit
        decision.  The protocol (duck-typed; see
        :mod:`repro.checking.choice`):

        * ``is_choice(handle) -> bool``: whether a ready handle is a
          *choice point* (a cross-process message delivery) rather than
          an internal event (task step, callback, self-delivery), which
          always runs eagerly in FIFO order;
        * ``choose(candidates) -> int``: pick the next handle when every
          live ready handle is a choice (called even for singletons;
          choosers treat a lone candidate as a forced move that consumes
          no schedule index);
        * optionally ``on_task(task)``: observe task creation (the
          checker fingerprints coroutine stacks).

        With a chooser installed, the ready tier drains fully before any
        heap entry runs — heap timers fire only at ready-quiescence.
        This is the check-mode fragment: same-instant cascades always
        outrun positive-delay timers, which is exactly how the sampling
        stack behaves for instant deliveries.
        """
        self._chooser = chooser

    def _pop_next_chosen(self) -> EventHandle | None:
        """The chooser-mode variant of :meth:`_pop_next`.

        Internal (non-choice) ready events run first, in FIFO order;
        when only choice events remain, the chooser picks one.  The heap
        is consulted only once the ready tier is empty, so timers fire
        at quiescence regardless of their (time, seq) rank against
        same-instant ready entries — part of the check-mode contract
        (exploration and replay agree on it, so runs stay bit-identical).
        """
        ready = self._ready
        while ready and ready[0]._cancelled:
            ready.popleft()
        if not ready:
            return self._pop_next()
        chooser = self._chooser
        is_choice = chooser.is_choice
        candidates: list[EventHandle] = []
        for handle in ready:
            if handle._cancelled:
                continue
            if not is_choice(handle):
                ready.remove(handle)  # identity-based: no __eq__ on handles
                return handle
            candidates.append(handle)
        chosen = candidates[chooser.choose(candidates)]
        ready.remove(chosen)
        return chosen

    def step(self) -> bool:
        """Run the next scheduled event; return False if none remain."""
        if self._chooser is not None:
            handle = self._pop_next_chosen()
        else:
            handle = self._pop_next()
        if handle is None:
            return False
        self.events_processed += 1
        emit = self._step_probe.emit
        if emit is not None:
            emit(handle)
        handle._run()
        if handle._pooled:
            self._release_handle(handle)
        return True

    def _release_handle(self, handle: EventHandle) -> None:
        """Retire an executed pooled handle into the freelist.

        Clears the callback (and the argument slot's payload) so retired
        handles never pin protocol objects between reuses.
        """
        handle._callback = _noop_release
        args = handle._args
        if type(args) is list:
            args[0] = None
        else:
            handle._args = ()
        pool = self.pools.handles
        if len(pool) < MAX_POOL:
            pool.append(handle)

    def peek_time(self) -> float | None:
        """Virtual time of the next pending event, or None if idle."""
        ready = self._ready
        while ready and ready[0]._cancelled:
            ready.popleft()
        if ready:
            # Ready entries are always at the current instant, which no
            # live heap entry can precede.
            return ready[0].time
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self._heap_cancelled -= 1
        return heap[0][0] if heap else None

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events until the queue drains.

        ``until`` bounds virtual time (events after it stay queued and the
        clock advances to ``until``); ``max_events`` bounds the number of
        events executed and raises :class:`DeadlineExceeded` when hit.

        Like :meth:`run_until_complete`, the two-tier pop is inlined:
        this is the loop the kernel microbenchmarks (and any protocol
        driven to quiescence rather than to a future) spend their time
        in, and going through ``peek_time()`` + ``step()`` per event
        paid the tombstone skim and the tier merge twice.  Budget
        checks still run against the *peeked* next event, which stays
        queued when a budget trips — observable behaviour (event order,
        clock advance, error text) is unchanged.
        """
        if self._chooser is not None:
            return self._run_chosen(until, max_events)
        executed = 0
        ready = self._ready
        heap = self._heap
        clock = self._clock
        probe = self._step_probe
        heappop = heapq.heappop
        handle_pool = self.pools.handles
        while True:
            # -- peek (skimming tombstones) --------------------------------
            while ready and ready[0]._cancelled:
                ready.popleft()
            while heap and heap[0][2]._cancelled:
                # Mass cancellation (a protocol dropping its round
                # timers) surfaces here as a tombstone-dominated heap:
                # one O(n) compaction beats popping them one by one.
                cancelled = self._heap_cancelled
                if cancelled > _MIN_HEAP_COMPACTION and cancelled * 2 > len(heap):
                    self._compact_heap()
                    break
                heappop(heap)
                self._heap_cancelled -= 1
            if ready:
                first = ready[0]
                from_heap = heap and (
                    heap[0][0] < first.time
                    or (heap[0][0] == first.time and heap[0][1] < first.seq)
                )
                next_time = heap[0][0] if from_heap else first.time
            elif heap:
                from_heap = True
                next_time = heap[0][0]
            else:
                break
            # -- budgets (checked before the event is dequeued) ------------
            if until is not None and next_time > until:
                self._clock.advance_to(until)
                return
            if max_events is not None and executed >= max_events:
                raise DeadlineExceeded(
                    f"run() exceeded max_events={max_events} at t={self.now}"
                )
            # -- pop + run -------------------------------------------------
            if from_heap:
                handle = heappop(heap)[2]
                handle._loop = None
                if next_time != clock._now:
                    clock._now = next_time  # monotone by heap order
            else:
                handle = ready.popleft()
            self.events_processed += 1
            executed += 1
            emit = probe.emit
            if emit is not None:
                emit(handle)
            handle._run()
            if handle._pooled:
                # Retire into the freelist (inlined _release_handle).
                handle._callback = _noop_release
                args = handle._args
                if type(args) is list:
                    args[0] = None
                else:
                    handle._args = ()
                if len(handle_pool) < MAX_POOL:
                    handle_pool.append(handle)
        if until is not None and until > self._clock._now:
            self._clock.advance_to(until)

    def run_until_complete(
        self,
        future: Future,
        max_time: float | None = None,
        max_events: int | None = None,
    ) -> Any:
        """Drive the simulation until ``future`` completes; return its result.

        Raises :class:`DeadlockError` if the event queue drains first, and
        :class:`DeadlineExceeded` if ``max_time`` (virtual) or
        ``max_events`` would be exceeded.

        This is the sweep engine's innermost loop, so the two-tier pop is
        inlined here: budget checks run against the *peeked* next event,
        which stays queued if a budget trips (exactly the pre-refactor
        contract).
        """
        if self._chooser is not None:
            return self._run_until_complete_chosen(future, max_time, max_events)
        executed = 0
        ready = self._ready
        heap = self._heap
        clock = self._clock
        probe = self._step_probe
        heappop = heapq.heappop
        handle_pool = self.pools.handles
        while future._state is _PENDING:
            # -- peek (skimming tombstones) --------------------------------
            while ready and ready[0]._cancelled:
                ready.popleft()
            while heap and heap[0][2]._cancelled:
                cancelled = self._heap_cancelled
                if cancelled > _MIN_HEAP_COMPACTION and cancelled * 2 > len(heap):
                    self._compact_heap()
                    break
                heappop(heap)
                self._heap_cancelled -= 1
            if ready:
                first = ready[0]
                from_heap = heap and (
                    heap[0][0] < first.time
                    or (heap[0][0] == first.time and heap[0][1] < first.seq)
                )
                next_time = heap[0][0] if from_heap else first.time
            elif heap:
                from_heap = True
                next_time = heap[0][0]
            else:
                raise DeadlockError(
                    f"event queue drained at t={self.now} while waiting for "
                    f"{future!r}"
                )
            # -- budgets (checked before the event is dequeued) ------------
            if max_time is not None and next_time > max_time:
                raise DeadlineExceeded(
                    f"virtual deadline {max_time} reached while waiting for "
                    f"{future!r}"
                )
            if max_events is not None and executed >= max_events:
                raise DeadlineExceeded(
                    f"event budget {max_events} exhausted while waiting for "
                    f"{future!r}"
                )
            # -- pop + run -------------------------------------------------
            if from_heap:
                handle = heappop(heap)[2]
                handle._loop = None
                if next_time != clock._now:
                    clock._now = next_time  # monotone by heap order
            else:
                handle = ready.popleft()
            self.events_processed += 1
            executed += 1
            emit = probe.emit
            if emit is not None:
                emit(handle)
            handle._run()
            if handle._pooled:
                # Retire into the freelist (inlined _release_handle).
                handle._callback = _noop_release
                args = handle._args
                if type(args) is list:
                    args[0] = None
                else:
                    handle._args = ()
                if len(handle_pool) < MAX_POOL:
                    handle_pool.append(handle)
        return future.result()

    def _run_chosen(
        self, until: float | None, max_events: int | None
    ) -> None:
        """Chooser-mode :meth:`run`: per-event ``step()`` so every pop
        routes through the chooser (exploration rates dominate the loop
        overhead, so nothing is inlined here)."""
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._clock.advance_to(until)
                return
            if max_events is not None and executed >= max_events:
                raise DeadlineExceeded(
                    f"run() exceeded max_events={max_events} at t={self.now}"
                )
            self.step()
            executed += 1
        if until is not None and until > self._clock._now:
            self._clock.advance_to(until)

    def _run_until_complete_chosen(
        self,
        future: Future,
        max_time: float | None,
        max_events: int | None,
    ) -> Any:
        """Chooser-mode :meth:`run_until_complete` (same budget contract,
        same error texts, per-event ``step()`` for the chooser)."""
        executed = 0
        while future._state is _PENDING:
            next_time = self.peek_time()
            if next_time is None:
                raise DeadlockError(
                    f"event queue drained at t={self.now} while waiting for "
                    f"{future!r}"
                )
            if max_time is not None and next_time > max_time:
                raise DeadlineExceeded(
                    f"virtual deadline {max_time} reached while waiting for "
                    f"{future!r}"
                )
            if max_events is not None and executed >= max_events:
                raise DeadlineExceeded(
                    f"event budget {max_events} exhausted while waiting for "
                    f"{future!r}"
                )
            self.step()
            executed += 1
        return future.result()

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for handle in self._ready if not handle._cancelled) + sum(
            1 for entry in self._heap if not entry[2]._cancelled
        )

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, pending={self.pending_events})"


def _resolve_sleep(fut: Future) -> None:
    if not fut.done():
        fut.set_result(None)


def _noop_release(*_args: Any) -> None:
    """Placeholder callback installed on retired pooled handles."""
