"""The deterministic discrete-event simulator.

:class:`Simulator` owns a virtual clock and a priority queue of scheduled
callbacks.  Events are ordered by ``(time, sequence-number)``: two events
scheduled for the same virtual instant run in the order they were
scheduled, so a run is a pure function of its configuration and seeds.

The paper's system model (Section 2.1) assumes local processing time is
zero relative to message delays; accordingly, protocol handlers run
"instantaneously" at the virtual instant their triggering message arrives.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Coroutine

from ..errors import DeadlineExceeded, DeadlockError, SimulationError
from .clock import VirtualClock
from .futures import Future
from .handles import EventHandle
from .tasks import Task

__all__ = ["Simulator"]


class Simulator:
    """A virtual-time event loop for distributed-protocol simulation.

    Typical use::

        sim = Simulator()
        task = sim.create_task(protocol.run())
        result = sim.run_until_complete(task, max_time=10_000)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._clock = VirtualClock(start_time)
        self._heap: list[EventHandle] = []
        self._next_seq = 0
        #: Total events executed so far (cancelled events excluded).
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._clock.now

    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at virtual time ``time``."""
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < {self._clock.now!r}"
            )
        handle = EventHandle(float(time), self._next_seq, callback, args)
        self._next_seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def call_later(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._clock.now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant (FIFO)."""
        return self.call_at(self._clock.now, callback, *args)

    # ------------------------------------------------------------------
    # Coroutines
    # ------------------------------------------------------------------
    def create_task(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> Task:
        """Wrap ``coro`` in a :class:`~repro.sim.tasks.Task` and schedule it."""
        return Task(coro, self, name=name)

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves ``delay`` time units from now."""
        fut = Future(name=f"sleep({delay})")
        handle = self.call_later(delay, _resolve_sleep, fut)
        fut.add_done_callback(lambda f: handle.cancel() if f.cancelled() else None)
        return fut

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled event; return False if none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._clock.advance_to(handle.time)
            self.events_processed += 1
            handle._run()
            return True
        return False

    def peek_time(self) -> float | None:
        """Virtual time of the next pending event, or None if idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events until the queue drains.

        ``until`` bounds virtual time (events after it stay queued and the
        clock advances to ``until``); ``max_events`` bounds the number of
        events executed and raises :class:`DeadlineExceeded` when hit.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._clock.advance_to(until)
                return
            if max_events is not None and executed >= max_events:
                raise DeadlineExceeded(
                    f"run() exceeded max_events={max_events} at t={self.now}"
                )
            self.step()
            executed += 1
        if until is not None and until > self._clock.now:
            self._clock.advance_to(until)

    def run_until_complete(
        self,
        future: Future,
        max_time: float | None = None,
        max_events: int | None = None,
    ) -> Any:
        """Drive the simulation until ``future`` completes; return its result.

        Raises :class:`DeadlockError` if the event queue drains first, and
        :class:`DeadlineExceeded` if ``max_time`` (virtual) or
        ``max_events`` would be exceeded.
        """
        executed = 0
        while not future.done():
            next_time = self.peek_time()
            if next_time is None:
                raise DeadlockError(
                    f"event queue drained at t={self.now} while waiting for "
                    f"{future!r}"
                )
            if max_time is not None and next_time > max_time:
                raise DeadlineExceeded(
                    f"virtual deadline {max_time} reached while waiting for "
                    f"{future!r}"
                )
            if max_events is not None and executed >= max_events:
                raise DeadlineExceeded(
                    f"event budget {max_events} exhausted while waiting for "
                    f"{future!r}"
                )
            self.step()
            executed += 1
        return future.result()

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for handle in self._heap if not handle.cancelled)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, pending={self.pending_events})"


def _resolve_sleep(fut: Future) -> None:
    if not fut.done():
        fut.set_result(None)
