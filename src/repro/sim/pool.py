"""Per-context object freelists for the allocation-lean kernel.

Under the paper's system model (Section 2.1) a run is dominated by
dense message traffic: every simulator event on the hot path used to
allocate a fresh :class:`~repro.net.messages.Message`, a fresh
:class:`~repro.sim.handles.EventHandle` and a per-delivery argument
tuple, all of which became garbage microseconds later.  The related
consensus-layer work (PAPERS.md) makes the same observation for pod's
delivery path: per-message work must stay *constant-allocation* or
allocator/GC churn becomes the throughput ceiling long before the
protocol logic does.

:class:`ObjectPools` is the shared home for that recycled state:

* **handle freelist** — retired scheduler handles, re-armed in place by
  the simulator's pooled scheduling entry points
  (:meth:`~repro.sim.loop.Simulator.schedule_delivery`,
  :meth:`~repro.sim.loop.Simulator.call_soon_pooled`) and released by
  the run loops right after the callback returns;
* **message freelist** — retired network messages, recycled by
  :class:`~repro.net.network.Network` when it runs in ``recycle`` mode
  (release happens after the delivery handler returns, and *never* for
  a message that was handed to an instrumentation sink — see the
  copy-on-emit contract in :mod:`repro.instrumentation`);
* **tag intern table** — protocol tags interned once per context so
  every counter/handler dict keyed by tag compares by pointer;
* **pid tuples** — the ``1..n`` destination ids materialized once per
  ``n``, so broadcast fan-outs iterate shared int objects.

One :class:`ObjectPools` lives on each
:class:`~repro.orchestration.kernel.KernelContext` (so freelists stay
warm across every scenario a sweep worker executes) and a standalone
:class:`~repro.sim.loop.Simulator` creates a private one (so even a
bare microbench reaches steady-state reuse after the first few events).

The ``*_created`` / ``*_reused`` counters are exact and deterministic —
they are the kernel's own accounting, not a sampling profiler — which
makes them the right signal for the allocation regression gate
(``benchmarks/bench_history.py --max-alloc-rise``): a code change that
bypasses a freelist shows up as a jump in created-per-event no matter
how the allocator or the GC happens to behave.
"""

from __future__ import annotations

import sys

__all__ = ["MAX_POOL", "ObjectPools"]

#: Freelist size cap (each, handles and messages).  Big enough that any
#: realistic in-flight window recycles fully; small enough that a burst
#: can never pin unbounded memory in a long-lived worker context.
MAX_POOL = 4096


class ObjectPools:
    """Freelists, intern tables and exact reuse accounting."""

    __slots__ = (
        "handles",
        "messages",
        "tags",
        "_pid_tuples",
        "handles_created",
        "handles_reused",
        "messages_created",
        "messages_reused",
    )

    def __init__(self) -> None:
        #: Retired :class:`~repro.sim.handles.EventHandle` objects.
        self.handles: list = []
        #: Retired :class:`~repro.net.messages.Message` objects
        #: (``payload`` cleared on release so no user data is pinned).
        self.messages: list = []
        #: ``tag -> sys.intern(tag)``, filled on first use per tag.
        self.tags: dict[str, str] = {}
        self._pid_tuples: dict[int, tuple[int, ...]] = {}
        self.handles_created = 0
        self.handles_reused = 0
        self.messages_created = 0
        self.messages_reused = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern_tag(self, tag: str) -> str:
        """The canonical (interned) object for ``tag``."""
        interned = self.tags.get(tag)
        if interned is None:
            interned = self.tags[tag] = sys.intern(tag)
        return interned

    def pid_range(self, n: int) -> tuple[int, ...]:
        """The shared ``(1, ..., n)`` tuple of process-id objects."""
        pids = self._pid_tuples.get(n)
        if pids is None:
            pids = self._pid_tuples[n] = tuple(range(1, n + 1))
        return pids

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Exact creation/reuse counters as one JSON-friendly dict."""
        return {
            "pool_handles_created": self.handles_created,
            "pool_handles_reused": self.handles_reused,
            "pool_messages_created": self.messages_created,
            "pool_messages_reused": self.messages_reused,
        }

    def created_total(self) -> int:
        """Objects the pooled paths had to allocate (lower is better)."""
        return self.handles_created + self.messages_created

    def reused_total(self) -> int:
        """Objects served from a freelist instead of the allocator."""
        return self.handles_reused + self.messages_reused

    def clear(self) -> None:
        """Drop every pooled object and reset the counters (tests)."""
        self.handles.clear()
        self.messages.clear()
        self.tags.clear()
        self._pid_tuples.clear()
        self.handles_created = self.handles_reused = 0
        self.messages_created = self.messages_reused = 0

    def __repr__(self) -> str:
        return (
            f"ObjectPools(handles={len(self.handles)}, "
            f"messages={len(self.messages)}, "
            f"created={self.created_total()}, reused={self.reused_total()})"
        )
