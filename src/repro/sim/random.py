"""Hierarchical, reproducible random-number streams.

Every source of randomness in a run (each channel's delay model, each
randomized baseline's coin flips, each adversary) draws from its own
:class:`random.Random` stream, derived deterministically from a single
master seed plus a structured key.  Two runs with the same master seed are
bit-identical; changing one consumer's draw pattern cannot perturb the
others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

__all__ = ["derive_seed", "substream", "RngRegistry"]


def derive_seed(master_seed: int, *key: Any) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a structured key.

    The key parts are rendered with ``repr`` and hashed with SHA-256, so any
    mix of strings, ints and tuples yields a stable, collision-resistant
    derivation that does not depend on Python's randomized ``hash()``.
    """
    material = repr((int(master_seed),) + key).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def substream(master_seed: int, *key: Any) -> random.Random:
    """Return an independent :class:`random.Random` for ``key``."""
    return random.Random(derive_seed(master_seed, *key))


class RngRegistry:
    """Hands out named random streams derived from one master seed.

    Streams are memoized: asking twice for the same key returns the *same*
    generator object, so sequential draws continue rather than restart.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[tuple[Any, ...], random.Random] = {}

    def stream(self, *key: Any) -> random.Random:
        """Return the memoized stream for ``key`` (created on first use)."""
        if key not in self._streams:
            self._streams[key] = substream(self.master_seed, *key)
        return self._streams[key]

    def __repr__(self) -> str:
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={len(self._streams)})"
        )
