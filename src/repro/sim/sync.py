"""Synchronization primitives for simulated protocol code.

The central primitive is :class:`ConditionVar.wait_until`, which implements
the paper's ``wait (<predicate>)`` statements: the awaiting coroutine is
resumed as soon as the predicate becomes true, and predicates are
re-evaluated whenever the owning component calls :meth:`ConditionVar.recheck`
(for a process: after every handled message or local state change).
"""

from __future__ import annotations

from typing import Any, Callable

from .futures import Future

__all__ = ["SimEvent", "ConditionVar"]


class SimEvent:
    """A level-triggered flag, analogous to :class:`asyncio.Event`.

    Each call to :meth:`wait` returns a fresh future, so cancelling one
    waiter never disturbs the others.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._is_set = False
        self._waiters: list[Future] = []

    def is_set(self) -> bool:
        """Whether the event is currently set."""
        return self._is_set

    def set(self) -> None:
        """Set the flag and wake every waiter."""
        if self._is_set:
            return
        self._is_set = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(True)

    def clear(self) -> None:
        """Reset the flag; subsequent :meth:`wait` calls block again."""
        self._is_set = False

    def wait(self) -> Future:
        """Return a future that completes once the event is set."""
        fut = Future(name=f"{self.name}.wait")
        if self._is_set:
            fut.set_result(True)
        else:
            self._waiters.append(fut)
        return fut


class ConditionVar:
    """Predicate-based waiting with explicit rechecks.

    ``wait_until(pred)`` resolves with the (truthy) value returned by
    ``pred()``; returning a witness object (for example the set of message
    senders that satisfied a quorum) is encouraged, since the algorithms in
    the paper act on *the messages that made the predicate true*.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[tuple[Callable[[], Any], Future]] = []

    def wait_until(self, predicate: Callable[[], Any]) -> Future:
        """Return a future resolving with ``predicate()`` once it is truthy."""
        fut = Future(name=f"{self.name}.wait_until")
        value = predicate()
        if value:
            fut.set_result(value)
        else:
            self._waiters.append((predicate, fut))
        return fut

    def recheck(self) -> int:
        """Re-evaluate pending predicates; return how many waiters fired.

        Predicates must be side-effect free: they may run any number of
        times.  Waiters whose future was cancelled are dropped.
        """
        if not self._waiters:
            return 0
        fired = 0
        still_waiting: list[tuple[Callable[[], Any], Future]] = []
        for predicate, fut in self._waiters:
            if fut.done():
                continue
            value = predicate()
            if value:
                fut.set_result(value)
                fired += 1
            else:
                still_waiting.append((predicate, fut))
        self._waiters = still_waiting
        return fired

    @property
    def waiting(self) -> int:
        """Number of unresolved waiters."""
        return sum(1 for _, fut in self._waiters if not fut.done())

    def __repr__(self) -> str:
        return f"ConditionVar({self.name!r}, waiting={self.waiting})"
