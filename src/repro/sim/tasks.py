"""Coroutine tasks driven by the virtual-time simulator.

A :class:`Task` wraps an ``async def`` coroutine and steps it whenever the
future it awaits completes.  Protocol code therefore reads exactly like the
paper's pseudocode (``wait (...)`` becomes ``await self.wait_until(...)``)
while executing deterministically in virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Coroutine, Iterable

from ..errors import CancelledError
from .futures import Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .loop import Simulator

__all__ = ["Task", "gather"]


class Task(Future):
    """A coroutine scheduled on a :class:`~repro.sim.loop.Simulator`.

    The task completes with the coroutine's return value, with its raised
    exception, or as cancelled.  Awaiting anything other than a
    :class:`~repro.sim.futures.Future` (or a bare ``yield``) is an error.
    """

    __slots__ = ("_coro", "_sim", "_waiting_on", "_must_cancel", "_step_cb")

    def __init__(
        self,
        coro: Coroutine[Any, Any, Any],
        sim: "Simulator",
        name: str = "",
    ) -> None:
        super().__init__(name=name or getattr(coro, "__qualname__", "task"))
        self._coro = coro
        self._sim = sim
        self._waiting_on: Future | None = None
        self._must_cancel = False
        # One bound method for the task's lifetime: stepping is the
        # densest same-instant event in a run, and ``self._step`` at the
        # call site would allocate a fresh bound method every time.
        self._step_cb = self._step
        sim.call_soon_pooled(self._step_cb, (None, None))

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation: the coroutine sees :class:`CancelledError`.

        Returns False if the task already finished.
        """
        if self.done():
            return False
        waiting = self._waiting_on
        if waiting is not None and not waiting.done():
            # Futures handed to awaiters are always per-waiter, so
            # cancelling the awaited future only affects this task.
            return waiting.cancel()
        self._must_cancel = True
        self._sim.call_soon_pooled(self._step_cb, (None, None))
        return True

    # ------------------------------------------------------------------
    # Stepping machinery
    # ------------------------------------------------------------------
    def _wakeup(self, fut: Future) -> None:
        if fut.cancelled():
            self._step(None, CancelledError(f"awaited future cancelled in {self.name}"))
            return
        exc = fut.exception()
        if exc is not None:
            self._step(None, exc)
        else:
            self._step(fut.result(), None)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        if self.done():
            # The task was completed (e.g. cancelled) while a wakeup was in
            # flight; drop the stale step.
            return
        self._waiting_on = None
        if self._must_cancel:
            self._must_cancel = False
            exc = CancelledError(f"task {self.name} cancelled")
        try:
            if exc is not None:
                result = self._coro.throw(exc)
            else:
                result = self._coro.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
        except CancelledError:
            super().cancel()
        except BaseException as error:  # noqa: BLE001 - forwarded to awaiter
            self.set_exception(error)
        else:
            if isinstance(result, Future):
                self._waiting_on = result
                result.add_done_callback(self._wakeup)
            elif result is None:
                # A bare ``yield`` cooperatively reschedules at the same
                # virtual instant.
                self._sim.call_soon_pooled(self._step_cb, (None, None))
            else:
                self._step(
                    None,
                    TypeError(
                        f"task {self.name} awaited a non-Future: {result!r}"
                    ),
                )

    def __repr__(self) -> str:
        return f"<Task {self.name!r} {'done' if self.done() else 'running'}>"


def gather(sim: "Simulator", futures: Iterable[Future], name: str = "gather") -> Future:
    """Return a future completing with the list of all results, in order.

    If any child fails, the gather future fails with the *first* (by
    completion time) exception; remaining children keep running.  A
    cancelled child counts as a :class:`CancelledError` failure.
    """
    children = list(futures)
    outer = Future(name=name)
    if not children:
        outer.set_result([])
        return outer
    results: list[Any] = [None] * len(children)
    remaining = len(children)

    def make_callback(index: int):
        def on_done(fut: Future) -> None:
            nonlocal remaining
            if outer.done():
                return
            if fut.cancelled():
                outer.set_exception(
                    CancelledError(f"gather child {index} was cancelled")
                )
                return
            exc = fut.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            results[index] = fut.result()
            remaining -= 1
            if remaining == 0:
                outer.set_result(list(results))

        return on_done

    for index, child in enumerate(children):
        child.add_done_callback(make_callback(index))
    return outer
