"""repro.store — the persistent result store for scenario sweeps.

PR 1's sweep engine is fire-and-forget: every invocation re-executes
every cell.  This package turns it into an incremental experiment
platform, in three layers:

* :mod:`repro.store.cache` — :class:`ResultCache`, a content-addressed
  on-disk cache keyed by a SHA-256 digest of each
  :class:`~repro.orchestration.matrix.ScenarioSpec` (config + seed +
  budgets + a code-version salt), with atomic writes and a bounded
  in-memory LRU front.  Pass one to any sweep backend (or ``repro sweep
  --cache DIR``) and repeated sweeps skip already-executed scenarios
  with bit-identical results.
* :mod:`repro.store.shards` — JSONL shard readers/writers and
  :func:`merge_shards`, which folds shards from multiple runs (or
  machines) into one deduplicated
  :class:`~repro.analysis.aggregation.MatrixReport`, detecting
  conflicting duplicate records.  ``repro merge SHARD... --out PATH``
  is the CLI face.
* :mod:`repro.store.resume` — :func:`plan_resume` diffs a matrix
  against the store; :func:`sweep_resume` dispatches only the missing
  cells on a chosen backend.
* :mod:`repro.store.collector` — :class:`ShardCollector` /
  :func:`watch_shards`, the incremental half of distributed dispatch:
  watch a directory, fold each complete shard exactly once (truncated
  in-flight files are revisited, never fatal), checkpoint atomically,
  and finalize a merged JSONL byte-identical to the unsharded sweep
  (``repro collect DIR`` on the CLI; the dispatcher itself lives in
  :mod:`repro.orchestration.dispatch`).
* :mod:`repro.store.verify` — :func:`verify_store`, the integrity
  scrub: re-execute a deterministic sample of cached scenarios on the
  current kernel and compare records field by field (``repro store
  verify DIR`` on the CLI).

All persistence goes through :func:`repro.store.atomic.atomic_write_text`
(temp file + rename), so interrupted sweeps never leave truncated cache
entries or shards behind.
"""

from .atomic import atomic_write_text
from .cache import CacheStats, ResultCache, code_version, scenario_key
from .collector import (
    CollectorError,
    ScanResult,
    ShardCollector,
    watch_shards,
)
from .shards import (
    MergeResult,
    ShardConflictError,
    ShardFolder,
    ShardTruncatedError,
    canonical_order,
    iter_shard_records,
    matrix_order,
    merge_shards,
    parse_shard_text,
    read_shard,
    read_shard_tolerant,
    write_shard,
)
from .resume import (
    ResumePlan,
    count_cached,
    describe_counts,
    plan_resume,
    sweep_resume,
)
from .verify import VerifyMismatch, VerifyReport, verify_store

__all__ = [
    "atomic_write_text",
    "CacheStats",
    "ResultCache",
    "code_version",
    "scenario_key",
    "CollectorError",
    "ScanResult",
    "ShardCollector",
    "watch_shards",
    "MergeResult",
    "ShardConflictError",
    "ShardFolder",
    "ShardTruncatedError",
    "canonical_order",
    "iter_shard_records",
    "matrix_order",
    "merge_shards",
    "parse_shard_text",
    "read_shard",
    "read_shard_tolerant",
    "write_shard",
    "ResumePlan",
    "count_cached",
    "describe_counts",
    "plan_resume",
    "sweep_resume",
    "VerifyMismatch",
    "VerifyReport",
    "verify_store",
]
