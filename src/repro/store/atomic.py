"""Atomic filesystem writes shared by the result store and sweep engine.

Everything the store persists — cache entries, JSONL shards, merged
reports — goes through :func:`atomic_write_text`: the payload is written
to a temporary file in the *target* directory (same filesystem, so the
final rename cannot degrade to a copy) and moved into place with
``os.replace``.  A reader therefore sees either the previous complete
file or the new complete file, never a truncated hybrid, even if the
writing process is killed mid-write.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterable

__all__ = ["atomic_write_lines", "atomic_write_text"]


def atomic_write_text(
    path: str | os.PathLike[str], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the target path.

    Parent directories are created as needed.  The temporary file is
    fsynced before the rename, and the parent directory is fsynced after
    it (where the platform allows), so a crash immediately after return
    cannot lose the payload; the temp file is unlinked on any failure so
    interrupted writes leave no litter behind.
    """
    return atomic_write_lines(path, (text,), encoding=encoding)


def atomic_write_lines(
    path: str | os.PathLike[str],
    lines: Iterable[str],
    encoding: str = "utf-8",
) -> Path:
    """Stream ``lines`` to ``path`` atomically; returns the target path.

    Same contract as :func:`atomic_write_text` — temp file in the target
    directory, fsync, ``os.replace``, directory fsync, no litter on
    failure — but the payload is an iterable of string chunks drained
    through the (buffered) file object via ``writelines``.  Large JSONL
    shards therefore stream encode-and-write without ever concatenating
    the whole file in memory, and a crash mid-iteration still leaves the
    previous complete file in place.  ``lines`` are written verbatim:
    callers supply their own newlines.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.writelines(lines)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    try:
        dir_fd = os.open(target.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return target
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(dir_fd)
    return target
