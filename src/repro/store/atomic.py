"""Atomic filesystem writes shared by the result store and sweep engine.

Everything the store persists — cache entries, JSONL shards, merged
reports — goes through :func:`atomic_write_text`: the payload is written
to a temporary file in the *target* directory (same filesystem, so the
final rename cannot degrade to a copy) and moved into place with
``os.replace``.  A reader therefore sees either the previous complete
file or the new complete file, never a truncated hybrid, even if the
writing process is killed mid-write.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(
    path: str | os.PathLike[str], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the target path.

    Parent directories are created as needed.  The temporary file is
    fsynced before the rename, and the parent directory is fsynced after
    it (where the platform allows), so a crash immediately after return
    cannot lose the payload; the temp file is unlinked on any failure so
    interrupted writes leave no litter behind.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    try:
        dir_fd = os.open(target.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return target
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(dir_fd)
    return target
