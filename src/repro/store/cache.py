"""Content-addressed on-disk cache for scenario outcomes.

A :class:`ResultCache` stores one JSON file per executed scenario under
``root/<key[:2]>/<key>.json``, where ``key`` is a SHA-256 digest of the
scenario's full semantic identity — every :class:`ScenarioSpec` field
that can change the run's result (config, seed, budgets) plus a
*code-version salt*, so upgrading the algorithms silently invalidates
stale entries instead of replaying them.  The spec's ``index`` (its
position inside one particular matrix expansion) is deliberately
excluded: the same scenario reached through differently shaped grids
shares one cache entry.

Keys are *schema-versioned* through the spec codec
(:mod:`repro.orchestration.axes`): a spec using only pre-registry axes
serializes to the exact schema-1 record, so caches written before the
axis registry existed keep hitting; specs gridding new axes (fault
placement, proposal profiles, custom axes) add fields — and therefore
get distinct keys — without touching old entries.

Writes are atomic (:mod:`repro.store.atomic`), so a cache directory can
be shared between concurrent sweeps; reads go through a bounded
in-memory LRU front so a resumed sweep touching the same cells twice
pays the disk cost once.  Corrupt or truncated entries are treated as
misses, never as errors — the worst a damaged cache can do is cause
re-execution.

Caches grow without bound by default; opting into ``max_entries``
and/or ``max_age`` enables LRU-on-disk pruning: disk hits touch an
entry's mtime, :meth:`ResultCache.prune` drops entries beyond the age
cap and then the oldest entries beyond the size cap, and ``put`` prunes
opportunistically every ``prune_interval`` insertions.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator

from ..orchestration.matrix import (
    ScenarioOutcome,
    ScenarioSpec,
    outcome_from_record,
)
from .atomic import atomic_write_text

__all__ = [
    "DIGEST_STATS",
    "CacheStats",
    "DigestStats",
    "ResultCache",
    "code_version",
    "scenario_key",
]

#: Bump when the on-disk entry layout changes (entries with another
#: format are treated as misses).
FORMAT_VERSION = 1


@dataclass
class DigestStats:
    """Process-wide :func:`scenario_key` counters (regression guard).

    A resumed sweep digests each spec on the resume *plan* (cache get)
    and again on the write-back (cache put); before memoization that
    meant re-running ``spec.to_dict()`` + canonical JSON + SHA-256 both
    times — measurable harness overhead at sweep scale.  The counters
    let tests assert the memo works: after any sweep,
    ``computed`` grows by at most one per (spec, salt) while ``memoized``
    absorbs the rest.
    """

    #: Full to_dict + json + sha256 pipelines actually executed.
    computed: int = 0
    #: Lookups served from a spec's memo table.
    memoized: int = 0

    def reset(self) -> None:
        self.computed = 0
        self.memoized = 0


#: Module-level counter instance (tests read and reset it).
DIGEST_STATS = DigestStats()

#: Name of the per-spec memo attribute.  Written with
#: ``object.__setattr__`` (ScenarioSpec is frozen but not slotted) and
#: invisible to the dataclass's ``__eq__``/``__hash__``/``fields``.
_MEMO_ATTR = "_scenario_keys"


def code_version() -> str:
    """The package version, used as the default cache salt."""
    try:
        from .. import __version__
    except Exception:  # pragma: no cover - broken partial install
        return "0"
    return str(__version__)


def scenario_key(spec: ScenarioSpec, salt: str = "") -> str:
    """Stable hex digest of a scenario's semantic identity.

    Built from the spec's JSON representation minus ``index`` and the
    derived ``cell_id``, canonicalised (sorted keys, no whitespace) and
    hashed with SHA-256; ``salt`` folds in any extra invalidation
    context (the cache uses the code version).

    Memoized per spec *instance* and salt: specs are immutable, so the
    digest is computed once and parked on the spec (a plain attribute —
    it never affects equality, hashing or serialization, and it rides
    along through pickling so pool workers inherit it for free).  The
    resume path digests every spec twice (plan + write-back); the memo
    makes the second one a dict lookup.  :data:`DIGEST_STATS` counts
    both outcomes.
    """
    salt = str(salt)
    memo: dict[str, str] | None = getattr(spec, _MEMO_ATTR, None)
    if memo is not None:
        key = memo.get(salt)
        if key is not None:
            DIGEST_STATS.memoized += 1
            return key
    data = spec.to_dict()
    data.pop("index", None)
    data.pop("cell_id", None)
    data["salt"] = salt
    material = json.dumps(data, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(material.encode("utf-8")).hexdigest()
    DIGEST_STATS.computed += 1
    if memo is None:
        try:
            object.__setattr__(spec, _MEMO_ATTR, {salt: key})
        except AttributeError:  # pragma: no cover - slotted spec subclass
            pass
    else:
        memo[salt] = key
    return key


@dataclass
class CacheStats:
    """Running counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidations: int = 0
    #: Entries removed by :meth:`ResultCache.prune` (size/age caps).
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Persistent scenario-outcome store with an in-memory LRU front.

    Args:
        root: Cache directory (created lazily on first ``put``).
        salt: Invalidation salt mixed into every key; defaults to the
            package version so algorithm changes age out old entries.
        memory_entries: LRU capacity of the in-memory front
            (``0`` disables it — every hit reads from disk).
        max_entries: On-disk entry cap; when exceeded, :meth:`prune`
            evicts least-recently-used entries (``None``: unbounded).
        max_age: Entry lifetime in seconds since last use; older entries
            are evicted by :meth:`prune` (``None``: immortal).
        prune_interval: With caps set, ``put`` calls :meth:`prune` every
            this many insertions (amortises the directory scan).
    """

    def __init__(
        self,
        root: str | Path,
        salt: str | None = None,
        memory_entries: int = 2048,
        max_entries: int | None = None,
        max_age: float | None = None,
        prune_interval: int = 64,
    ) -> None:
        self.root = Path(root)
        self.salt = code_version() if salt is None else str(salt)
        self.memory_entries = max(0, int(memory_entries))
        self.max_entries = None if max_entries is None else max(0, int(max_entries))
        self.max_age = None if max_age is None else float(max_age)
        self.prune_interval = max(1, int(prune_interval))
        self._puts_since_prune = 0
        self._memory: OrderedDict[str, ScenarioOutcome] = OrderedDict()
        self.stats = CacheStats()

    # -- keys and paths -------------------------------------------------

    def key(self, spec: ScenarioSpec) -> str:
        """The content-address of ``spec`` under this cache's salt."""
        return scenario_key(spec, self.salt)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    # -- core operations ------------------------------------------------

    def get(self, spec: ScenarioSpec) -> ScenarioOutcome | None:
        """The cached outcome for ``spec``, or ``None`` on a miss.

        The returned outcome carries *this* spec (not the one that
        populated the entry), so matrix indices survive a round-trip and
        resumed sweeps stay bit-identical to fresh ones.
        """
        key = self.key(spec)
        outcome = self._memory.get(key)
        if outcome is not None:
            self._memory.move_to_end(key)
            self._touch(key)  # keep on-disk LRU recency in sync
        else:
            outcome = self._read(key)
            if outcome is None:
                self.stats.misses += 1
                return None
            self._touch(key)
            self._remember(key, outcome)
        self.stats.hits += 1
        return outcome if outcome.spec == spec else replace(outcome, spec=spec)

    def put(self, outcome: ScenarioOutcome) -> Path:
        """Persist one outcome; returns the entry path."""
        key = self.key(outcome.spec)
        payload = {
            "format": FORMAT_VERSION,
            "key": key,
            "salt": self.salt,
            "record": outcome.to_record(),
        }
        path = atomic_write_text(
            self.path_for(key), json.dumps(payload, sort_keys=True)
        )
        self._remember(key, outcome)
        self.stats.puts += 1
        if self.max_entries is not None or self.max_age is not None:
            self._puts_since_prune += 1
            if self._puts_since_prune >= self.prune_interval:
                self.prune()
        return path

    def prune(self, now: float | None = None) -> int:
        """Enforce the ``max_age`` / ``max_entries`` caps (LRU on disk).

        Recency is an entry's file mtime: writes stamp it and disk hits
        re-touch it, so the least-recently-*used* entries go first.
        Returns how many entries were removed (0 when no caps are set).
        """
        self._puts_since_prune = 0
        if self.max_entries is None and self.max_age is None:
            return 0
        import time

        now = time.time() if now is None else now
        aged: list[tuple[float, Path]] = []
        for path in self._entry_paths():
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:
                continue
        doomed: list[Path] = []
        if self.max_age is not None:
            cutoff = now - self.max_age
            doomed.extend(path for mtime, path in aged if mtime < cutoff)
            aged = [(m, p) for m, p in aged if m >= cutoff]
        if self.max_entries is not None and len(aged) > self.max_entries:
            aged.sort()  # oldest first
            excess = len(aged) - self.max_entries
            doomed.extend(path for _, path in aged[:excess])
        removed = 0
        for path in doomed:
            self._memory.pop(path.stem, None)
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        self.stats.evictions += removed
        return removed

    def invalidate(self, spec: ScenarioSpec) -> bool:
        """Drop the entry for ``spec``; True if one existed."""
        key = self.key(spec)
        self._memory.pop(key, None)
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            return False
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        self._memory.clear()
        return removed

    # -- introspection --------------------------------------------------

    def __contains__(self, spec: ScenarioSpec) -> bool:
        key = self.key(spec)
        return key in self._memory or self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def iter_outcomes(self) -> Iterator[ScenarioOutcome]:
        """Every readable outcome on disk (unordered; corrupt entries
        are skipped)."""
        for path in self._entry_paths():
            outcome = self._decode(path)
            if outcome is not None:
                yield outcome

    def iter_entry_keys(self) -> Iterator[tuple[str, Path]]:
        """Every on-disk entry as ``(key, path)``, in key order.

        Listing only — nothing is read or decoded, so callers (e.g. the
        integrity scrub) can sample keys cheaply on large stores.
        """
        for path in self._entry_paths():
            yield path.stem, path

    def read_entry(self, key: str) -> ScenarioOutcome | None:
        """Decode one entry by key; ``None`` when missing or corrupt.

        Unlike :meth:`iter_outcomes` this surfaces corrupt entries
        (``None``) instead of hiding them — the integrity scrub
        (:mod:`repro.store.verify`) needs to count them.
        """
        return self._decode(self.path_for(key))

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, salt={self.salt!r}, "
            f"stats={self.stats})"
        )

    # -- internals ------------------------------------------------------

    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for bucket in sorted(self.root.iterdir()):
            if bucket.is_dir():
                yield from sorted(bucket.glob("*.json"))

    def _read(self, key: str) -> ScenarioOutcome | None:
        return self._decode(self.path_for(key))

    def _touch(self, key: str) -> None:
        """Refresh an entry's mtime (its LRU recency) after a disk hit."""
        if self.max_entries is None and self.max_age is None:
            return
        import os

        try:
            os.utime(self.path_for(key))
        except OSError:
            pass

    def _decode(self, path: Path) -> ScenarioOutcome | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("format") != FORMAT_VERSION:
                return None
            return outcome_from_record(payload["record"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _remember(self, key: str, outcome: ScenarioOutcome) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[key] = outcome
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
