"""Incremental shard collector: fold results as they arrive, no barrier.

The dispatcher (:mod:`repro.orchestration.dispatch`) turns one scenario
matrix into N shard JSONLs landing in a directory at unpredictable
times, from workers that may straggle, die and be retried.  Waiting for
all N before calling :func:`~repro.store.shards.merge_shards` would put
a global barrier at the end of every distributed sweep; this module
removes it:

* :class:`ShardCollector` watches a directory, detects shard files that
  are *complete* (fully parseable; a truncated final line means a
  writer is mid-append, and the file is simply revisited on the next
  scan — the collector never crashes on a shard being written
  concurrently), and folds each one exactly once into a running
  :class:`~repro.store.shards.ShardFolder` under the usual
  content-addressed dedup / conflict rules.  Each shard file must
  *appear* atomically with its final content (write-then-rename, as
  :func:`~repro.store.shards.write_shard` and every dispatch worker
  do): a writer that keeps appending to an already-parseable file
  cannot be distinguished from a finished one, so the truncation check
  is a crash-safety net, not support for open-ended appenders;
* after every fold it **checkpoints** atomically (shard name, SHA-256
  fingerprint, record count, in fold order), so a killed collector
  restarts into the exact fold state — refolding only the checkpointed
  files, verifying their fingerprints, and continuing where it stopped;
* :meth:`ShardCollector.finalize` writes the merged JSONL ordered by
  matrix index (:func:`~repro.store.shards.matrix_order`), which makes
  the collected output of a dispatched matrix **byte-identical** to the
  JSONL of the same sweep run unsharded on one machine.

:func:`watch_shards` is the driving loop (``repro collect DIR --follow``
on the CLI): scan, fold, checkpoint, sleep, repeat — until a completion
condition holds.  Completion is either the dispatch manifest (all units
done and all their shards folded), an expected shard count, or an
expected scenario count; one poll-less pass (``follow=False``) folds
whatever is complete right now.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

from .atomic import atomic_write_text
from .shards import MergeResult, ShardFolder, matrix_order, parse_shard_text

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.dispatch import DispatchPlan

__all__ = [
    "CollectorError",
    "ScanResult",
    "ShardCollector",
    "watch_shards",
]

#: Default checkpoint file (a dotfile, so the ``*.jsonl`` scan never
#: mistakes it for a shard).
CHECKPOINT_NAME = ".collector.json"

#: Bump when the checkpoint layout changes (older checkpoints are
#: refused loudly rather than half-restored).
CHECKPOINT_FORMAT = 1


class CollectorError(RuntimeError):
    """The collector's on-disk state is inconsistent (a checkpointed
    shard vanished or changed fingerprint, or the checkpoint itself is
    unreadable)."""


@dataclass
class ScanResult:
    """What one :meth:`ShardCollector.scan` pass found."""

    #: Shard file names folded by *this* scan, in fold order.
    folded: list[str] = field(default_factory=list)
    #: Files present but still being written (truncated final line).
    in_progress: list[str] = field(default_factory=list)


@dataclass
class _FoldedShard:
    """Checkpoint line for one folded shard file."""

    name: str
    sha256: str
    records: int

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "sha256": self.sha256,
                "records": self.records}


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ShardCollector:
    """Fold a directory of shard JSONLs incrementally, with checkpoints.

    Args:
        shard_dir: Directory the shards land in (``*.jsonl``; dotfiles
            and the checkpoint/output files are never treated as
            shards).
        checkpoint: Checkpoint path (default: ``shard_dir/.collector.json``).
            An existing checkpoint is restored on construction — that is
            the crash-recovery path.
        on_conflict: Conflict policy for records that disagree, as in
            :func:`~repro.store.shards.merge_shards`.
        exclude: Extra paths to never treat as shards (e.g. the merged
            output when it lives inside ``shard_dir``).
        ledger: Optional event sink (duck-typed
            :class:`~repro.obs.events.EventLedger`): every fold emits a
            ``shard_folded`` event, so the fleet history records when
            each shard landed, not just that it did.  ``None`` — the
            default — emits nothing (the store layer never constructs
            telemetry on its own).
    """

    def __init__(
        self,
        shard_dir: str | os.PathLike[str],
        checkpoint: str | os.PathLike[str] | None = None,
        on_conflict: str = "error",
        exclude: Iterable[str | os.PathLike[str]] = (),
        ledger: Any | None = None,
    ) -> None:
        self.shard_dir = Path(shard_dir)
        self.checkpoint_path = (
            self.shard_dir / CHECKPOINT_NAME
            if checkpoint is None else Path(checkpoint)
        )
        self.folder = ShardFolder(on_conflict=on_conflict)
        self._folded: dict[str, _FoldedShard] = {}
        self._exclude = {
            Path(p).resolve() for p in (self.checkpoint_path, *exclude)
        }
        self.ledger = ledger
        self._restore()

    # -- state ----------------------------------------------------------

    @property
    def folded_names(self) -> list[str]:
        """Shard files folded so far, in fold order."""
        return list(self._folded)

    @property
    def records_folded(self) -> int:
        """Distinct scenarios in the running fold."""
        return len(self.folder)

    def describe(self) -> str:
        """One status line for progress displays."""
        return (
            f"{len(self._folded)} shard(s) folded, "
            f"{self.records_folded} scenario(s), "
            f"{self.folder.duplicates} duplicate(s)"
        )

    # -- crash recovery -------------------------------------------------

    def _restore(self) -> None:
        """Rebuild the fold from an existing checkpoint, verifying that
        every checkpointed shard is still exactly the file we folded."""
        try:
            raw = self.checkpoint_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError as exc:
            raise CollectorError(
                f"unreadable checkpoint {self.checkpoint_path}: {exc}"
            ) from None
        try:
            data = json.loads(raw)
            fmt = int(data.get("format", 0))
            folded = list(data["folded"])
        except (ValueError, KeyError, TypeError) as exc:
            raise CollectorError(
                f"corrupt checkpoint {self.checkpoint_path}: {exc}"
            ) from None
        if fmt != CHECKPOINT_FORMAT:
            raise CollectorError(
                f"{self.checkpoint_path}: checkpoint format {fmt} not "
                f"supported (this code reads format {CHECKPOINT_FORMAT})"
            )
        for entry in folded:
            name = str(entry["name"])
            path = self.shard_dir / name
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise CollectorError(
                    f"checkpointed shard {path} is gone: {exc}"
                ) from None
            digest = _digest(text)
            if digest != entry["sha256"]:
                raise CollectorError(
                    f"checkpointed shard {path} changed since it was "
                    f"folded (fingerprint mismatch)"
                )
            outcomes, complete = parse_shard_text(text, str(path))
            if not complete:
                raise CollectorError(
                    f"checkpointed shard {path} is truncated but was "
                    f"folded as complete"
                )
            self.folder.add_outcomes(outcomes, str(path))
            self._folded[name] = _FoldedShard(
                name=name, sha256=digest, records=len(outcomes)
            )

    def _checkpoint(self) -> None:
        payload = {
            "format": CHECKPOINT_FORMAT,
            "folded": [f.to_dict() for f in self._folded.values()],
        }
        atomic_write_text(
            self.checkpoint_path,
            json.dumps(payload, sort_keys=True) + "\n",
        )

    # -- folding --------------------------------------------------------

    def scan(self) -> ScanResult:
        """One pass over the directory: fold every new complete shard.

        Each fold is checkpointed before the next file is touched, so a
        kill between any two folds loses nothing.  Files with a
        truncated final line are reported as in-progress and revisited
        on the next scan; genuinely corrupt files (bad JSON mid-file,
        schema-invalid records) raise, as silent skips would make a
        partial report look complete.
        """
        result = ScanResult()
        for path in sorted(self.shard_dir.glob("*.jsonl")):
            name = path.name
            if name in self._folded or path.resolve() in self._exclude:
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                continue  # vanished between glob and read
            outcomes, complete = parse_shard_text(text, str(path))
            if not complete:
                result.in_progress.append(name)
                continue
            self.folder.add_outcomes(outcomes, str(path))
            self._folded[name] = _FoldedShard(
                name=name, sha256=_digest(text), records=len(outcomes)
            )
            self._checkpoint()
            result.folded.append(name)
            if self.ledger is not None:
                # Matches repro.obs.events.EVENT_SHARD_FOLDED; a string
                # literal keeps the store layer free of obs imports.
                self.ledger.emit(
                    "shard_folded", shard=name, records=len(outcomes),
                    total=self.records_folded,
                )
        return result

    # -- results --------------------------------------------------------

    def result(self) -> MergeResult:
        """Snapshot the fold, ordered by matrix index — the order the
        unsharded sweep would have written."""
        return self.folder.result(order=matrix_order)

    def finalize(
        self, out: str | os.PathLike[str] | None = None
    ) -> MergeResult:
        """Final merged result; with ``out``, also persist the JSONL
        (atomic, matrix order — byte-identical to ``repro sweep --jsonl``
        of the same matrix run unsharded)."""
        merged = self.result()
        if out is not None:
            merged.write_jsonl(out)
        return merged


def _load_plan(root: Path) -> "DispatchPlan":
    from ..orchestration.dispatch import DispatchPlan

    return DispatchPlan.load(root)


def watch_shards(
    shard_dir: str | os.PathLike[str],
    out: str | os.PathLike[str] | None = None,
    follow: bool = False,
    poll: float = 0.2,
    timeout: float | None = None,
    expect_shards: int | None = None,
    expect_records: int | None = None,
    manifest_root: str | os.PathLike[str] | None = None,
    on_conflict: str = "error",
    checkpoint: str | os.PathLike[str] | None = None,
    on_scan: Callable[[ShardCollector, ScanResult], None] | None = None,
    ledger: Any | None = None,
) -> MergeResult:
    """Collect a directory of shards into one merged result.

    One :class:`ShardCollector` does the folding; this function drives
    it.  With ``follow=False`` (default) it makes a single pass and
    finalizes whatever is complete right now.  With ``follow=True`` it
    polls every ``poll`` seconds until done, where *done* means (first
    condition configured wins):

    * ``manifest_root`` — the dispatch manifest there reports every
      unit done *and* every unit's shard file has been folded;
    * ``expect_shards`` — that many shard files folded;
    * ``expect_records`` — that many distinct scenarios folded.

    ``timeout`` bounds a follow in wall-clock seconds
    (:class:`TimeoutError` carries the progress so far in its message).
    ``on_scan`` fires after every pass — the CLI's progress line.
    """
    if follow and manifest_root is None and expect_shards is None \
            and expect_records is None:
        raise ValueError(
            "follow=True needs a completion condition: a dispatch "
            "manifest, expect_shards or expect_records"
        )
    exclude: list[Any] = [out] if out is not None else []
    if ledger is not None and getattr(ledger, "path", None) is not None:
        # A ledger living inside shard_dir must never be scanned as a
        # shard (its records are not scenario outcomes).
        exclude.append(ledger.path)
    collector = ShardCollector(
        shard_dir, checkpoint=checkpoint, on_conflict=on_conflict,
        exclude=exclude, ledger=ledger,
    )
    deadline = None if timeout is None else time.monotonic() + timeout

    def complete() -> bool:
        if manifest_root is not None:
            plan = _load_plan(Path(manifest_root))
            abandoned = plan.abandoned_units()
            if abandoned:
                # Waiting would be forever: these units spent their
                # retry budget and hold no live lease.
                raise CollectorError(
                    f"dispatch units will never complete (retry budget "
                    f"exhausted): "
                    f"{', '.join(unit.name for unit in abandoned)}; "
                    f"collected so far: {collector.describe()}"
                )
            if not plan.finished:
                return False
            folded = set(collector.folded_names)
            return all(
                Path(unit.shard).name in folded for unit in plan.units
            )
        if expect_shards is not None:
            return len(collector.folded_names) >= expect_shards
        assert expect_records is not None
        return collector.records_folded >= expect_records

    while True:
        scan = collector.scan()
        if on_scan is not None:
            on_scan(collector, scan)
        if not follow or complete():
            break
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(
                f"collector timed out after {timeout:.1f}s "
                f"({collector.describe()})"
            )
        time.sleep(poll)
    return collector.finalize(out)
