"""Resumable sweeps: diff a scenario matrix against the result store.

:func:`plan_resume` splits a matrix (or spec list) into the outcomes the
cache already holds and the specs that still need execution — the
partition every cache-aware sweep backend runs on.  :func:`sweep_resume`
is the convenience wrapper: plan, dispatch only the missing cells on the
chosen backend, and return one :class:`SweepResult` whose outcomes are
indistinguishable from a fresh full sweep (cache hits reattach the
caller's specs, so even matrix indices survive the round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..orchestration.matrix import ScenarioMatrix, ScenarioOutcome, ScenarioSpec
from .cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover
    from ..orchestration.parallel import SweepResult

__all__ = [
    "ResumePlan",
    "count_cached",
    "describe_counts",
    "plan_resume",
    "sweep_resume",
]


def describe_counts(cached: int, missing: int) -> str:
    """The one-line resume summary shared by :meth:`ResumePlan.describe`
    and the CLI's ``--resume`` preview."""
    return f"{cached}/{cached + missing} scenarios cached, {missing} to run"


@dataclass
class ResumePlan:
    """Partition of a matrix into already-cached and still-missing work."""

    #: Cache hits, carrying the requesting matrix's specs.
    cached: list[ScenarioOutcome]
    #: Specs with no cache entry, in matrix order.
    missing: list[ScenarioSpec]

    @property
    def total(self) -> int:
        return len(self.cached) + len(self.missing)

    @property
    def complete(self) -> bool:
        """True when the store already covers the whole matrix."""
        return not self.missing

    def describe(self) -> str:
        """One-line human summary (the CLI's ``--resume`` output)."""
        return describe_counts(len(self.cached), len(self.missing))


def count_cached(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    cache: ResultCache,
) -> tuple[int, int]:
    """Cheap ``(cached, missing)`` counts for a matrix.

    Existence checks only — no entry is read or decoded and the cache's
    hit/miss stats are untouched, so this is safe to run as a preview
    right before a cache-aware sweep does the real partition.
    """
    from ..orchestration.parallel import _as_specs

    cached = missing = 0
    for spec in _as_specs(scenarios):
        if spec in cache:
            cached += 1
        else:
            missing += 1
    return cached, missing


def plan_resume(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    cache: ResultCache,
) -> ResumePlan:
    """Split ``scenarios`` into cached outcomes and missing specs."""
    from ..orchestration.parallel import _as_specs

    cached: list[ScenarioOutcome] = []
    missing: list[ScenarioSpec] = []
    for spec in _as_specs(scenarios):
        outcome = cache.get(spec)
        if outcome is None:
            missing.append(spec)
        else:
            cached.append(outcome)
    return ResumePlan(cached=cached, missing=missing)


def sweep_resume(
    scenarios: ScenarioMatrix | Iterable[ScenarioSpec],
    cache: ResultCache,
    backend: str = "serial",
    **kwargs: object,
) -> "SweepResult":
    """Run only the scenarios the store is missing, on the named backend
    (``"serial"``, ``"async"`` or ``"parallel"``); cache hits and fresh
    results come back merged in matrix order."""
    from ..orchestration import parallel

    backends = {
        "serial": parallel.sweep_serial,
        "async": parallel.sweep_async,
        "parallel": parallel.sweep_parallel,
    }
    try:
        sweep = backends[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r} "
            f"(known: {', '.join(sorted(backends))})"
        ) from None
    return sweep(scenarios, cache=cache, **kwargs)  # type: ignore[operator]
