"""JSONL shard reading, writing and merging.

A *shard* is the JSONL file a sweep persists (one flat record per
scenario, the format of :meth:`ScenarioOutcome.to_record`).  Sweeps run
at different times — or on different machines — each produce their own
shard; :func:`merge_shards` folds any number of them into one
deduplicated outcome set and a single
:class:`~repro.analysis.aggregation.MatrixReport`.

Deduplication is content-addressed: records are keyed by
:func:`~repro.store.cache.scenario_key` (semantic identity, matrix
``index`` excluded), so re-running an overlapping grid is harmless.  Two
records with the same key but *different* results mean the shards were
produced by incompatible code or a corrupted run; that raises
:class:`ShardConflictError` by default (``on_conflict="first"/"last"``
picks a side instead).

The merge core is :class:`ShardFolder`, an *incremental* fold:
:func:`merge_shards` is its one-shot wrapper, and the live collector
(:mod:`repro.store.collector`) feeds it shard by shard as files arrive.
Shards written through :func:`write_shard` are atomic and therefore
always complete, but a shard produced by a foreign appender may be seen
mid-write: a truncated *final* line (no trailing newline) raises the
distinct :class:`ShardTruncatedError`, and the tolerant entry points
(:func:`read_shard_tolerant`, ``partial="tail"``) treat it as
in-progress — fold the complete prefix, never crash.

Merged outcomes are ordered canonically — by cell id, then seed index,
then seed — so the merge of a partitioned sweep is deterministic no
matter how the work was split.

Shards are schema-versioned through the spec codec
(:mod:`repro.orchestration.axes`): schema-1 records (written before the
axis registry) decode via the omit-defaults migration shim in
:meth:`ScenarioSpec.from_dict` and compare equal to current-code
records of the same scenario, so old and new shards merge cleanly;
records from a *newer* schema fail loudly with file and line.  This is
also the merge path for ``repro sweep --shard i/N`` runs: the N shard
files of one matrix merge back into exactly the single-machine sweep.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..analysis.aggregation import MatrixReport, aggregate_outcomes
from ..orchestration.matrix import ScenarioOutcome, outcome_from_record
from .atomic import atomic_write_lines
from .cache import scenario_key

__all__ = [
    "MergeResult",
    "ShardConflictError",
    "ShardFolder",
    "ShardTruncatedError",
    "canonical_order",
    "encode_record",
    "iter_shard_records",
    "matrix_order",
    "merge_shards",
    "parse_shard_text",
    "read_shard",
    "read_shard_tolerant",
    "write_shard",
]

#: Salt for merge identity keys: constant, so shards written by any
#: sweep of the same scenarios collide (which is the point).
_MERGE_SALT = "shard-merge"


class ShardConflictError(ValueError):
    """Two shards disagree about the result of the same scenario."""


class ShardTruncatedError(ValueError):
    """A shard's final line is cut short — the file is still being
    written (or a writer died mid-append).  Distinct from generic
    malformation so live readers can treat it as *in-progress* rather
    than corruption."""


def _decode_line(
    line: str, lineno: int, label: str, tail: bool
) -> dict[str, Any]:
    """Parse one JSONL line.  ``tail`` marks a final line missing its
    terminating newline — the signature of an append in flight — where a
    parse failure means "truncated", not "corrupt"."""
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        if tail:
            raise ShardTruncatedError(
                f"{label}:{lineno}: truncated final record "
                f"(shard still being written?)"
            ) from None
        raise ValueError(
            f"{label}:{lineno}: malformed shard record: {exc}"
        ) from None


def _iter_text_lines(
    text: str, label: str
) -> Iterator[tuple[int, dict[str, Any]]]:
    newline_terminated = text == "" or text.endswith("\n")
    lines = text.splitlines()
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        tail = lineno == len(lines) and not newline_terminated
        yield lineno, _decode_line(stripped, lineno, label, tail)


def _iter_shard_lines(
    path: str | os.PathLike[str],
) -> Iterator[tuple[int, dict[str, Any]]]:
    # Streams line by line — merging huge shards never holds a whole
    # file's text in memory (only the collector, which also needs a
    # fingerprint of exactly what it parsed, reads whole files and goes
    # through :func:`parse_shard_text` instead).
    shard = Path(path)
    with shard.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            stripped = raw.strip()
            if not stripped:
                continue
            # Only the last line of a file can lack its newline.
            tail = not raw.endswith("\n")
            yield lineno, _decode_line(stripped, lineno, str(shard), tail)


def iter_shard_records(path: str | os.PathLike[str]) -> Iterator[dict[str, Any]]:
    """Yield each JSON record in a shard (blank lines are skipped).

    Malformed lines raise ``ValueError`` naming the file and line — a
    truncated shard should fail loudly here, not surface as a half-merged
    report (writes via :func:`write_shard` are atomic precisely so this
    never happens in normal operation).
    """
    for _, record in _iter_shard_lines(path):
        yield record


def _record_outcome(
    record: dict[str, Any], lineno: int, label: str
) -> ScenarioOutcome:
    """Reconstruct one record, failing loudly with file and line on
    schema-invalid (but well-formed JSON) records."""
    try:
        return outcome_from_record(record)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ValueError(
            f"{label}:{lineno}: invalid shard record "
            f"({type(exc).__name__}: {exc})"
        ) from None


def _iter_text_outcomes(text: str, label: str) -> Iterator[ScenarioOutcome]:
    for lineno, record in _iter_text_lines(text, label):
        yield _record_outcome(record, lineno, label)


def _iter_shard_outcomes(
    path: str | os.PathLike[str],
) -> Iterator[ScenarioOutcome]:
    label = str(Path(path))
    for lineno, record in _iter_shard_lines(path):
        yield _record_outcome(record, lineno, label)


def read_shard(path: str | os.PathLike[str]) -> list[ScenarioOutcome]:
    """Load every outcome in one JSONL shard, in file order."""
    return list(_iter_shard_outcomes(path))


def parse_shard_text(
    text: str, label: str = "<shard>"
) -> tuple[list[ScenarioOutcome], bool]:
    """Parse shard JSONL already in memory, tolerating a cut tail.

    Returns ``(outcomes, complete)``: a truncated final line — a foreign
    writer appending concurrently, or killed mid-append — yields the
    complete-record prefix with ``complete=False`` instead of raising.
    Any *other* malformation (corruption in the middle of the file)
    still raises, as :func:`read_shard` would.  The collector parses
    from text so one filesystem read yields both the fingerprint digest
    and the records — no window for the file to change in between.
    """
    outcomes: list[ScenarioOutcome] = []
    try:
        for outcome in _iter_text_outcomes(text, label):
            outcomes.append(outcome)
    except ShardTruncatedError:
        return outcomes, False
    return outcomes, True


def read_shard_tolerant(
    path: str | os.PathLike[str],
) -> tuple[list[ScenarioOutcome], bool]:
    """Load a shard that may still be in flight (see
    :func:`parse_shard_text`)."""
    shard = Path(path)
    return parse_shard_text(shard.read_text(encoding="utf-8"), str(shard))


def encode_record(outcome: ScenarioOutcome) -> str:
    """One outcome as its canonical shard line (newline included).

    This is *the* shard byte format: :func:`write_shard`, the pool
    workers (:mod:`repro.orchestration.pool`, which pre-encode result
    batches worker-side) and :meth:`SweepResult.write_jsonl
    <repro.orchestration.parallel.SweepResult.write_jsonl>` all share
    it, which is what makes pooled and serial shard files byte-identical.
    """
    return json.dumps(outcome.to_record(), sort_keys=True) + "\n"


def write_shard(
    outcomes: Iterable[ScenarioOutcome], path: str | os.PathLike[str]
) -> Path:
    """Write outcomes as one JSONL shard (atomically); returns the path.

    Records are encoded lazily and streamed through the buffered
    temp-file writer (:func:`repro.store.atomic.atomic_write_lines`):
    one buffered ``writelines`` drain instead of concatenating the whole
    shard into a single string first, with the atomic temp+rename
    contract — and therefore :class:`ShardTruncatedError`-free reads —
    unchanged.
    """
    return atomic_write_lines(
        path, (encode_record(outcome) for outcome in outcomes)
    )


def canonical_order(outcome: ScenarioOutcome) -> tuple[Any, ...]:
    """Sort key giving merged outcomes a split-independent order."""
    spec = outcome.spec
    return (spec.cell_id, spec.seed_index, spec.seed, spec.index)


def matrix_order(outcome: ScenarioOutcome) -> tuple[Any, ...]:
    """Sort key reproducing one matrix's *expansion* order.

    Shard slices preserve their specs' original matrix indices, so
    sorting a fold of one dispatched matrix by ``spec.index`` puts the
    outcomes back in exactly the order the unsharded sweep would emit —
    which is what lets ``repro collect`` finalize a JSONL byte-identical
    to ``repro sweep``.  The canonical key breaks ties for folds that
    mix records from differently shaped matrices.
    """
    return (outcome.spec.index,) + canonical_order(outcome)


def _identity(outcome: ScenarioOutcome) -> dict[str, Any]:
    """An outcome's comparable payload: its canonical record minus the
    matrix index (two runs may legitimately place one scenario at
    different grid positions).  Built from the *reconstructed* outcome,
    not the raw shard line, so records written by older code (before
    optional spec fields existed) compare equal to current-code records
    of the same result instead of spuriously conflicting."""
    payload = outcome.to_record()
    payload.pop("index", None)
    return payload


@dataclass
class MergeResult:
    """Outcome of merging one or more JSONL shards."""

    #: Deduplicated outcomes in canonical (cell, seed) order.
    outcomes: list[ScenarioOutcome]
    #: Aggregates over the merged outcomes.
    report: MatrixReport
    #: Records read across all shards (before deduplication).
    total_records: int
    #: Records dropped as exact duplicates of an earlier one.
    duplicates: int
    #: Shard paths, in merge order.
    sources: tuple[str, ...]

    def write_jsonl(self, path: str | os.PathLike[str]) -> Path:
        """Persist the merged outcomes as a single shard."""
        return write_shard(self.outcomes, path)


class ShardFolder:
    """Incremental shard-merge state: the core under :func:`merge_shards`.

    Feed it outcomes (or whole shard files) in any order, at any time;
    :meth:`result` snapshots the deduplicated fold as a
    :class:`MergeResult`.  The incremental collector
    (:mod:`repro.store.collector`) keeps one of these alive across a
    directory watch, folding shard files as they land, so a thousand-
    shard sweep never needs a global re-merge.

    Args:
        on_conflict: What to do when two sources carry *different*
            results for the same scenario: ``"error"`` (default) raises
            :class:`ShardConflictError`; ``"first"`` / ``"last"`` keep
            the earliest / latest record in fold order.
    """

    def __init__(self, on_conflict: str = "error") -> None:
        if on_conflict not in ("error", "first", "last"):
            raise ValueError(
                f"on_conflict must be 'error', 'first' or 'last', "
                f"got {on_conflict!r}"
            )
        self.on_conflict = on_conflict
        self._chosen: dict[str, ScenarioOutcome] = {}
        self._payloads: dict[str, dict[str, Any]] = {}
        self._origins: dict[str, str] = {}
        self.total_records = 0
        self.duplicates = 0
        self.sources: list[str] = []

    def __len__(self) -> int:
        """Distinct scenarios folded so far."""
        return len(self._chosen)

    def add(self, outcome: ScenarioOutcome, source: str = "<memory>") -> bool:
        """Fold one outcome; returns True when it was new (not a dup)."""
        self.total_records += 1
        key = scenario_key(outcome.spec, _MERGE_SALT)
        payload = _identity(outcome)
        if key not in self._chosen:
            self._chosen[key] = outcome
            self._payloads[key] = payload
            self._origins[key] = source
            return True
        if self._payloads[key] == payload:
            self.duplicates += 1
            return False
        if self.on_conflict == "error":
            raise ShardConflictError(
                f"shards disagree about scenario "
                f"{outcome.spec.cell_id} (seed {outcome.spec.seed}): "
                f"{self._origins[key]} vs {source}"
            )
        self.duplicates += 1
        if self.on_conflict == "last":
            self._chosen[key] = outcome
            self._payloads[key] = payload
            self._origins[key] = source
        return False

    def add_outcomes(
        self, outcomes: Iterable[ScenarioOutcome], source: str
    ) -> int:
        """Fold a batch that was already parsed (the collector's path);
        returns how many were new."""
        self.sources.append(source)
        added = 0
        for outcome in outcomes:
            if self.add(outcome, source):
                added += 1
        return added

    def add_shard(
        self, path: str | os.PathLike[str], partial: str = "error"
    ) -> tuple[int, bool]:
        """Fold every record of one shard file.

        Returns ``(records, complete)``.  ``partial`` controls truncated
        final lines (a shard being appended concurrently): ``"error"``
        (default) propagates :class:`ShardTruncatedError`; ``"tail"``
        folds the complete-record prefix and reports ``complete=False``.
        """
        if partial not in ("error", "tail"):
            raise ValueError(
                f"partial must be 'error' or 'tail', got {partial!r}"
            )
        source = str(path)
        self.sources.append(source)
        records = 0
        complete = True
        outcomes = _iter_shard_outcomes(path)
        while True:
            try:
                outcome = next(outcomes)
            except StopIteration:
                break
            except ShardTruncatedError:
                if partial == "error":
                    raise
                complete = False
                break
            self.add(outcome, source)
            records += 1
        return records, complete

    def result(self, order: Any = None) -> MergeResult:
        """Snapshot the fold (``order`` defaults to
        :func:`canonical_order`; the collector passes
        :func:`matrix_order`)."""
        outcomes = sorted(
            self._chosen.values(),
            key=canonical_order if order is None else order,
        )
        return MergeResult(
            outcomes=outcomes,
            report=aggregate_outcomes(outcomes),
            total_records=self.total_records,
            duplicates=self.duplicates,
            sources=tuple(self.sources),
        )


def merge_shards(
    paths: Iterable[str | os.PathLike[str]],
    on_conflict: str = "error",
    partial: str = "error",
) -> MergeResult:
    """Merge JSONL shards into one deduplicated report.

    Args:
        paths: Shard files, e.g. from ``repro sweep --jsonl`` runs on
            disjoint (or overlapping) slices of one matrix.
        on_conflict: What to do when two shards carry *different* results
            for the same scenario: ``"error"`` (default) raises
            :class:`ShardConflictError`; ``"first"`` / ``"last"`` keep
            the earliest / latest record in merge order.
        partial: ``"tail"`` treats a shard whose final line is truncated
            (still being written) as in-progress — its complete prefix
            merges, nothing raises; ``"error"`` (default) raises
            :class:`ShardTruncatedError`.
    """
    folder = ShardFolder(on_conflict=on_conflict)
    for path in paths:
        folder.add_shard(path, partial=partial)
    return folder.result()
