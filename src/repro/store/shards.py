"""JSONL shard reading, writing and merging.

A *shard* is the JSONL file a sweep persists (one flat record per
scenario, the format of :meth:`ScenarioOutcome.to_record`).  Sweeps run
at different times — or on different machines — each produce their own
shard; :func:`merge_shards` folds any number of them into one
deduplicated outcome set and a single
:class:`~repro.analysis.aggregation.MatrixReport`.

Deduplication is content-addressed: records are keyed by
:func:`~repro.store.cache.scenario_key` (semantic identity, matrix
``index`` excluded), so re-running an overlapping grid is harmless.  Two
records with the same key but *different* results mean the shards were
produced by incompatible code or a corrupted run; that raises
:class:`ShardConflictError` by default (``on_conflict="first"/"last"``
picks a side instead).

Merged outcomes are ordered canonically — by cell id, then seed index,
then seed — so the merge of a partitioned sweep is deterministic no
matter how the work was split.

Shards are schema-versioned through the spec codec
(:mod:`repro.orchestration.axes`): schema-1 records (written before the
axis registry) decode via the omit-defaults migration shim in
:meth:`ScenarioSpec.from_dict` and compare equal to current-code
records of the same scenario, so old and new shards merge cleanly;
records from a *newer* schema fail loudly with file and line.  This is
also the merge path for ``repro sweep --shard i/N`` runs: the N shard
files of one matrix merge back into exactly the single-machine sweep.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..analysis.aggregation import MatrixReport, aggregate_outcomes
from ..orchestration.matrix import ScenarioOutcome, outcome_from_record
from .atomic import atomic_write_text
from .cache import scenario_key

__all__ = [
    "MergeResult",
    "ShardConflictError",
    "canonical_order",
    "iter_shard_records",
    "merge_shards",
    "read_shard",
    "write_shard",
]

#: Salt for merge identity keys: constant, so shards written by any
#: sweep of the same scenarios collide (which is the point).
_MERGE_SALT = "shard-merge"


class ShardConflictError(ValueError):
    """Two shards disagree about the result of the same scenario."""


def _iter_shard_lines(
    path: str | os.PathLike[str],
) -> Iterator[tuple[int, dict[str, Any]]]:
    shard = Path(path)
    with shard.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield lineno, json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{shard}:{lineno}: malformed shard record: {exc}"
                ) from None


def iter_shard_records(path: str | os.PathLike[str]) -> Iterator[dict[str, Any]]:
    """Yield each JSON record in a shard (blank lines are skipped).

    Malformed lines raise ``ValueError`` naming the file and line — a
    truncated shard should fail loudly here, not surface as a half-merged
    report (writes via :func:`write_shard` are atomic precisely so this
    never happens in normal operation).
    """
    for _, record in _iter_shard_lines(path):
        yield record


def _iter_shard_outcomes(
    path: str | os.PathLike[str],
) -> Iterator[ScenarioOutcome]:
    """Reconstruct each record, failing loudly with file and line on
    schema-invalid (but well-formed JSON) records."""
    for lineno, record in _iter_shard_lines(path):
        try:
            yield outcome_from_record(record)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValueError(
                f"{Path(path)}:{lineno}: invalid shard record "
                f"({type(exc).__name__}: {exc})"
            ) from None


def read_shard(path: str | os.PathLike[str]) -> list[ScenarioOutcome]:
    """Load every outcome in one JSONL shard, in file order."""
    return list(_iter_shard_outcomes(path))


def write_shard(
    outcomes: Iterable[ScenarioOutcome], path: str | os.PathLike[str]
) -> Path:
    """Write outcomes as one JSONL shard (atomically); returns the path."""
    text = "".join(
        json.dumps(outcome.to_record(), sort_keys=True) + "\n"
        for outcome in outcomes
    )
    return atomic_write_text(path, text)


def canonical_order(outcome: ScenarioOutcome) -> tuple[Any, ...]:
    """Sort key giving merged outcomes a split-independent order."""
    spec = outcome.spec
    return (spec.cell_id, spec.seed_index, spec.seed, spec.index)


def _identity(outcome: ScenarioOutcome) -> dict[str, Any]:
    """An outcome's comparable payload: its canonical record minus the
    matrix index (two runs may legitimately place one scenario at
    different grid positions).  Built from the *reconstructed* outcome,
    not the raw shard line, so records written by older code (before
    optional spec fields existed) compare equal to current-code records
    of the same result instead of spuriously conflicting."""
    payload = outcome.to_record()
    payload.pop("index", None)
    return payload


@dataclass
class MergeResult:
    """Outcome of merging one or more JSONL shards."""

    #: Deduplicated outcomes in canonical (cell, seed) order.
    outcomes: list[ScenarioOutcome]
    #: Aggregates over the merged outcomes.
    report: MatrixReport
    #: Records read across all shards (before deduplication).
    total_records: int
    #: Records dropped as exact duplicates of an earlier one.
    duplicates: int
    #: Shard paths, in merge order.
    sources: tuple[str, ...]

    def write_jsonl(self, path: str | os.PathLike[str]) -> Path:
        """Persist the merged outcomes as a single shard."""
        return write_shard(self.outcomes, path)


def merge_shards(
    paths: Iterable[str | os.PathLike[str]],
    on_conflict: str = "error",
) -> MergeResult:
    """Merge JSONL shards into one deduplicated report.

    Args:
        paths: Shard files, e.g. from ``repro sweep --jsonl`` runs on
            disjoint (or overlapping) slices of one matrix.
        on_conflict: What to do when two shards carry *different* results
            for the same scenario: ``"error"`` (default) raises
            :class:`ShardConflictError`; ``"first"`` / ``"last"`` keep
            the earliest / latest record in merge order.
    """
    if on_conflict not in ("error", "first", "last"):
        raise ValueError(
            f"on_conflict must be 'error', 'first' or 'last', "
            f"got {on_conflict!r}"
        )
    ordered_paths = [str(p) for p in paths]
    chosen: dict[str, ScenarioOutcome] = {}
    payloads: dict[str, dict[str, Any]] = {}
    origins: dict[str, str] = {}
    total = 0
    duplicates = 0
    for path in ordered_paths:
        for outcome in _iter_shard_outcomes(path):
            total += 1
            key = scenario_key(outcome.spec, _MERGE_SALT)
            payload = _identity(outcome)
            if key not in chosen:
                chosen[key] = outcome
                payloads[key] = payload
                origins[key] = path
                continue
            if payloads[key] == payload:
                duplicates += 1
                continue
            if on_conflict == "error":
                raise ShardConflictError(
                    f"shards disagree about scenario "
                    f"{outcome.spec.cell_id} (seed {outcome.spec.seed}): "
                    f"{origins[key]} vs {path}"
                )
            duplicates += 1
            if on_conflict == "last":
                chosen[key] = outcome
                payloads[key] = payload
                origins[key] = path
    outcomes = sorted(chosen.values(), key=canonical_order)
    return MergeResult(
        outcomes=outcomes,
        report=aggregate_outcomes(outcomes),
        total_records=total,
        duplicates=duplicates,
        sources=tuple(ordered_paths),
    )
