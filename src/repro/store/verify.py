"""Integrity scrub for the persistent result store.

A :class:`~repro.store.cache.ResultCache` is only useful while its
entries still say what a fresh execution would say.  Entries can rot in
ways the normal read path never notices: a code change that slipped past
the version salt, a corrupted-but-parseable record, an entry copied
from a machine that ran different code.  :func:`verify_store`
re-executes a (deterministic) sample of cached scenarios on the current
kernel and compares the fresh outcome record against the stored one,
field by field — the same byte-level contract the golden-trace fixtures
pin for the kernel itself.

``repro store verify DIR`` is the CLI face (non-zero exit on any
mismatch); ROADMAP item "integrity scrub" lands here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from ..orchestration.matrix import ScenarioOutcome, run_scenario
from .cache import ResultCache

__all__ = ["VerifyMismatch", "VerifyReport", "verify_store"]


@dataclass(frozen=True)
class VerifyMismatch:
    """One cached entry that disagrees with a fresh re-execution."""

    key: str
    cell_id: str
    seed: int
    #: Record fields whose stored and fresh values differ.
    fields: tuple[str, ...]

    def describe(self) -> str:
        return (
            f"{self.cell_id} seed={self.seed} key={self.key[:12]}… "
            f"differs in: {', '.join(self.fields)}"
        )


@dataclass
class VerifyReport:
    """Outcome of one :func:`verify_store` scrub."""

    #: Entries present on disk (readable or not).
    total: int = 0
    #: Entries whose scenarios were re-executed and compared.
    checked: int = 0
    #: Re-executions that reproduced the stored record exactly.
    matched: int = 0
    #: Unparseable/corrupt entries (served as misses by the cache).
    unreadable: int = 0
    #: Entries whose stored key no longer matches the current salt/codec
    #: (written by other code; never served, only wasting disk).
    stale: int = 0
    mismatches: list[VerifyMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no checked entry disagreed with re-execution."""
        return not self.mismatches

    @property
    def vacuous(self) -> bool:
        """True when entries exist but none could actually be verified
        (every candidate was stale or unreadable) — ``ok`` then says
        nothing about the store, and the CLI reports UNVERIFIED."""
        return self.total > 0 and self.checked == 0

    def describe(self) -> str:
        lines = [
            f"{self.total} entr{'y' if self.total == 1 else 'ies'} on disk: "
            f"{self.checked} re-executed, {self.matched} matched, "
            f"{len(self.mismatches)} mismatched, {self.stale} stale, "
            f"{self.unreadable} unreadable"
        ]
        lines.extend(f"  MISMATCH {m.describe()}" for m in self.mismatches)
        return "\n".join(lines)


def _diff_fields(stored: dict[str, Any], fresh: dict[str, Any]) -> tuple[str, ...]:
    names = sorted(set(stored) | set(fresh))
    return tuple(
        name for name in names if stored.get(name) != fresh.get(name)
    )


def verify_store(
    cache: ResultCache,
    sample: int | None = None,
    seed: int = 0,
    execute: Callable[..., ScenarioOutcome] = run_scenario,
    on_entry: Callable[[str, bool], None] | None = None,
) -> VerifyReport:
    """Re-execute cached scenarios and compare digests.

    Args:
        cache: The store to scrub.
        sample: Re-execute at most this many entries (``None``: all).
            Sampling is deterministic in ``seed``, so repeated scrubs of
            an unchanged store check the same cells.
        seed: Sample-selection seed.
        execute: Scenario executor (injectable for tests).
        on_entry: Optional progress callback ``(key, matched)`` called
            after each re-execution.

    Returns a :class:`VerifyReport`; ``report.ok`` is False when any
    re-executed scenario produced a different record than the store
    holds — the signal that entries and code have drifted apart.

    Sampling happens at the *key* level, before any entry is read: a
    ``--sample 10`` scrub of a 100k-entry store lists 100k file names
    but decodes (and re-executes) only 10.  ``unreadable`` and ``stale``
    therefore count only entries the scrub actually opened.
    """
    if sample is not None and sample < 0:
        raise ValueError(f"sample must be >= 0, got {sample}")
    report = VerifyReport()
    keys = [key for key, _ in cache.iter_entry_keys()]
    report.total = len(keys)
    if sample is not None and sample < len(keys):
        keys = sorted(random.Random(seed).sample(keys, sample))
    for key in keys:
        outcome = cache.read_entry(key)
        if outcome is None:
            report.unreadable += 1
            continue
        if cache.key(outcome.spec) != key:
            report.stale += 1
            continue
        fresh = execute(outcome.spec)
        stored_record = outcome.to_record()
        fresh_record = fresh.to_record()
        report.checked += 1
        if stored_record == fresh_record:
            report.matched += 1
            matched = True
        else:
            matched = False
            report.mismatches.append(VerifyMismatch(
                key=key,
                cell_id=outcome.spec.cell_id,
                seed=outcome.spec.seed,
                fields=_diff_fields(stored_record, fresh_record),
            ))
        if on_entry is not None:
            on_entry(key, matched)
    return report
