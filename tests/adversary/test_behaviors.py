"""Unit tests for Byzantine actor machinery."""

from repro.adversary import DROP, MisbehavingProcess, RawByzantine
from repro.adversary.strategies import (
    compose_filters,
    crash_at_filter,
    honest_filter,
    mute_coordinator_filter,
    two_faced_filter,
)
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def wired_network(n=4, seed=0):
    sim = Simulator()
    network = Network(sim, n, rng=RngRegistry(seed))
    inboxes = {pid: [] for pid in range(1, n + 1)}
    return sim, network, inboxes


class TestMisbehavingProcess:
    def test_honest_filter_passes_through(self):
        sim, network, inboxes = wired_network()
        for pid in (2, 3, 4):
            network.register_process(pid, inboxes[pid].append)
        proc = MisbehavingProcess(1, sim, network, honest_filter)
        proc.broadcast("T", ("i", "v"))
        sim.run()
        assert inboxes[2][0].payload == ("i", "v")
        assert inboxes[3][0].payload == ("i", "v")

    def test_two_faced_rewrites_for_even_destinations(self):
        sim, network, inboxes = wired_network()
        for pid in (2, 3, 4):
            network.register_process(pid, inboxes[pid].append)
        proc = MisbehavingProcess(1, sim, network, two_faced_filter("FAKE"))
        proc.broadcast("T", ("i", "real"))
        sim.run()
        assert inboxes[2][0].payload == ("i", "FAKE")
        assert inboxes[3][0].payload == ("i", "real")
        assert inboxes[4][0].payload == ("i", "FAKE")

    def test_mute_coordinator_drops_only_coord(self):
        sim, network, inboxes = wired_network()
        network.register_process(2, inboxes[2].append)
        proc = MisbehavingProcess(1, sim, network, mute_coordinator_filter())
        proc.send(2, "EA_COORD", (1, "v"))
        proc.send(2, "EA_PROP2", (1, "v"))
        sim.run()
        assert [m.tag for m in inboxes[2]] == ["EA_PROP2"]

    def test_crash_at_goes_silent(self):
        sim, network, inboxes = wired_network()
        network.register_process(2, inboxes[2].append)
        proc = MisbehavingProcess(1, sim, network, crash_at_filter(5.0))
        proc.send(2, "T", "before")
        sim.call_at(10.0, lambda: proc.send(2, "T", "after"))
        sim.run()
        assert [m.payload for m in inboxes[2]] == ["before"]

    def test_compose_filters_drop_wins(self):
        filt = compose_filters(two_faced_filter("F"), crash_at_filter(0.0))
        assert filt(2, "T", ("i", "v"), 1.0) is DROP

    def test_compose_filters_chains_rewrites(self):
        upper = lambda dst, tag, payload, now: (payload[0], str(payload[1]).upper())
        filt = compose_filters(two_faced_filter("fake"), upper)
        assert filt(2, "T", ("i", "v"), 0.0) == ("i", "FAKE")
        assert filt(3, "T", ("i", "v"), 0.0) == ("i", "V")


class TestRawByzantine:
    def test_silent_by_default(self):
        sim, network, inboxes = wired_network()
        network.register_process(2, inboxes[2].append)
        actor = RawByzantine(1, sim, network, RngRegistry(0).stream("a"))
        network.send(2, 1, "PING", None)
        sim.run()
        assert inboxes[2] == []
        assert actor.received == 1

    def test_noise_reflects_mutations(self):
        sim, network, inboxes = wired_network()
        for pid in (2, 3, 4):
            network.register_process(pid, inboxes[pid].append)
        RawByzantine(
            1, sim, network, RngRegistry(0).stream("a"), noise_probability=1.0
        )
        network.send(2, 1, "PING", ("inst", "value"))
        sim.run()
        forged = [m for pid in (2, 3, 4) for m in inboxes[pid] if m.sender == 1]
        assert len(forged) == 1
        assert forged[0].tag == "PING"

    def test_cannot_impersonate(self):
        # Raw sends always carry the actor's own pid.
        sim, network, inboxes = wired_network()
        network.register_process(2, inboxes[2].append)
        actor = RawByzantine(1, sim, network, RngRegistry(0).stream("a"))
        actor.send_raw(2, "T", None)
        sim.run()
        assert inboxes[2][0].sender == 1
