"""Unit tests for named adversary strategies and their deployment."""

import pytest

from repro import RunConfig, run_consensus
from repro.adversary import (
    AdversarySpec,
    bot_relays,
    collude,
    crash,
    crash_at,
    flip_flop,
    mute_coordinator,
    noise,
    spam_decide,
    two_faced,
)
from repro.errors import ConfigurationError


class TestSpecConstruction:
    def test_crash_is_non_protocol(self):
        assert not crash().runs_protocol

    def test_two_faced_carries_fake_value(self):
        spec = two_faced("evil")
        assert spec.params["fake_value"] == "evil"
        assert spec.runs_protocol

    def test_crash_at_records_time(self):
        assert crash_at(42.0).params["time"] == 42.0

    def test_noise_probability(self):
        assert noise(0.25).params["noise_probability"] == 0.25

    def test_unknown_kind_rejected_at_deploy(self):
        config = RunConfig(
            n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
            adversaries={4: AdversarySpec(kind="nonsense")},
        )
        with pytest.raises(ConfigurationError):
            run_consensus(config)


def run_with(spec, seed=0, proposals=None):
    return run_consensus(
        RunConfig(
            n=4, t=1,
            proposals=proposals or {1: "a", 2: "a", 3: "b"},
            adversaries={4: spec},
            seed=seed,
        )
    )


class TestSafetyUnderEveryStrategy:
    @pytest.mark.parametrize(
        "spec",
        [
            crash(),
            noise(0.5),
            crash_at(20.0),
            two_faced("evil"),
            mute_coordinator(),
            collude("evil"),
            spam_decide("evil"),
            bot_relays(),
            flip_flop(["evil1", "evil2"]),
        ],
        ids=lambda s: s.kind,
    )
    def test_agreement_validity_and_termination(self, spec):
        result = run_with(spec, seed=13)
        assert result.all_decided
        assert len(set(result.decisions.values())) == 1
        assert result.decided_value in {"a", "b"}
        assert result.invariants.ok

    def test_spam_decide_never_tricks_anyone(self, seeds):
        for seed in seeds:
            result = run_with(spam_decide("forged"), seed=seed)
            assert result.decided_value != "forged"

    def test_collusion_value_never_enters_cb_valid(self, seeds):
        for seed in seeds:
            result = run_with(collude("evil"), seed=seed)
            for consensus in result.consensi.values():
                assert not consensus.cb0.in_valid("evil")

    def test_crash_mid_run_still_decides(self, seeds):
        for seed in seeds:
            result = run_with(crash_at(10.0), seed=seed)
            assert result.all_decided


class TestPlacement:
    def test_tail_matches_historical_default(self):
        from repro.adversary.strategies import place_adversaries

        assert place_adversaries("tail", 7, 2) == [6, 7]
        assert place_adversaries("tail", 4, 1) == [4]

    def test_head_and_spread(self):
        from repro.adversary.strategies import place_adversaries

        assert place_adversaries("head", 7, 2) == [1, 2]
        assert place_adversaries("spread", 7, 2) == [4, 7]
        assert place_adversaries("spread", 10, 3) == [4, 7, 10]

    def test_zero_faults_places_nobody(self):
        from repro.adversary.strategies import place_adversaries

        for placement in ("tail", "head", "spread"):
            assert place_adversaries(placement, 5, 0) == []

    def test_placements_always_distinct_and_in_range(self):
        from repro.adversary.strategies import PLACEMENTS, place_adversaries

        for placement in PLACEMENTS:
            for n in range(2, 12):
                for faults in range(0, n):
                    pids = place_adversaries(placement, n, faults)
                    assert len(pids) == len(set(pids)) == faults
                    assert all(1 <= pid <= n for pid in pids)

    def test_unknown_placement_rejected(self):
        import pytest

        from repro.adversary.strategies import place_adversaries

        with pytest.raises(ValueError, match="unknown placement"):
            place_adversaries("diagonal", 4, 1)
