"""Edge cases for sweep aggregation and the per-cell table renderer."""

from repro.analysis.aggregation import aggregate_outcomes, render_matrix_table
from repro.orchestration.matrix import (
    ScenarioMatrix,
    ScenarioOutcome,
    ScenarioSpec,
)
from repro.orchestration.parallel import sweep_serial


def make_spec(**overrides) -> ScenarioSpec:
    base = dict(
        n=4, t=1, topology="single_bisource", adversary="crash",
        num_values=2, seed=0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def timed_out_outcome(spec: ScenarioSpec) -> ScenarioOutcome:
    return ScenarioOutcome(
        spec=spec, decided=False, decisions={}, decided_value=None,
        rounds={}, max_round=7, messages_sent=321, events_processed=1000,
        finished_at=5.0, timed_out=True, invariants_ok=True,
    )


def error_outcome(spec: ScenarioSpec) -> ScenarioOutcome:
    return ScenarioOutcome(
        spec=spec, decided=False, decisions={}, decided_value=None,
        rounds={}, max_round=0, messages_sent=0, events_processed=0,
        finished_at=0.0, timed_out=False, invariants_ok=False,
        error="ValueError: boom",
    )


class TestEmptyOutcomeList:
    def test_all_zero_report(self):
        report = aggregate_outcomes([])
        assert report.runs == 0 and report.decided_runs == 0
        assert report.decide_rate == 0.0
        assert report.all_safe
        assert report.cells == {} and report.values == {}
        assert report.rounds.count == 0 and report.rounds.mean == 0.0

    def test_render_does_not_crash(self):
        assert render_matrix_table(aggregate_outcomes([])) == "(no scenarios)"


class TestSingleCellMatrix:
    def test_one_cell_aggregates_and_renders(self):
        matrix = ScenarioMatrix(sizes=[(4, 1)], seeds=range(3))
        assert len(matrix.cells()) == 1
        report = sweep_serial(matrix).report
        assert list(report.cells) == ["n4/t1/single_bisource/crash/m2/f1"]
        cell = report.cells["n4/t1/single_bisource/crash/m2/f1"]
        assert cell.runs == 3 and cell.decide_rate == 1.0
        assert cell.rounds.count == 3
        table = render_matrix_table(report)
        assert "n4/t1/single_bisource/crash/m2/f1" in table
        assert "3/3" in table


class TestDegenerateCells:
    def test_all_runs_timed_out(self):
        outcomes = [
            timed_out_outcome(make_spec(seed=s, seed_index=s, index=s))
            for s in range(3)
        ]
        report = aggregate_outcomes(outcomes)
        assert report.runs == 3 and report.timed_out_runs == 3
        assert report.decided_runs == 0 and report.decide_rate == 0.0
        cell = report.cells["n4/t1/single_bisource/crash/m2/f1"]
        assert cell.timed_out_runs == 3
        # Undecided runs contribute no timing samples: placeholders, not
        # fake zeros.
        assert cell.rounds.count == 0 and cell.messages.count == 0
        row = render_matrix_table(report).splitlines()[-1]
        assert "0/3" in row and "-" in row

    def test_error_runs_counted_but_excluded_from_stats(self):
        ok = sweep_serial(
            ScenarioMatrix(sizes=[(4, 1)], seeds=range(2))
        ).outcomes
        broken = [error_outcome(make_spec(adversary="noise", seed=9, index=2))]
        report = aggregate_outcomes(list(ok) + broken)
        assert report.runs == 3 and report.error_runs == 1
        assert not report.all_safe  # error outcomes fail invariants_ok
        assert report.rounds.count == 2  # only the decided runs sampled
        bad_cell = report.cells["n4/t1/single_bisource/noise/m2/f1"]
        assert bad_cell.error_runs == 1 and bad_cell.rounds.count == 0

    def test_mixed_cell_timeout_and_decide(self):
        matrix = ScenarioMatrix(sizes=[(4, 1)], seeds=range(2))
        decided = sweep_serial(matrix).outcomes
        extra = timed_out_outcome(make_spec(seed=77, seed_index=2, index=2))
        report = aggregate_outcomes(list(decided) + [extra])
        cell = report.cells["n4/t1/single_bisource/crash/m2/f1"]
        assert cell.runs == 3 and cell.decided_runs == 2
        assert cell.timed_out_runs == 1
        assert 0 < cell.decide_rate < 1
