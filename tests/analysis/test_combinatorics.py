"""Unit tests for the analytic round predictions (E5/E6 analytics)."""

import pytest

from repro.analysis.combinatorics import (
    cycle_length,
    first_good_round,
    good_round_density,
    is_good_round,
)
from repro.core.coord import coordinator, f_set
from repro.errors import ConfigurationError


class TestIsGoodRound:
    def test_requires_bisource_coordinator(self):
        n, t = 4, 1
        correct = {1, 2, 3}
        x_plus = {1, 2}
        for r in range(1, 20):
            if is_good_round(r, n, t, 1, x_plus, correct):
                assert coordinator(r, n) == 1

    def test_requires_x_plus_in_f(self):
        n, t = 4, 1
        correct = {1, 2, 3}
        x_plus = {1, 2}
        for r in range(1, 50):
            if is_good_round(r, n, t, 1, x_plus, correct):
                assert x_plus <= f_set(r, n, t)

    def test_requires_correct_witnesses_for_k0(self):
        n, t = 4, 1
        correct = {1, 2, 3}
        for r in range(1, 50):
            if is_good_round(r, n, t, 1, {1, 2}, correct):
                assert f_set(r, n, t) <= correct


class TestFirstGoodRound:
    def test_exists_within_one_cycle(self):
        n, t = 4, 1
        r = first_good_round(n, t, bisource=1, x_plus={1, 2}, correct={1, 2, 3})
        assert 1 <= r <= cycle_length(n, t)

    def test_is_actually_good(self):
        n, t = 7, 2
        correct = {1, 2, 3, 4, 5}
        r = first_good_round(n, t, bisource=1, x_plus={1, 4, 5}, correct=correct)
        assert is_good_round(r, n, t, 1, {1, 4, 5}, correct)

    def test_nothing_earlier_is_good(self):
        n, t = 7, 2
        correct = {1, 2, 3, 4, 5}
        r = first_good_round(n, t, bisource=3, x_plus={3, 4, 5}, correct=correct)
        for earlier in range(1, r):
            assert not is_good_round(earlier, n, t, 3, {3, 4, 5}, correct)

    def test_k_shrinks_the_horizon(self):
        n, t = 7, 2
        correct = {1, 2, 3, 4, 5}
        base = first_good_round(n, t, 1, {1, 4, 5}, correct, k=0)
        tuned = first_good_round(n, t, 1, {1, 2, 3, 4, 5}, correct, k=2)
        assert tuned <= max(base, 7)  # k=t: horizon n

    def test_worst_case_placement_bounded_by_cycle(self):
        # Every (bisource, X+) placement has a good round within beta*n.
        n, t = 5, 1
        correct = {1, 2, 3, 4}
        bound = cycle_length(n, t)
        import itertools

        for bisource in correct:
            others = sorted(correct - {bisource})
            for extra in itertools.combinations(others, t):
                x_plus = {bisource, *extra}
                r = first_good_round(n, t, bisource, x_plus, correct)
                assert r <= bound

    def test_impossible_x_plus_raises(self):
        with pytest.raises(ConfigurationError):
            # x_plus contains a faulty process: never a good round.
            first_good_round(4, 1, 1, x_plus={1, 4}, correct={1, 2, 3})


class TestGoodRoundDensity:
    def test_between_zero_and_one(self):
        density = good_round_density(4, 1, 1, {1, 2}, {1, 2, 3})
        assert 0 < density < 1

    def test_k_equals_t_density_is_one_over_n(self):
        # One witness set, so every round coordinated by the bisource with
        # F containing X+ ... with k=t the only F is everyone, and the
        # faulty-member allowance is k: density = 1/n.
        n, t = 4, 1
        density = good_round_density(n, t, 1, {1, 2, 3}, {1, 2, 3}, k=1)
        assert density == pytest.approx(1 / n)
