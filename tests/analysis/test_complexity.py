"""Unit tests: analytic message budgets bound the measured counts."""

import pytest

from repro import RunConfig, run_consensus
from repro.adversary import crash
from repro.analysis.complexity import (
    adopt_commit_messages,
    cb_instance_messages,
    consensus_budget,
    consensus_round_messages,
    ea_round_messages,
    rb_instance_messages,
)
from repro.broadcast import CooperativeBroadcast
from repro.core.adopt_commit import AdoptCommit
from repro.sim import gather
from tests.helpers import build_system


class TestFormulas:
    def test_rb_formula(self):
        assert rb_instance_messages(4) == 4 + 32

    def test_cb_is_n_rbs(self):
        assert cb_instance_messages(7) == 7 * rb_instance_messages(7)

    def test_round_is_ea_plus_ac(self):
        n = 10
        assert consensus_round_messages(n) == (
            ea_round_messages(n) + adopt_commit_messages(n)
        )

    def test_budget_total(self):
        budget = consensus_budget(4, 1, rounds=3)
        assert budget.total == 3 * budget.per_round + budget.overhead

    def test_cubic_growth(self):
        small = consensus_round_messages(4)
        large = consensus_round_messages(8)
        assert 6 < large / small < 10  # ~ (8/4)^3 with lower-order terms


class TestBoundsMeasured:
    def test_rb_measured_within_bound(self):
        system = build_system(7, 2)
        system.rbs[1].broadcast("k", "v")
        system.settle()
        assert system.network.messages_sent <= rb_instance_messages(7)

    def test_cb_measured_within_bound(self):
        system = build_system(4, 1)
        cbs = {
            pid: CooperativeBroadcast(proc, system.rbs[pid], 4, 1, "c")
            for pid, proc in system.processes.items()
        }
        tasks = [
            system.processes[pid].create_task(cbs[pid].cb_broadcast("v"))
            for pid in cbs
        ]
        system.run(gather(system.sim, tasks))
        system.settle()
        assert system.network.messages_sent <= cb_instance_messages(4)

    def test_ac_measured_within_bound(self):
        system = build_system(4, 1)
        acs = {
            pid: AdoptCommit(proc, system.rbs[pid], 4, 1, m=1, instance="i")
            for pid, proc in system.processes.items()
        }
        tasks = [
            system.processes[pid].create_task(acs[pid].propose("v"))
            for pid in acs
        ]
        system.run(gather(system.sim, tasks))
        system.settle()
        assert system.network.messages_sent <= adopt_commit_messages(4)

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
    def test_consensus_run_within_budget(self, n, t):
        byz = {pid: crash() for pid in range(n - t + 1, n + 1)}
        proposals = {pid: "v" for pid in range(1, n - t + 1)}
        result = run_consensus(
            RunConfig(n=n, t=t, proposals=proposals, adversaries=byz, seed=1)
        )
        # +1 round of slack: laggards may touch round max_round + 1
        # message instances before deciding.
        budget = consensus_budget(n, t, rounds=result.max_round + 1)
        assert result.messages_sent <= budget.total
