"""Unit tests for the m-valued feasibility condition (E7 analytics)."""

import pytest

from repro.analysis.feasibility import (
    check_feasibility,
    is_feasible,
    max_values,
    min_processes,
)
from repro.errors import FeasibilityError


class TestIsFeasible:
    def test_paper_examples(self):
        # n=4, t=1: m_max = 2.
        assert is_feasible(4, 1, 2)
        assert not is_feasible(4, 1, 3)
        # n=7, t=2: m_max = 2.
        assert is_feasible(7, 2, 2)
        assert not is_feasible(7, 2, 3)

    def test_binary_consensus_feasible_at_max_resilience(self):
        # n = 3t+1 always supports m = 2 (the n-t > 2t bound).
        for t in range(1, 10):
            assert is_feasible(3 * t + 1, t, 2)

    def test_m_must_be_positive(self):
        assert not is_feasible(4, 1, 0)

    def test_t_zero_always_feasible(self):
        assert is_feasible(2, 0, 100)


class TestMaxValues:
    def test_formula(self):
        assert max_values(4, 1) == 2
        assert max_values(7, 2) == 2
        assert max_values(10, 3) == 2
        assert max_values(10, 1) == 8

    def test_consistency_with_is_feasible(self):
        for n in range(4, 20):
            for t in range(1, (n - 1) // 3 + 1):
                m = max_values(n, t)
                assert is_feasible(n, t, m)
                assert not is_feasible(n, t, m + 1)

    def test_t_zero_sentinel(self):
        assert max_values(5, 0) == 5


class TestCheckFeasibility:
    def test_passes_quietly(self):
        check_feasibility(7, 2, 2)

    def test_raises_with_helpful_message(self):
        with pytest.raises(FeasibilityError, match="max admissible m is 2"):
            check_feasibility(7, 2, 3)


class TestMinProcesses:
    def test_resilience_dominates_for_small_m(self):
        assert min_processes(t=2, m=1) == 7  # 3t+1

    def test_feasibility_dominates_for_large_m(self):
        assert min_processes(t=2, m=5) == 13  # m*t + t + 1

    def test_round_trip(self):
        for t in range(1, 6):
            for m in range(1, 6):
                n = min_processes(t, m)
                assert is_feasible(n, t, m)
                assert n > 3 * t


class TestCellFeasibility:
    def test_feasible_cell_combines_all_bounds(self):
        from repro.analysis.feasibility import feasible_cell

        assert feasible_cell(4, 1)
        assert feasible_cell(7, 2, k=2)
        assert not feasible_cell(6, 2)          # resilience
        assert not feasible_cell(4, 1, k=2)     # k > t
        assert not feasible_cell(7, 2, faults=3)  # faults > t
        assert feasible_cell(7, 2, faults=0)

    def test_faults_none_means_full_budget(self):
        from repro.analysis.feasibility import feasible_cell

        assert feasible_cell(4, 1, faults=None)

    def test_clamp_values_standard_vs_bot(self):
        from repro.analysis.feasibility import clamp_values, max_values

        assert clamp_values(4, 1, 5) == max_values(4, 1) == 2
        assert clamp_values(7, 2, 5, variant="bot") == 5
        # bounded by the correct-process count either way
        assert clamp_values(7, 2, 9, faults=2, variant="bot") == 5
        assert clamp_values(4, 1, 0) == 1
