"""Unit tests for the trace invariant checkers."""

import pytest

from repro.analysis.invariants import (
    InvariantReport,
    check_agreement,
    check_rb_consistency,
    check_validity,
    verify_consensus_run,
)
from repro.core.values import BOT
from repro.errors import InvariantViolation


class TestAgreement:
    def test_clean(self):
        assert check_agreement({1: "v", 2: "v"}) == []

    def test_violation_detected(self):
        violations = check_agreement({1: "v", 2: "w"})
        assert len(violations) == 1
        assert violations[0].check == "agreement"

    def test_empty_decisions_fine(self):
        assert check_agreement({}) == []


class TestValidity:
    def test_clean(self):
        assert check_validity({1: "a"}, {1: "a", 2: "b"}) == []

    def test_unproposed_value_flagged(self):
        violations = check_validity({1: "evil"}, {1: "a", 2: "b"})
        assert violations and violations[0].check == "validity"

    def test_bot_rejected_in_standard_mode(self):
        assert check_validity({1: BOT}, {1: "a"}) != []

    def test_bot_allowed_in_variant_mode(self):
        assert check_validity({1: BOT}, {1: "a"}, allow_bot=True) == []


class FakeRB:
    def __init__(self, delivered):
        self.delivered = delivered


class TestRBConsistency:
    def test_clean(self):
        engines = {
            1: FakeRB({(1, "k"): "v"}),
            2: FakeRB({(1, "k"): "v"}),
        }
        assert check_rb_consistency(engines) == []

    def test_conflicting_deliveries_flagged(self):
        engines = {
            1: FakeRB({(1, "k"): "v"}),
            2: FakeRB({(1, "k"): "w"}),
        }
        violations = check_rb_consistency(engines)
        assert violations and violations[0].check == "rb-consistency"

    def test_partial_delivery_is_not_a_violation(self):
        engines = {
            1: FakeRB({(1, "k"): "v"}),
            2: FakeRB({}),
        }
        assert check_rb_consistency(engines) == []


class TestReport:
    def test_ok_report(self):
        report = InvariantReport()
        assert report.ok
        report.raise_if_failed()  # no-op

    def test_raise_lists_violations(self):
        report = verify_consensus_run({1: "v", 2: "w"}, {1: "v", 2: "w"})
        assert not report.ok
        with pytest.raises(InvariantViolation, match="agreement"):
            report.raise_if_failed()

    def test_verify_full_surface(self):
        report = verify_consensus_run(
            {1: "v"},
            {1: "v"},
            rb_engines={1: FakeRB({})},
        )
        assert report.ok
