"""Negative tests: the invariant checkers must actually catch violations."""

from repro.analysis.invariants import (
    check_ac_round_safety,
    check_cb_validity,
    verify_consensus_run,
)
from repro.core.adopt_commit import Tag


class FakeConsensus:
    def __init__(self, est_history, cb_valid=()):
        self.est_history = est_history
        self.cb0 = FakeCB(cb_valid)


class FakeCB:
    def __init__(self, cb_valid):
        self.cb_valid = tuple(cb_valid)


class TestACRoundSafetyNegative:
    def test_two_committed_values_flagged(self):
        consensi = {
            1: FakeConsensus([(1, Tag.COMMIT, "a")]),
            2: FakeConsensus([(1, Tag.COMMIT, "b")]),
        }
        violations = check_ac_round_safety(consensi)
        assert violations
        assert violations[0].check == "ac-quasi-agreement"

    def test_commit_with_divergent_adopt_flagged(self):
        consensi = {
            1: FakeConsensus([(1, Tag.COMMIT, "a")]),
            2: FakeConsensus([(1, Tag.ADOPT, "b")]),
        }
        assert check_ac_round_safety(consensi)

    def test_commit_with_matching_adopt_clean(self):
        consensi = {
            1: FakeConsensus([(1, Tag.COMMIT, "a")]),
            2: FakeConsensus([(1, Tag.ADOPT, "a")]),
        }
        assert check_ac_round_safety(consensi) == []

    def test_adopts_only_never_flagged(self):
        consensi = {
            1: FakeConsensus([(1, Tag.ADOPT, "a")]),
            2: FakeConsensus([(1, Tag.ADOPT, "b")]),
        }
        assert check_ac_round_safety(consensi) == []

    def test_rounds_checked_independently(self):
        consensi = {
            1: FakeConsensus([(1, Tag.ADOPT, "a"), (2, Tag.COMMIT, "a")]),
            2: FakeConsensus([(1, Tag.ADOPT, "b"), (2, Tag.COMMIT, "a")]),
        }
        assert check_ac_round_safety(consensi) == []


class TestCBValidityNegative:
    def test_foreign_value_flagged(self):
        violations = check_cb_validity(
            {1: FakeCB(["evil"])}, correct_proposals={1: "a"}
        )
        assert violations and violations[0].check == "cb-set-validity"

    def test_bot_flagged_in_standard_mode(self):
        from repro.core.values import BOT

        violations = check_cb_validity(
            {1: FakeCB([BOT])}, correct_proposals={1: "a"}
        )
        assert violations

    def test_bot_allowed_in_variant_mode(self):
        from repro.core.values import BOT

        violations = check_cb_validity(
            {1: FakeCB([BOT, "a"])}, correct_proposals={1: "a"}, allow_bot=True
        )
        assert violations == []


class TestFullReportNegative:
    def test_report_collects_multiple_violations(self):
        report = verify_consensus_run(
            decisions={1: "x", 2: "y"},          # disagreement
            correct_proposals={1: "a", 2: "b"},  # and both invalid
        )
        checks = {violation.check for violation in report.violations}
        assert "agreement" in checks
        assert "validity" in checks
        assert len(report.violations) >= 3
