"""Unit tests for metrics collection."""

from repro.analysis.metrics import MessageCounter, summarize
from repro.net import Network
from repro.sim import RngRegistry, Simulator


class TestMessageCounter:
    def test_counts_by_tag_and_sender(self):
        sim = Simulator()
        network = Network(sim, 3, rng=RngRegistry(0))
        for pid in range(1, 4):
            network.register_process(pid, lambda m: None)
        counter = MessageCounter().attach(network)
        network.broadcast(1, "A", None)
        network.send(2, 3, "B", None)
        sim.run()
        assert counter.total_sends == 4
        assert counter.sends_by_tag == {"A": 3, "B": 1}
        assert counter.sends_by_sender == {1: 3, 2: 1}
        assert counter.total_delivers == 4
        assert counter.delivers_by_tag == {"A": 3, "B": 1}

    def test_delivers_lag_sends_mid_flight(self):
        sim = Simulator()
        network = Network(sim, 3, rng=RngRegistry(0))
        for pid in range(1, 4):
            network.register_process(pid, lambda m: None)
        counter = MessageCounter().attach(network)
        network.send(1, 2, "X", None)
        assert counter.total_sends == 1
        assert counter.total_delivers == 0


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.mean == summary.minimum == summary.maximum == 5.0
        assert summary.p50 == summary.p90 == 5.0

    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_unsorted_input(self):
        summary = summarize([5.0, 1.0, 3.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_values_preserved(self):
        values = [2.0, 1.0]
        assert summarize(values).values == values
