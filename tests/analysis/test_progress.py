"""Progress rendering degrades instead of raising on odd inputs."""

import shutil

from repro.analysis.progress import (
    format_eta,
    render_progress,
    terminal_bar_width,
)


class TestRenderProgress:
    def test_normal_bar(self):
        assert render_progress(12, 40, width=10) == "[###.......] 12/40 (30%)"

    def test_zero_total_renders_indefinite(self):
        assert render_progress(5, 0, width=4) == "[----] 5/?"
        assert render_progress(0, 0, width=4) == "[----] 0/?"

    def test_negative_total_renders_indefinite(self):
        assert render_progress(3, -1, width=4) == "[----] 3/?"

    def test_negative_done_clamps_to_zero(self):
        assert render_progress(-7, 10, width=5) == "[.....] 0/10 (0%)"
        assert render_progress(-7, 0, width=4) == "[----] 0/?"

    def test_done_beyond_total_clamps_to_full(self):
        assert render_progress(99, 10, width=5) == "[#####] 10/10 (100%)"

    def test_width_below_one_clamps_to_one_cell(self):
        assert render_progress(1, 2, width=0) == "[.] 1/2 (50%)"
        assert render_progress(2, 2, width=-5) == "[#] 2/2 (100%)"


class TestTerminalBarWidth:
    def test_fits_a_narrow_terminal(self, monkeypatch):
        monkeypatch.setattr(
            shutil, "get_terminal_size",
            lambda: shutil.os.terminal_size((40, 24)),
        )
        assert terminal_bar_width(reserve=30) == 10

    def test_wide_terminal_caps_at_the_default(self, monkeypatch):
        monkeypatch.setattr(
            shutil, "get_terminal_size",
            lambda: shutil.os.terminal_size((500, 24)),
        )
        assert terminal_bar_width() == 30

    def test_too_narrow_never_goes_below_one(self, monkeypatch):
        monkeypatch.setattr(
            shutil, "get_terminal_size",
            lambda: shutil.os.terminal_size((10, 24)),
        )
        assert terminal_bar_width(reserve=30) == 1

    def test_unknowable_size_falls_back(self, monkeypatch):
        def boom():
            raise OSError("no tty")

        monkeypatch.setattr(shutil, "get_terminal_size", boom)
        assert terminal_bar_width() == 30


class TestFormatEta:
    def test_linear_projection(self):
        assert format_eta(10, 20, elapsed=10.0) == "~10s left"

    def test_long_remainders_in_minutes(self):
        assert format_eta(1, 100, elapsed=2.0) == "~3.3min left"

    def test_no_rate_or_finished_is_empty(self):
        assert format_eta(0, 10, elapsed=5.0) == ""
        assert format_eta(5, 10, elapsed=0.0) == ""
        assert format_eta(10, 10, elapsed=5.0) == ""
