"""Unit tests for ensemble aggregation and reporting."""

from repro import RunConfig, run_consensus
from repro.adversary import crash
from repro.analysis.reporting import (
    EnsembleReport,
    aggregate,
    render_ensemble_table,
)


def make_results(seeds, **overrides):
    results = []
    for seed in seeds:
        defaults = dict(
            n=4, t=1, proposals={1: "a", 2: "a", 3: "b"},
            adversaries={4: crash()}, seed=seed,
        )
        defaults.update(overrides)
        results.append(run_consensus(RunConfig(**defaults)))
    return results


class TestAggregate:
    def test_counts_and_rate(self):
        report = aggregate(make_results([1, 2, 3]))
        assert report.runs == 3
        assert report.decided_runs == 3
        assert report.decision_rate == 1.0

    def test_value_histogram(self):
        report = aggregate(make_results([1, 2, 3, 4]))
        assert sum(report.values.values()) == 4
        assert set(report.values) <= {"'a'", "'b'"}

    def test_summaries_populated(self):
        report = aggregate(make_results([1, 2]))
        assert report.rounds.count == 2
        assert report.latency.mean > 0
        assert report.messages.mean > 0

    def test_safety_flag(self):
        report = aggregate(make_results([1]))
        assert report.all_safe

    def test_timed_out_runs_counted_but_not_decided(self):
        results = make_results([1], max_rounds=0, max_time=200.0)
        report = aggregate(results)
        assert report.runs == 1
        assert report.decided_runs == 0
        assert report.decision_rate == 0.0
        assert report.rounds.count == 0

    def test_decision_spread_tracked(self):
        report = aggregate(make_results([1, 2, 3]))
        assert report.max_decision_spread >= 0.0

    def test_empty(self):
        report = aggregate([])
        assert report.runs == 0
        assert report.decision_rate == 0.0


class TestRender:
    def test_table_contains_labels_and_rates(self):
        report = aggregate(make_results([1, 2]))
        text = render_ensemble_table([("baseline", report)])
        assert "baseline" in text
        assert "2/2" in text
        assert "OK" in text

    def test_dash_for_empty_summaries(self):
        text = render_ensemble_table([("none", EnsembleReport(runs=1))])
        assert "-" in text
