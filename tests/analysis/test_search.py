"""Unit tests for schedule search helpers."""

import pytest

from repro import RunConfig
from repro.adversary import crash, two_faced
from repro.analysis.search import find_non_converging_seed, find_worst_seed


def base_config(**overrides):
    defaults = dict(
        n=4, t=1, proposals={1: "a", 2: "b", 3: "a"},
        adversaries={4: two_faced("evil")}, seed=0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestFindWorstSeed:
    def test_returns_max_cost_seed(self):
        outcome = find_worst_seed(base_config(), seeds=range(5))
        assert 0 <= outcome.seed < 5
        assert outcome.cost == outcome.result.max_round
        # Re-running the winner reproduces the cost (determinism).
        again = find_worst_seed(base_config(), seeds=[outcome.seed])
        assert again.cost == outcome.cost

    def test_custom_cost(self):
        outcome = find_worst_seed(
            base_config(), seeds=range(4),
            cost=lambda r: r.finished_at,
        )
        assert outcome.cost == outcome.result.finished_at

    def test_timed_out_run_is_worst(self):
        config = base_config(adversaries={4: crash()}, max_rounds=0,
                             max_time=200.0)
        outcome = find_worst_seed(config, seeds=range(2))
        assert outcome.cost == float("inf")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            find_worst_seed(base_config(), seeds=[])


class TestFindNonConvergingSeed:
    def test_none_for_live_algorithm(self):
        assert find_non_converging_seed(base_config(), seeds=range(3)) is None

    def test_finds_budget_misses(self):
        config = base_config(adversaries={4: crash()}, max_rounds=0,
                             max_time=200.0)
        outcome = find_non_converging_seed(config, seeds=range(3))
        assert outcome is not None
        assert outcome.result.timed_out
