"""Unit tests for the ASCII timeline renderer."""

from repro import RunConfig, run_consensus
from repro.adversary import crash
from repro.analysis.timeline import DEFAULT_MARKERS, render_timeline
from repro.analysis.traces import Tracer


def synthetic_trace():
    tracer = Tracer()
    tracer.record(0.0, "send", pid=1)
    tracer.record(5.0, "rb_deliver", pid=1)
    tracer.record(10.0, "decide", pid=1, value="v")
    tracer.record(0.0, "send", pid=2)
    tracer.record(10.0, "decide", pid=2, value="v")
    return tracer


class TestRenderTimeline:
    def test_lanes_and_legend(self):
        text = render_timeline(synthetic_trace(), [1, 2])
        lines = text.splitlines()
        assert lines[0].startswith("virtual time 0 ..")
        assert lines[1].startswith("p1 |")
        assert lines[2].startswith("p2 |")
        assert "markers:" in lines[-1]

    def test_markers_positioned(self):
        text = render_timeline(synthetic_trace(), [1], width=21)
        lane = text.splitlines()[1]
        body = lane.split("|")[1]
        assert body[0] == "S"
        assert body[-1] == "D"
        assert "R" in body

    def test_first_only_skips_repeats(self):
        tracer = Tracer()
        tracer.record(0.0, "send", pid=1)
        tracer.record(50.0, "send", pid=1)
        text = render_timeline(tracer, [1], width=11)
        body = text.splitlines()[1].split("|")[1]
        assert body.count("S") == 1

    def test_all_events_mode(self):
        tracer = Tracer()
        tracer.record(0.0, "send", pid=1)
        tracer.record(100.0, "send", pid=1)
        text = render_timeline(tracer, [1], width=11, first_only=False)
        body = text.splitlines()[1].split("|")[1]
        assert body.count("S") == 2

    def test_empty_trace(self):
        assert "no matching" in render_timeline(Tracer(), [1])

    def test_custom_markers_filter_kinds(self):
        text = render_timeline(synthetic_trace(), [1], markers={"decide": "X"})
        body = text.splitlines()[1].split("|")[1]
        assert "X" in body and "S" not in body

    def test_real_run_timeline(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
                      adversaries={4: crash()}, seed=1, trace=True)
        )
        text = render_timeline(result.trace, [1, 2, 3])
        assert text.count("D") >= 3  # every correct process decided

    def test_default_markers_cover_expected_kinds(self):
        assert {"send", "deliver", "rb_deliver", "decide"} <= set(DEFAULT_MARKERS)
