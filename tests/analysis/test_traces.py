"""Unit tests for execution tracing."""

import json

from repro.analysis.traces import TraceEvent, Tracer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


class TestTracer:
    def test_records_protocol_events(self):
        tracer = Tracer()
        tracer.record(1.0, "decide", pid=2, value="v")
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event.kind == "decide"
        assert event.pid == 2
        assert event.detail == {"value": "v"}

    def test_network_attachment(self):
        sim = Simulator()
        network = Network(sim, 3, rng=RngRegistry(0))
        for pid in range(1, 4):
            network.register_process(pid, lambda m: None)
        tracer = Tracer().attach_network(network)
        network.send(1, 2, "T", ("x",))
        sim.run()
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["send", "deliver"]
        assert tracer.events[0].pid == 1  # sender on send events
        assert tracer.events[1].pid == 2  # receiver on deliver events

    def test_filter_by_kind_and_pid(self):
        tracer = Tracer()
        tracer.record(1.0, "a", pid=1)
        tracer.record(2.0, "b", pid=1)
        tracer.record(3.0, "a", pid=2)
        assert len(list(tracer.filter(kind="a"))) == 2
        assert len(list(tracer.filter(pid=1))) == 2
        assert len(list(tracer.filter(kind="a", pid=2))) == 1

    def test_max_events_truncation(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.record(float(i), "e")
        assert len(tracer) == 2
        assert tracer.truncated

    def test_json_roundtrip(self):
        tracer = Tracer()
        tracer.record(1.5, "decide", pid=3, value="v", extra=object())
        parsed = json.loads(tracer.to_json())
        assert parsed[0]["time"] == 1.5
        assert parsed[0]["detail"]["value"] == "v"
        assert isinstance(parsed[0]["detail"]["extra"], str)

    def test_trace_event_json_obj_coerces_payloads(self):
        event = TraceEvent(time=0.0, kind="send", detail={"payload": ("a", 1)})
        obj = event.to_json_obj()
        assert isinstance(obj["detail"]["payload"], str)
