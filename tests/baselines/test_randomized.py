"""Unit tests for the randomized binary baseline ([22]-style)."""

import pytest

from repro import run_randomized
from repro.adversary import crash, noise
from repro.baselines import BinaryValueBroadcast, CommonCoin
from repro.errors import ConfigurationError
from repro.net import fully_asynchronous
from tests.helpers import build_system


class TestCommonCoin:
    def test_deterministic_per_round(self):
        coin = CommonCoin(seed=5)
        assert coin.flip(3) == CommonCoin(seed=5).flip(3)

    def test_binary(self):
        coin = CommonCoin(seed=5)
        assert all(coin.flip(r) in (0, 1) for r in range(1, 50))

    def test_roughly_fair(self):
        coin = CommonCoin(seed=5)
        heads = sum(coin.flip(r) for r in range(1, 401))
        assert 140 < heads < 260


class TestBinaryValueBroadcast:
    def make(self, system):
        return {
            pid: BinaryValueBroadcast(proc, system.n, system.t)
            for pid, proc in system.processes.items()
        }

    def test_unanimous_value_enters_bin_values(self):
        system = build_system(4, 1, byzantine=(4,))
        bvs = self.make(system)
        for bv in bvs.values():
            bv.broadcast(1, 1)
        system.settle()
        for bv in bvs.values():
            assert bv.bin_values(1) == {1}

    def test_byzantine_only_value_filtered(self):
        # t Byzantine pushing bit 0 alone (< t+1 senders) never reaches
        # bin_values.
        system = build_system(4, 1, byzantine=(4,))
        bvs = self.make(system)
        system.byzantine[4].broadcast_raw("BV_VAL", (1, 0))
        for bv in bvs.values():
            bv.broadcast(1, 1)
        system.settle()
        for bv in bvs.values():
            assert bv.bin_values(1) == {1}

    def test_mixed_proposals_both_values(self):
        system = build_system(4, 1)
        bvs = self.make(system)
        bvs[1].broadcast(1, 0)
        bvs[2].broadcast(1, 0)
        bvs[3].broadcast(1, 1)
        bvs[4].broadcast(1, 1)
        system.settle()
        for bv in bvs.values():
            assert bv.bin_values(1) == {0, 1}

    def test_malformed_payloads_ignored(self):
        system = build_system(4, 1, byzantine=(4,))
        bvs = self.make(system)
        system.byzantine[4].broadcast_raw("BV_VAL", "junk")
        system.byzantine[4].broadcast_raw("BV_VAL", (1, 7))
        for bv in bvs.values():
            bv.broadcast(1, 1)
        system.settle()
        for bv in bvs.values():
            assert bv.bin_values(1) == {1}


class TestRandomizedConsensus:
    def test_unanimous_decides_that_bit(self):
        topo = fully_asynchronous(4)
        result = run_randomized(4, 1, {1: 1, 2: 1, 3: 1}, topo,
                                adversaries={4: crash()}, seed=3)
        assert result.decisions == {1: 1, 2: 1, 3: 1}

    def test_split_decides_some_common_bit(self, seeds):
        topo = fully_asynchronous(4)
        for seed in seeds:
            result = run_randomized(4, 1, {1: 0, 2: 1, 3: 0}, topo,
                                    adversaries={4: crash()}, seed=seed)
            assert len(set(result.decisions.values())) == 1
            assert set(result.decisions) == {1, 2, 3}

    def test_no_synchrony_needed(self, seeds):
        # Fully asynchronous network, no bisource anywhere: the
        # randomized algorithm still terminates (probabilistically).
        topo = fully_asynchronous(5, mean_delay=10.0)
        for seed in seeds:
            result = run_randomized(5, 1, {1: 0, 2: 1, 3: 0, 4: 1}, topo,
                                    adversaries={5: crash()}, seed=seed)
            assert not result.timed_out

    def test_noise_adversary_does_not_break_agreement(self, seeds):
        topo = fully_asynchronous(4)
        for seed in seeds:
            result = run_randomized(4, 1, {1: 0, 2: 1, 3: 1}, topo,
                                    adversaries={4: noise(0.5)}, seed=seed)
            assert len(set(result.decisions.values())) == 1

    def test_equivocating_adversary_does_not_break_agreement(self, seeds):
        # A protocol-running two-faced adversary lying bit 0 to half the
        # processes: BV-broadcast's t+1 filter must absorb it.
        from repro.adversary import two_faced

        topo = fully_asynchronous(4)
        for seed in seeds:
            result = run_randomized(4, 1, {1: 0, 2: 1, 3: 1}, topo,
                                    adversaries={4: two_faced(0, proposal=1)},
                                    seed=seed)
            assert len(set(result.decisions.values())) == 1
            assert set(result.decisions) == {1, 2, 3}

    def test_crash_at_adversary(self, seeds):
        from repro.adversary import crash_at

        topo = fully_asynchronous(4)
        for seed in seeds[:3]:
            result = run_randomized(4, 1, {1: 0, 2: 1, 3: 0}, topo,
                                    adversaries={4: crash_at(10.0, proposal=1)},
                                    seed=seed)
            assert len(set(result.decisions.values())) == 1

    def test_decision_rounds_recorded(self):
        topo = fully_asynchronous(4)
        result = run_randomized(4, 1, {1: 1, 2: 1, 3: 1}, topo,
                                adversaries={4: crash()}, seed=3)
        assert all(r >= 1 for r in result.decision_rounds.values())

    def test_rejects_non_binary_proposal(self):
        system = build_system(4, 1)
        from repro.baselines import RandomizedBinaryConsensus

        rbc = RandomizedBinaryConsensus(
            system.processes[1], 4, 1, CommonCoin(0)
        )
        task = system.processes[1].create_task(rbc.propose(7))
        system.settle()
        assert isinstance(task.exception(), ConfigurationError)

    def test_resilience_bound(self):
        system = build_system(7, 2)
        from repro.baselines import RandomizedBinaryConsensus

        with pytest.raises(ConfigurationError):
            RandomizedBinaryConsensus(system.processes[1], 6, 2, CommonCoin(0))
