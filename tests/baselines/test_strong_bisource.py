"""Unit tests for the strong-bisource baseline EA (the E8 separation).

The separation is sharpest at the EA-object level: processes re-propose
fixed (split) values round after round, so convergence (one round where
*all* correct processes return the same value) can only come from the
coordinator machinery — not from estimate drift in the consensus layer.

Under the minimal ``<t+1>bisource`` topology with ⊥-spamming Byzantine
processes, the counting argument of Lemma 3 guarantees a witness for the
paper's 1-of-F(r) rule in every good round, while the baseline's
``t+1``-witness rule only ever sees the members of ``X+`` relay the
championed value and needs schedule luck to collect them early.
"""

from typing import Any

from repro import RunConfig, run_consensus
from repro.adversary import bot_relays, crash
from repro.baselines import StrongBisourceEA
from repro.core.eventual_agreement import EventualAgreement
from repro.core.values import BOT
from repro.net import fully_timely, single_bisource
from tests.helpers import build_system


class ScriptedCB:
    """CB double: deterministic split aux values, both values valid."""

    def __init__(self, process, rb, n, t, instance, selector=None) -> None:
        self.process = process

    async def cb_broadcast(self, value: Any) -> Any:
        # Odd pids push "a", even pids push "b" — a persistent split.
        return "a" if self.process.pid % 2 == 1 else "b"

    def in_valid(self, value: Any) -> bool:
        return value in ("a", "b")

    @property
    def cb_valid(self):
        return ("a", "b")


def adversarial_minimal_topology(n, t, correct):
    """Minimal <t+1>bisource plus the legal worst-case async schedule.

    On every asynchronous channel the (network) adversary singles out the
    coordinator's EA_COORD messages and delays them by an amount that
    grows with virtual time — finite per message, hence a legal
    asynchronous behaviour.  Round timers then always expire before an
    asynchronous EA_COORD arrives, so championed values propagate only
    through the bisource's *timely* output channels — exactly the regime
    the paper's <t+1>bisource guarantee covers.
    """
    from repro.net import Asynchronous, ExponentialDelay, PerTagTiming, ScriptedDelay

    topo = single_bisource(n, t, bisource=1, correct=correct, delta=1.0)
    slow_coord = Asynchronous(
        ScriptedDelay(lambda send, rng: 100.0 + 2.0 * send, "coord-starved")
    )
    topo.default = PerTagTiming(
        base=Asynchronous(ExponentialDelay(mean=4.0)),
        overrides={"EA_COORD": slow_coord},
    )
    return topo


def drive_ea_rounds(ea_cls, seed, rounds=12):
    """Run `rounds` EA rounds under the minimal topology; return, per
    round, the set of values returned by correct processes."""
    n, t = 7, 2
    correct = {1, 2, 3, 4, 5}
    topo = adversarial_minimal_topology(n, t, correct)
    system = build_system(n, t, topology=topo, seed=seed, byzantine=(6, 7))
    # ⊥-spamming adversary: poison every round's relay quorum instantly.
    for byz in system.byzantine.values():
        for r in range(1, rounds + 1):
            byz.broadcast_raw("EA_RELAY", (r, BOT))
    eas = {
        pid: ea_cls(proc, system.rbs[pid], n, t, m=2, cb_factory=ScriptedCB)
        for pid, proc in system.processes.items()
    }
    proposals = {pid: ("a" if pid % 2 == 1 else "b") for pid in eas}
    outcomes = []
    for r in range(1, rounds + 1):
        tasks = {
            pid: system.processes[pid].create_task(eas[pid].propose(r, proposals[pid]))
            for pid in sorted(eas)
        }
        results = system.run_all([tasks[pid] for pid in sorted(tasks)])
        outcomes.append(set(results))
    return outcomes


def first_agreement_round(outcomes):
    for index, values in enumerate(outcomes, start=1):
        if len(values) == 1:
            return index
    return None


class TestStrongEAUnderStrongAssumption:
    def test_decides_under_full_timeliness(self, seeds):
        # The <n-t>source assumption of [1] holds in a fully timely
        # system: the baseline must work there.
        for seed in seeds:
            result = run_consensus(
                RunConfig(n=4, t=1, proposals={1: "a", 2: "a", 3: "b"},
                          adversaries={4: crash()}, topology=fully_timely(4),
                          ea_factory=StrongBisourceEA, seed=seed)
            )
            assert result.all_decided, f"seed {seed}"
            assert result.decided_value in {"a", "b"}

    def test_safety_holds_everywhere(self, seeds):
        # Whatever topology, the baseline never violates safety.
        n, t = 7, 2
        correct = {1, 2, 3, 4, 5}
        topo = single_bisource(n, t, bisource=1, correct=correct)
        for seed in seeds:
            result = run_consensus(
                RunConfig(n=n, t=t,
                          proposals={1: "a", 2: "b", 3: "a", 4: "b", 5: "a"},
                          adversaries={6: bot_relays(), 7: bot_relays()},
                          topology=topo, ea_factory=StrongBisourceEA,
                          seed=seed, max_rounds=12, max_time=50_000.0),
            )
            assert len(set(result.decisions.values())) <= 1
            for value in result.decisions.values():
                assert value in {"a", "b"}


class TestSeparation:
    """Minimal <t+1>bisource suffices for the paper's EA, not for the
    strong-assumption baseline."""

    def test_paper_ea_always_converges(self, seeds):
        for seed in seeds:
            outcomes = drive_ea_rounds(EventualAgreement, seed)
            assert first_agreement_round(outcomes) is not None, f"seed {seed}"

    def test_paper_ea_converges_much_more_often(self, seeds):
        # Convergence density over 12 rounds: the 1-of-F(r) rule converges
        # in (almost) every correct-coordinated round, while the t+1 rule
        # only converges in the bisource-coordinated rounds.
        for seed in seeds:
            paper = drive_ea_rounds(EventualAgreement, seed)
            strong = drive_ea_rounds(StrongBisourceEA, seed)
            paper_density = sum(1 for vals in paper if len(vals) == 1)
            strong_density = sum(1 for vals in strong if len(vals) == 1)
            assert paper_density > 2 * strong_density, (
                f"seed {seed}: paper {paper_density}/12, strong "
                f"{strong_density}/12"
            )

    def test_converged_value_is_a_proposal(self, seeds):
        for seed in seeds[:3]:
            outcomes = drive_ea_rounds(EventualAgreement, seed)
            r = first_agreement_round(outcomes)
            (value,) = outcomes[r - 1]
            assert value in {"a", "b"}
