"""Unit tests for cooperative broadcast (paper Section 2.3, Figure 1)."""

from repro.broadcast import BotCooperativeBroadcast, CooperativeBroadcast
from repro.core.values import BOT, smallest
from tests.helpers import build_system


def make_cbs(system, instance="cb", cls=CooperativeBroadcast, **kwargs):
    return {
        pid: cls(proc, system.rbs[pid], system.n, system.t, instance, **kwargs)
        for pid, proc in system.processes.items()
    }


def cb_broadcast_all(system, cbs, values):
    tasks = {
        pid: system.processes[pid].create_task(cbs[pid].cb_broadcast(values[pid]))
        for pid in cbs
    }
    results = system.run_all([tasks[pid] for pid in sorted(tasks)])
    return dict(zip(sorted(tasks), results))


class TestUnanimous:
    def test_all_same_value(self):
        system = build_system(4, 1)
        cbs = make_cbs(system)
        returned = cb_broadcast_all(system, cbs, {pid: "v" for pid in cbs})
        assert set(returned.values()) == {"v"}

    def test_cb_valid_converges_to_singleton(self):
        system = build_system(4, 1)
        cbs = make_cbs(system)
        cb_broadcast_all(system, cbs, {pid: "v" for pid in cbs})
        system.settle()
        for cb in cbs.values():
            assert cb.cb_valid == ("v",)


class TestOperationProperties:
    def test_returned_value_in_cb_valid(self):
        system = build_system(7, 2)
        cbs = make_cbs(system)
        values = {1: "a", 2: "a", 3: "a", 4: "b", 5: "b", 6: "b", 7: "a"}
        returned = cb_broadcast_all(system, cbs, values)
        for pid, value in returned.items():
            assert cbs[pid].in_valid(value)

    def test_set_agreement_at_quiescence(self):
        system = build_system(7, 2)
        cbs = make_cbs(system)
        values = {1: "a", 2: "a", 3: "a", 4: "b", 5: "b", 6: "b", 7: "a"}
        cb_broadcast_all(system, cbs, values)
        system.settle()
        sets = [frozenset(cb.cb_valid) for cb in cbs.values()]
        assert len(set(sets)) == 1
        assert sets[0] == {"a", "b"}

    def test_selector_is_pluggable(self):
        system = build_system(7, 2)
        cbs = make_cbs(system, selector=smallest)
        values = {1: "a", 2: "a", 3: "a", 4: "b", 5: "b", 6: "b", 7: "b"}
        cb_broadcast_all(system, cbs, values)
        system.settle()
        # After quiescence both values are valid; smallest picks "a".
        assert smallest(cbs[1].cb_valid) == "a"


class TestByzantineResistance:
    def test_byzantine_only_value_never_valid(self):
        # t Byzantine pushing value "w" (t < t+1 supporters) must not get
        # it into any correct cb_valid set: CB-Set Validity.
        system = build_system(4, 1, byzantine=(4,))
        cbs = make_cbs(system)
        byz = system.byzantine[4]
        # The Byzantine RB-broadcasts CB_VAL("w") like a proposer would.
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", ((("CB_VAL", "cb")), "w"))
        returned = cb_broadcast_all(system, cbs, {1: "v", 2: "v", 3: "v"})
        system.settle()
        assert set(returned.values()) == {"v"}
        for cb in cbs.values():
            assert not cb.in_valid("w")

    def test_byzantine_support_can_promote_a_correct_value(self):
        # A value proposed by one correct process plus t Byzantine copies
        # reaches t+1 supporters — legal, since a correct process did
        # propose it (m = 2 profile: "a" x2 and "b" x1 among correct).
        system = build_system(4, 1, byzantine=(4,))
        cbs = make_cbs(system)
        byz = system.byzantine[4]
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", ((("CB_VAL", "cb")), "b"))
        cb_broadcast_all(system, cbs, {1: "a", 2: "a", 3: "b"})
        system.settle()
        for cb in cbs.values():
            assert cb.in_valid("b") and cb.in_valid("a")

    def test_operation_terminates_with_byzantine_silent(self):
        system = build_system(7, 2, byzantine=(6, 7))
        cbs = make_cbs(system)
        returned = cb_broadcast_all(
            system, cbs, {1: "x", 2: "x", 3: "x", 4: "x", 5: "x"}
        )
        assert set(returned.values()) == {"x"}


class TestFeasibilityBoundary:
    def test_m_max_profile_terminates(self):
        # n=7, t=2 -> m_max = 2: two values, each with >= t+1 correct
        # proposers exists by pigeonhole.
        system = build_system(7, 2)
        cbs = make_cbs(system)
        values = {1: "a", 2: "b", 3: "a", 4: "b", 5: "a", 6: "b", 7: "a"}
        returned = cb_broadcast_all(system, cbs, values)
        assert set(returned.values()) <= {"a", "b"}

    def test_infeasible_profile_blocks(self):
        # n=4, t=1, three distinct correct values: no value reaches t+1
        # supporters, so cb_valid stays empty and the operation never
        # returns. (This is why the feasibility condition exists.)
        system = build_system(4, 1, byzantine=(4,))
        cbs = make_cbs(system)
        tasks = [
            system.processes[pid].create_task(cbs[pid].cb_broadcast(f"v{pid}"))
            for pid in cbs
        ]
        system.settle()
        assert all(not t.done() for t in tasks)
        for cb in cbs.values():
            assert cb.cb_valid == ()


class TestBotVariant:
    def test_bot_added_on_split_profile(self):
        system = build_system(4, 1, byzantine=(4,))
        cbs = make_cbs(system, cls=BotCooperativeBroadcast)
        returned = cb_broadcast_all(system, cbs, {1: "v1", 2: "v2", 3: "v3"})
        system.settle()
        for cb in cbs.values():
            assert cb.in_valid(BOT)
        assert set(returned.values()) == {BOT}

    def test_bot_not_added_when_unanimous(self):
        system = build_system(4, 1, byzantine=(4,))
        cbs = make_cbs(system, cls=BotCooperativeBroadcast)
        byz = system.byzantine[4]
        # Byzantine proposes garbage; unanimity among correct must keep
        # BOT out (capped sum <= 2t < n - t).
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", ((("CB_VAL", "cb")), "junk"))
        returned = cb_broadcast_all(system, cbs, {1: "v", 2: "v", 3: "v"})
        system.settle()
        assert set(returned.values()) == {"v"}
        for cb in cbs.values():
            assert not cb.in_valid(BOT)
            assert not cb.in_valid("junk")

    def test_majority_value_still_promoted(self):
        system = build_system(7, 2, byzantine=(6, 7))
        cbs = make_cbs(system, cls=BotCooperativeBroadcast)
        returned = cb_broadcast_all(
            system, cbs, {1: "v", 2: "v", 3: "v", 4: "w", 5: "u"}
        )
        system.settle()
        for cb in cbs.values():
            assert cb.in_valid("v")
