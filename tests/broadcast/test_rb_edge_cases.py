"""Edge-case and quorum-boundary tests for reliable broadcast."""

from repro.broadcast import rb_quorums
from tests.helpers import build_system


class TestQuorumBoundaries:
    def test_exactly_echo_quorum_minus_one_does_not_ready(self):
        # Drive a single process manually: feed it echoes one below the
        # quorum and check no READY was sent.
        system = build_system(7, 2, byzantine=(6, 7))
        echo_quorum, _, _ = rb_quorums(7, 2)  # 5
        byz = system.byzantine[6]
        # p1 receives echoes from 4 distinct senders (2,3 correct won't
        # echo spontaneously; use byzantine raw + direct correct sends).
        for sender_system in (byz,):
            pass
        # Simpler: byzantine floods from its single identity; dedup means
        # only one counts.
        for _ in range(10):
            byz.send_raw(1, "RB_ECHO", (5, "k", "v"))
        system.settle()
        ready_sends = system.network.sent_by_tag.get("RB_READY", 0)
        assert ready_sends == 0

    def test_ready_amplification_path(self):
        # t+1 READY messages make a correct process send READY even if it
        # never saw an echo quorum — the amplification rule.
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        # Correct p2, p3 send READY legitimately requires protocol; craft:
        # byzantine sends READY (1 distinct sender) — not enough (t+1=2).
        byz.send_raw(1, "RB_READY", (4, "k", "v"))
        system.settle()
        assert system.rbs[1].delivered_value(4, "k") is None

    def test_delivery_exactly_at_2t_plus_1(self):
        # Full honest run: verify a process delivers only after 2t+1
        # readies (indirectly: delivery happens, and no delivery can have
        # fewer because all counts pass through the same threshold).
        system = build_system(4, 1)
        system.rbs[1].broadcast("k", "v")
        system.settle()
        for rb in system.rbs.values():
            state = rb._states[(1, "k")]
            assert len(state.readies["v"]) >= rb.deliver_quorum

    def test_echo_for_two_instances_not_conflated(self):
        system = build_system(4, 1)
        system.rbs[1].broadcast("k1", "v1")
        system.rbs[1].broadcast("k2", "v2")
        system.settle()
        assert system.rbs[3].delivered_value(1, "k1") == "v1"
        assert system.rbs[3].delivered_value(1, "k2") == "v2"

    def test_tuple_and_unhashable_free_payloads(self):
        # Values must be hashable (they key support sets); tuples and
        # frozensets work.
        system = build_system(4, 1)
        value = ("compound", frozenset({1, 2}), 3.5)
        system.rbs[2].broadcast("k", value)
        system.settle()
        assert system.rbs[1].delivered_value(2, "k") == value


class TestByzantineEdgeCases:
    def test_byzantine_echoes_for_nonexistent_origin(self):
        # Echo/ready for an origin that never INIT'd anything: ignored
        # (below quorums) without crashing.
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        byz.broadcast_raw("RB_ECHO", (2, "ghost", "v"))
        byz.broadcast_raw("RB_READY", (2, "ghost", "v"))
        system.settle()
        for rb in system.rbs.values():
            assert rb.delivered_value(2, "ghost") is None

    def test_split_echo_values_from_byzantine(self):
        # Byzantine echoes different values to different processes for
        # the same instance; per-sender dedup counts its first only.
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        system.rbs[1].broadcast("k", "honest")
        byz.send_raw(1, "RB_ECHO", (1, "k", "fake-a"))
        byz.send_raw(2, "RB_ECHO", (1, "k", "fake-b"))
        system.settle()
        for rb in system.rbs.values():
            assert rb.delivered_value(1, "k") == "honest"

    def test_byzantine_ready_cannot_flip_delivered_value(self):
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        system.rbs[1].broadcast("k", "honest")
        system.settle()
        byz.broadcast_raw("RB_READY", (1, "k", "flip"))
        system.settle()
        for rb in system.rbs.values():
            assert rb.delivered_value(1, "k") == "honest"

    def test_subscriber_exception_isolation_not_required(self):
        # Document behaviour: subscriber callbacks run synchronously; a
        # well-behaved subscriber list is the caller's responsibility.
        system = build_system(4, 1)
        calls = []
        system.rbs[1].subscribe("k", lambda o, k, v: calls.append((o, v)))
        system.rbs[1].subscribe("k", lambda o, k, v: calls.append(("again", v)))
        system.rbs[2].broadcast("k", "v")
        system.settle()
        assert calls == [(2, "v"), ("again", "v")]
