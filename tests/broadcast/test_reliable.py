"""Unit tests for Bracha reliable broadcast (paper Section 2.2)."""

import pytest

from repro.broadcast import ReliableBroadcast, rb_quorums
from repro.errors import ConfigurationError
from tests.helpers import build_system


class TestQuorums:
    def test_quorum_values_n4_t1(self):
        echo, amplify, deliver = rb_quorums(4, 1)
        assert (echo, amplify, deliver) == (3, 2, 3)

    def test_quorum_values_n7_t2(self):
        echo, amplify, deliver = rb_quorums(7, 2)
        assert (echo, amplify, deliver) == (5, 3, 5)

    def test_echo_quorums_intersect_in_a_correct_process(self):
        # Two echo quorums overlap in > t processes for all small (n, t).
        for t in range(1, 5):
            n = 3 * t + 1
            echo, _, _ = rb_quorums(n, t)
            assert 2 * echo - n > t

    def test_resilience_bound_enforced(self):
        system = build_system(6, 2, rb=False)
        with pytest.raises(ConfigurationError):
            ReliableBroadcast(system.processes[1], 6, 2)  # 6 = 3*2, not >


class TestHonestBroadcast:
    def test_termination_1_all_deliver(self):
        system = build_system(4, 1)
        system.rbs[1].broadcast("k", "value")
        system.settle()
        for pid, rb in system.rbs.items():
            assert rb.delivered_value(1, "k") == "value"

    def test_validity_value_unchanged(self):
        system = build_system(7, 2)
        system.rbs[3].broadcast("k", ("tuple", 42))
        system.settle()
        assert system.rbs[5].delivered_value(3, "k") == ("tuple", 42)

    def test_multiple_instances_from_one_origin(self):
        system = build_system(4, 1)
        system.rbs[1].broadcast("k1", "a")
        system.rbs[1].broadcast("k2", "b")
        system.settle()
        assert system.rbs[2].delivered_value(1, "k1") == "a"
        assert system.rbs[2].delivered_value(1, "k2") == "b"

    def test_concurrent_origins_same_key(self):
        system = build_system(4, 1)
        for pid in system.rbs:
            system.rbs[pid].broadcast("k", f"v{pid}")
        system.settle()
        for rb in system.rbs.values():
            assert rb.delivered_from("k") == {1: "v1", 2: "v2", 3: "v3", 4: "v4"}

    def test_works_with_t_crashed_processes(self):
        system = build_system(4, 1, byzantine=(4,))
        system.rbs[1].broadcast("k", "v")
        system.settle()
        for pid in (1, 2, 3):
            assert system.rbs[pid].delivered_value(1, "k") == "v"

    def test_message_complexity_order_n_squared(self):
        system = build_system(7, 2)
        system.rbs[1].broadcast("k", "v")
        system.settle()
        n = 7
        # INIT: n; ECHO: n per process; READY: n per process => <= n + 2n^2.
        assert system.network.messages_sent <= n + 2 * n * n


class TestSubscriptions:
    def test_callback_on_delivery(self):
        system = build_system(4, 1)
        got = []
        system.rbs[2].subscribe("k", lambda o, k, v: got.append((o, v)))
        system.rbs[1].broadcast("k", "v")
        system.settle()
        assert got == [(1, "v")]

    def test_late_subscription_replays_history(self):
        system = build_system(4, 1)
        system.rbs[1].broadcast("k", "v")
        system.settle()
        got = []
        system.rbs[2].subscribe("k", lambda o, k, v: got.append((o, v)))
        assert got == [(1, "v")]

    def test_subscribe_all_sees_every_instance(self):
        system = build_system(4, 1)
        got = []
        system.rbs[2].subscribe_all(lambda o, k, v: got.append(k))
        system.rbs[1].broadcast("k1", "a")
        system.rbs[3].broadcast("k2", "b")
        system.settle()
        assert sorted(got) == ["k1", "k2"]


class TestByzantineSource:
    def test_unicity_despite_equivocating_init(self):
        # Byzantine origin sends INIT("a") to half, INIT("b") to the rest:
        # no two correct processes may deliver different values.
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        byz.send_raw(1, "RB_INIT", ("k", "a"))
        byz.send_raw(2, "RB_INIT", ("k", "b"))
        byz.send_raw(3, "RB_INIT", ("k", "a"))
        system.settle()
        delivered = {
            rb.delivered_value(4, "k")
            for rb in system.rbs.values()
            if rb.delivered_value(4, "k") is not None
        }
        assert len(delivered) <= 1

    def test_termination_2_all_or_nothing(self):
        # If any correct process delivers from a Byzantine origin, all do
        # (once the network quiesces).
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", ("k", "same"))
        system.settle()
        delivered = [rb.delivered_value(4, "k") for rb in system.rbs.values()]
        assert delivered == ["same"] * 3

    def test_byzantine_echo_flood_cannot_forge_delivery(self):
        # One Byzantine echoing/readying a value nobody sent cannot reach
        # the 2t+1 ready quorum.
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_ECHO", (4, "k", "forged"))
            byz.send_raw(dst, "RB_READY", (4, "k", "forged"))
        system.settle()
        for rb in system.rbs.values():
            assert rb.delivered_value(4, "k") is None

    def test_duplicate_echoes_from_one_sender_count_once(self):
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        # Byzantine sends three READYs for its own instance to p1; p1 must
        # not treat them as three distinct supporters.
        for _ in range(3):
            byz.send_raw(1, "RB_READY", (4, "k", "v"))
        system.settle()
        assert system.rbs[1].delivered_value(4, "k") is None

    def test_second_init_from_same_origin_ignored(self):
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", ("k", "first"))
        system.settle()
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", ("k", "second"))
        system.settle()
        for rb in system.rbs.values():
            assert rb.delivered_value(4, "k") == "first"
