"""Unit tests for best-effort broadcast."""

from repro.broadcast import BestEffortBroadcast
from tests.helpers import build_system


class TestBestEffortBroadcast:
    def test_correct_broadcast_reaches_all(self):
        system = build_system(4, 1, rb=False)
        bebs = {
            pid: BestEffortBroadcast(proc, "BEB")
            for pid, proc in system.processes.items()
        }
        bebs[1].broadcast("inst", "v")
        system.settle()
        for pid, beb in bebs.items():
            assert beb.received("inst") == {1: "v"}

    def test_first_message_per_sender_wins(self):
        system = build_system(4, 1, rb=False)
        bebs = {
            pid: BestEffortBroadcast(proc, "BEB")
            for pid, proc in system.processes.items()
        }
        bebs[1].broadcast("inst", "first")
        system.settle()
        bebs[1].broadcast("inst", "second")
        system.settle()
        assert bebs[2].received("inst") == {1: "first"}

    def test_instances_are_independent(self):
        system = build_system(4, 1, rb=False)
        bebs = {
            pid: BestEffortBroadcast(proc, "BEB")
            for pid, proc in system.processes.items()
        }
        bebs[1].broadcast("a", 1)
        bebs[1].broadcast("b", 2)
        system.settle()
        assert bebs[3].received("a") == {1: 1}
        assert bebs[3].received("b") == {1: 2}

    def test_faulty_sender_can_equivocate(self):
        # A Byzantine process does not use the macro: it can send
        # different values to different processes.
        system = build_system(4, 1, byzantine=(4,), rb=False)
        bebs = {
            pid: BestEffortBroadcast(proc, "BEB")
            for pid, proc in system.processes.items()
        }
        system.byzantine[4].send_raw(1, "BEB", ("inst", "left"))
        system.byzantine[4].send_raw(2, "BEB", ("inst", "right"))
        system.settle()
        assert bebs[1].received("inst") == {4: "left"}
        assert bebs[2].received("inst") == {4: "right"}
        assert bebs[3].received("inst") == {}

    def test_arrival_order_preserved(self):
        system = build_system(4, 1, rb=False)
        beb2 = BestEffortBroadcast(system.processes[2], "BEB")
        BestEffortBroadcast(system.processes[1], "BEB").broadcast("i", "x")
        system.settle()
        BestEffortBroadcast(system.processes[3], "BEB").broadcast("i", "y")
        system.settle()
        assert list(beb2.received("i").items()) == [(1, "x"), (3, "y")]
