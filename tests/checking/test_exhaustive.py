"""Exhaustive exploration of the n=2 FIFO model: the checker's core
contract.

The FIFO small model is the one whose schedule space the explorer can
*finish*: with in-order channels only per-channel head deliveries
branch, so the choice tree is finite and small (~100 executions).  These
tests pin the acceptance claim — ``repro check`` on a correct small
model terminates having exhausted the space — plus the budget knobs,
the reduction toggles and replay determinism.
"""

import pytest

from repro.checking import (
    Explorer,
    ScheduleChooser,
    execute_run,
)
from repro.orchestration.config import RunConfig


def small_model(**overrides) -> RunConfig:
    kwargs = dict(
        n=2, t=0, proposals={1: "a", 2: "a"}, max_rounds=1, fifo=True
    )
    kwargs.update(overrides)
    return RunConfig(**kwargs)


@pytest.fixture(scope="module")
def exhaustive():
    return Explorer(small_model(), keep_states=True).run()


def test_exhausts_the_schedule_space(exhaustive):
    assert exhaustive.verdict == "ok"
    assert exhaustive.exhausted
    assert exhaustive.counterexample is None
    stats = exhaustive.stats
    assert stats.violations == 0
    assert stats.completed >= 1
    assert stats.executions > stats.completed  # the DFS really branched
    assert stats.states > 0
    assert stats.choice_points > 0
    assert stats.max_depth > 0
    assert len(exhaustive.visited) == stats.states


def test_reductions_fire_on_this_model(exhaustive):
    # Both classic reductions must actually engage, or the model is too
    # small to certify them.
    assert exhaustive.stats.deduped > 0
    assert exhaustive.stats.pruned > 0


def test_divergent_proposals_also_exhaust():
    result = Explorer(small_model(proposals={1: "a", 2: "b"})).run()
    assert result.exhausted
    assert result.verdict == "ok"


def test_execution_budget_trips():
    result = Explorer(small_model(), max_executions=3).run()
    assert not result.exhausted
    assert result.stats.executions == 3


def test_state_budget_trips():
    result = Explorer(small_model(), max_states=5).run()
    assert not result.exhausted
    assert result.stats.states >= 5


def test_depth_budget_trips():
    result = Explorer(small_model(), max_depth=1).run()
    assert not result.exhausted
    assert result.stats.max_depth <= 1


def test_no_prune_explores_superset_of_states(exhaustive):
    plain = Explorer(small_model(), prune=False, keep_states=True).run()
    assert plain.exhausted
    assert plain.verdict == "ok"
    # Sleep sets only ever *skip* redundant interleavings; turning them
    # off re-explores every state the pruned run saw (and then some
    # executions, since nothing is slept).
    assert exhaustive.visited <= plain.visited
    assert plain.stats.executions > exhaustive.stats.executions


def test_exploration_is_deterministic():
    def journal_of():
        journal = []
        Explorer(
            small_model(),
            on_execution=lambda prefix, outcome: journal.append(
                (prefix, outcome.status, outcome.trail)
            ),
        ).run()
        return journal

    first = journal_of()
    second = journal_of()
    assert first == second
    assert len(first) > 1


def test_schedule_replay_is_deterministic(exhaustive):
    # Any branching prefix replays to the same trail, steps and
    # decisions, twice in a row — the bit-identical replay contract the
    # counterexample workflow stands on.
    for schedule in [(), (1,), (1, 1)]:
        outcomes = [
            execute_run(small_model(), ScheduleChooser(schedule))
            for _ in range(2)
        ]
        assert outcomes[0].trail == outcomes[1].trail
        assert outcomes[0].steps == outcomes[1].steps
        assert outcomes[0].decisions == outcomes[1].decisions
        assert outcomes[0].status == outcomes[1].status == "complete"
        assert outcomes[0].decisions == {1: "a", 2: "a"}


def test_out_of_range_schedule_index_diverges():
    outcome = execute_run(small_model(), ScheduleChooser((99,)))
    assert outcome.status == "divergence"


def test_forced_moves_consume_no_schedule_index():
    # The trail records branching choices only: replaying the full
    # recorded trail must reproduce it exactly (schedules are closed
    # under their own replay), and it is much shorter than the number
    # of delivery events in the run.
    base = execute_run(small_model(), ScheduleChooser(()))
    replay = execute_run(small_model(), ScheduleChooser(tuple(base.trail)))
    assert tuple(replay.trail) == tuple(base.trail)
    assert len(base.trail) < base.steps
