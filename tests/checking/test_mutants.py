"""Seeded-mutant battery: the checker must *find* every planted bug.

Each registered mutant pairs a protocol-breaking patch (test-only hook,
applied via ``apply_mutant``) with a trigger scenario.  For each one
this module asserts the full counterexample lifecycle:

* the explorer reports a violation of the expected invariant check;
* the counterexample is *locally minimal* — it reproduces the
  violation, and removing any single choice no longer does;
* the standard runner (``run_consensus`` with ``check_schedule``)
  replays it to an :class:`~repro.errors.InvariantViolation`;
* without the mutant patch, the same scenario and schedule are clean —
  the bug is in the mutant, not the model.
"""

import pytest

from repro.checking import MUTANTS, Explorer, apply_mutant
from repro.checking.explorer import _reproduces
from repro.checking.harness import DEFAULT_MAX_STEPS
from repro.errors import InvariantViolation
from repro.orchestration.config import RunConfig
from repro.orchestration.runner import run_consensus


@pytest.fixture(scope="module")
def found():
    """Explore every mutant once; the tests below dissect the results."""
    results = {}
    for name, mutant in MUTANTS.items():
        with apply_mutant(name):
            results[name] = Explorer(
                mutant.scenario(), **mutant.budgets
            ).run()
    return results


def test_registry_has_multiple_mutants():
    assert len(MUTANTS) >= 3


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_violation_found(found, name):
    result = found[name]
    assert result.verdict == "violation"
    assert result.counterexample is not None
    assert result.minimized
    checks = {line.split("]")[0].lstrip("[") for line in result.violations}
    assert checks & MUTANTS[name].expected_checks


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_counterexample_is_locally_minimal(found, name):
    mutant = MUTANTS[name]
    cex = found[name].counterexample
    with apply_mutant(name):
        config = mutant.scenario()
        assert _reproduces(
            config, cex, mutant.expected_checks, None, DEFAULT_MAX_STEPS
        ), f"{name}: minimized schedule no longer reproduces"
        for index in range(len(cex)):
            shorter = cex[:index] + cex[index + 1 :]
            assert not _reproduces(
                config, shorter, mutant.expected_checks, None,
                DEFAULT_MAX_STEPS,
            ), f"{name}: choice {index} of {cex} is removable"


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_counterexample_replays_through_standard_runner(found, name):
    mutant = MUTANTS[name]
    cex = found[name].counterexample
    scenario = mutant.scenario()
    config = RunConfig(
        n=scenario.n,
        t=scenario.t,
        proposals=scenario.proposals,
        adversaries=scenario.adversaries,
        variant=scenario.variant,
        k=scenario.k,
        max_rounds=scenario.max_rounds,
        fifo=scenario.fifo,
        check_schedule=cex,
    )
    with apply_mutant(name):
        with pytest.raises(InvariantViolation):
            run_consensus(config)
    # Unmutated, the very same scenario and schedule are clean: the
    # violation is the planted bug's, not the checker's.
    result = run_consensus(config)
    assert result.invariants.ok
