"""Sharding equivalence: prefix shards cover exactly the unsharded tree.

The partition contract (``repro.checking.sharding``): probing
enumerates every reachable schedule prefix of depth ``D`` without
reductions, the roots are strided across shards, and

    union(per-shard visited states) ∪ shallow_states
        == unsharded visited states  (dedup on, sleep sets off)

with the same verdict.  Sleep sets stay off for the state-set identity
because a shard's sleep context legitimately differs from the unsharded
DFS's at the same node; verdicts are compared with the full reductions
on.
"""

import pytest

from repro.checking import (
    MUTANTS,
    Explorer,
    apply_mutant,
    schedule_prefix_roots,
    shard_roots_slice,
)
from repro.orchestration.config import RunConfig


def small_model() -> RunConfig:
    return RunConfig(
        n=2, t=0, proposals={1: "a", 2: "a"}, max_rounds=1, fifo=True
    )


@pytest.fixture(scope="module")
def roots():
    return schedule_prefix_roots(small_model(), depth=2)


def test_probe_finds_a_real_partition(roots):
    assert len(roots.roots) > 1
    assert roots.probe_executions > 0
    assert roots.shallow_states
    # Deterministic order, no duplicate roots.
    assert roots.roots == tuple(sorted(set(roots.roots)))


def test_slices_partition_the_roots(roots):
    for count in (1, 2, 3):
        slices = [shard_roots_slice(roots, i, count) for i in range(count)]
        combined = sorted(root for piece in slices for root in piece)
        assert combined == sorted(roots.roots)


def test_slice_rejects_bad_indices(roots):
    with pytest.raises(ValueError):
        shard_roots_slice(roots, 0, 0)
    with pytest.raises(ValueError):
        shard_roots_slice(roots, 3, 3)


def test_sharded_union_equals_unsharded_state_set(roots):
    config = small_model()
    base = Explorer(config, prune=False, keep_states=True).run()
    assert base.exhausted

    union = set(roots.shallow_states)
    for index in range(3):
        piece = shard_roots_slice(roots, index, 3)
        result = Explorer(
            config, prune=False, keep_states=True, roots=piece
        ).run()
        assert result.exhausted
        assert result.verdict == "ok"
        union |= result.visited
    assert union == set(base.visited)


def test_sharded_verdict_matches_unsharded_on_a_mutant():
    name = "cb-valid-any"
    mutant = MUTANTS[name]
    with apply_mutant(name):
        config = mutant.scenario()
        roots = schedule_prefix_roots(config, depth=1)
        verdicts = set()
        for index in range(2):
            piece = shard_roots_slice(roots, index, 2)
            if not piece:
                continue
            result = Explorer(config, roots=piece, **mutant.budgets).run()
            verdicts.add(result.verdict)
            if result.verdict == "violation":
                checks = {
                    line.split("]")[0].lstrip("[")
                    for line in result.violations
                }
                assert checks & mutant.expected_checks
    assert "violation" in verdicts
