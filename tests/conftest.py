"""Pytest configuration shared by the whole suite."""

import pytest

from hypothesis import settings

# A tighter hypothesis profile: the property tests run real simulations,
# so keep example counts modest and deadlines off (virtual time is cheap,
# wall time is not).
settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")


@pytest.fixture
def seeds():
    """A standard small seed ensemble for schedule-diversity tests."""
    return [1, 2, 3, 5, 8]
