"""Unit tests for the Byzantine adopt-commit object (Figure 2)."""

import pytest

from repro.core.adopt_commit import AdoptCommit, Tag, most_frequent
from repro.errors import ConfigurationError, FeasibilityError
from tests.helpers import build_system


def make_acs(system, m=2, instance=1):
    return {
        pid: AdoptCommit(proc, system.rbs[pid], system.n, system.t, m, instance)
        for pid, proc in system.processes.items()
    }


def propose_all(system, acs, values):
    tasks = {
        pid: system.processes[pid].create_task(acs[pid].propose(values[pid]))
        for pid in acs
    }
    results = system.run_all([tasks[pid] for pid in sorted(tasks)])
    return dict(zip(sorted(tasks), results))


class TestMostFrequent:
    def test_clear_winner(self):
        assert most_frequent(["a", "b", "a", "a"]) == "a"

    def test_tie_breaks_to_first_seen(self):
        assert most_frequent(["x", "y", "y", "x"]) == "x"

    def test_single(self):
        assert most_frequent(["only"]) == "only"


class TestConstruction:
    def test_feasibility_enforced(self):
        system = build_system(4, 1)
        with pytest.raises(FeasibilityError):
            AdoptCommit(system.processes[1], system.rbs[1], 4, 1, m=3, instance=1)

    def test_resilience_enforced(self):
        system = build_system(7, 2)
        with pytest.raises(ConfigurationError):
            AdoptCommit(system.processes[1], system.rbs[1], 6, 2, m=1, instance=1)

    def test_m_none_skips_check(self):
        system = build_system(4, 1)
        AdoptCommit(system.processes[1], system.rbs[1], 4, 1, m=None, instance=1)


class TestObligation:
    def test_unanimous_proposals_commit(self):
        system = build_system(4, 1)
        acs = make_acs(system, m=1)
        results = propose_all(system, acs, {pid: "v" for pid in acs})
        assert all(result == (Tag.COMMIT, "v") for result in results.values())

    def test_unanimous_with_silent_byzantine(self):
        system = build_system(4, 1, byzantine=(4,))
        acs = make_acs(system, m=1)
        results = propose_all(system, acs, {1: "v", 2: "v", 3: "v"})
        assert all(result == (Tag.COMMIT, "v") for result in results.values())

    def test_unanimous_despite_byzantine_proposer(self):
        # The Byzantine proposes "w" through the whole protocol; unanimity
        # of correct processes must still force <commit, v>.
        system = build_system(4, 1, byzantine=(4,))
        byz = system.byzantine[4]
        byz.send_raw(1, "RB_INIT", (("CB_VAL", ("AC", 1)), "w"))
        byz.send_raw(2, "RB_INIT", (("CB_VAL", ("AC", 1)), "w"))
        byz.send_raw(3, "RB_INIT", (("CB_VAL", ("AC", 1)), "w"))
        for dst in (1, 2, 3):
            byz.send_raw(dst, "RB_INIT", (("AC_EST", 1), "w"))
        acs = make_acs(system, m=2)
        results = propose_all(system, acs, {1: "v", 2: "v", 3: "v"})
        assert all(result == (Tag.COMMIT, "v") for result in results.values())


class TestQuasiAgreement:
    def test_no_commit_conflicts_across_seeds(self, seeds):
        # Split profiles: whatever happens, a commit pins the value.
        for seed in seeds:
            system = build_system(7, 2, seed=seed)
            acs = make_acs(system, m=2)
            values = {1: "a", 2: "b", 3: "a", 4: "b", 5: "a", 6: "b", 7: "a"}
            results = propose_all(system, acs, values)
            committed = {v for tag, v in results.values() if tag is Tag.COMMIT}
            assert len(committed) <= 1
            if committed:
                (value,) = committed
                assert all(v == value for _, v in results.values())

    def test_output_domain_values_from_correct_processes(self, seeds):
        for seed in seeds:
            system = build_system(4, 1, seed=seed, byzantine=(4,))
            byz = system.byzantine[4]
            for dst in (1, 2, 3):
                byz.send_raw(dst, "RB_INIT", (("AC_EST", 1), "evil"))
            acs = make_acs(system, m=2)
            results = propose_all(system, acs, {1: "a", 2: "a", 3: "b"})
            for tag, value in results.values():
                assert tag in (Tag.COMMIT, Tag.ADOPT)
                assert value in {"a", "b"}


class TestIndependence:
    def test_instances_do_not_interfere(self):
        system = build_system(4, 1)
        acs1 = make_acs(system, m=1, instance=1)
        acs2 = make_acs(system, m=1, instance=2)
        r1 = propose_all(system, acs1, {pid: "x" for pid in acs1})
        r2 = propose_all(system, acs2, {pid: "y" for pid in acs2})
        assert all(result == (Tag.COMMIT, "x") for result in r1.values())
        assert all(result == (Tag.COMMIT, "y") for result in r2.values())
