"""Unit tests for the Byzantine consensus algorithm (Figure 4)."""

import pytest

from repro import RunConfig, run_consensus
from repro.adversary import crash, mute_coordinator, two_faced
from repro.errors import FeasibilityError
from repro.net import fully_timely, single_bisource


class TestTermination:
    def test_unanimous_everyone_decides(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
                      adversaries={4: crash()}, seed=1)
        )
        assert result.all_decided
        assert not result.timed_out

    def test_split_profile_decides(self, seeds):
        for seed in seeds:
            result = run_consensus(
                RunConfig(n=4, t=1, proposals={1: "a", 2: "b", 3: "a"},
                          adversaries={4: crash()}, seed=seed)
            )
            assert result.all_decided, f"seed {seed}"

    def test_no_faults_at_all(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "a", 2: "a", 3: "b", 4: "b"}, seed=3)
        )
        assert result.all_decided

    def test_t_zero_system(self):
        result = run_consensus(
            RunConfig(n=2, t=0, proposals={1: "x", 2: "x"}, seed=0,
                      topology=fully_timely(2))
        )
        assert result.all_decided
        assert result.decided_value == "x"

    def test_larger_system_n7(self):
        result = run_consensus(
            RunConfig(n=7, t=2,
                      proposals={1: "a", 2: "b", 3: "a", 4: "b", 5: "a"},
                      adversaries={6: crash(), 7: crash()}, seed=5)
        )
        assert result.all_decided


class TestAgreementAndValidity:
    def test_single_decided_value(self, seeds):
        for seed in seeds:
            result = run_consensus(
                RunConfig(n=4, t=1, proposals={1: "a", 2: "b", 3: "a"},
                          adversaries={4: two_faced("evil")}, seed=seed)
            )
            assert len(set(result.decisions.values())) == 1

    def test_decided_value_proposed_by_correct(self, seeds):
        for seed in seeds:
            result = run_consensus(
                RunConfig(n=4, t=1, proposals={1: "a", 2: "b", 3: "a"},
                          adversaries={4: two_faced("evil")}, seed=seed)
            )
            assert result.decided_value in {"a", "b"}

    def test_invariant_report_clean(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "a", 2: "a", 3: "b"},
                      adversaries={4: mute_coordinator()}, seed=2)
        )
        assert result.invariants.ok


class TestFeasibility:
    def test_infeasible_m_rejected_upfront(self):
        with pytest.raises(FeasibilityError):
            RunConfig(n=4, t=1, proposals={1: "a", 2: "b", 3: "c"},
                      adversaries={4: crash()})

    def test_m_at_the_bound_works(self):
        # n=7, t=2 -> m_max = 2.
        result = run_consensus(
            RunConfig(n=7, t=2,
                      proposals={1: "a", 2: "b", 3: "a", 4: "b", 5: "a"},
                      adversaries={6: crash(), 7: crash()}, seed=9)
        )
        assert result.all_decided


class TestDecisionClosure:
    def test_decision_times_recorded_for_all(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
                      adversaries={4: crash()}, seed=1)
        )
        assert set(result.decision_times) == {1, 2, 3}
        assert all(ts <= result.finished_at for ts in result.decision_times.values())

    def test_rounds_executed_positive(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
                      adversaries={4: crash()}, seed=1)
        )
        assert all(r >= 1 for r in result.rounds.values())

    def test_decide_broadcast_happens_once_per_process(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
                      adversaries={4: crash()}, seed=1)
        )
        # Each correct process RB-broadcasts DECIDE at most once: at most
        # 3 INIT-per-process batches of n messages for the DECIDE key.
        decide_inits = [
            1
            for consensus in result.consensi.values()
            if consensus._decide_broadcast
        ]
        assert 1 <= len(decide_inits) <= 3

    def test_max_rounds_cap_prevents_decision(self):
        # With max_rounds=0 nobody ever enters a round, so the run times
        # out without deciding — exercising the budget path.
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "v", 2: "v", 3: "v"},
                      adversaries={4: crash()}, seed=1,
                      max_rounds=0, max_time=500.0),
            check_invariants=True,
        )
        assert result.timed_out
        assert result.decisions == {}


class TestTopologies:
    def test_minimal_bisource_topology(self, seeds):
        n, t = 4, 1
        correct = {1, 2, 3}
        topo = single_bisource(n, t, bisource=2, correct=correct, delta=1.0)
        for seed in seeds:
            result = run_consensus(
                RunConfig(n=n, t=t, proposals={1: "a", 2: "a", 3: "b"},
                          adversaries={4: crash()}, topology=topo, seed=seed,
                          max_time=500_000.0)
            )
            assert result.all_decided, f"seed {seed}"

    def test_late_stabilization(self):
        # tau > 0: the bisource's channels are junk until tau = 50.
        n, t = 4, 1
        correct = {1, 2, 3}
        topo = single_bisource(n, t, bisource=1, correct=correct, tau=50.0,
                               delta=1.0)
        result = run_consensus(
            RunConfig(n=n, t=t, proposals={1: "a", 2: "a", 3: "b"},
                      adversaries={4: crash()}, topology=topo, seed=4,
                      max_time=500_000.0)
        )
        assert result.all_decided

    def test_fully_timely_is_fast(self):
        result = run_consensus(
            RunConfig(n=4, t=1, proposals={1: "a", 2: "a", 3: "b"},
                      adversaries={4: crash()}, topology=fully_timely(4), seed=1)
        )
        assert result.all_decided
        assert result.max_round <= 4
