"""Unit tests for the ⊥-default-validity variant (Section 7)."""

from repro import BOT, RunConfig, run_consensus
from repro.adversary import crash, noise, two_faced


def bot_config(n, t, proposals, adversaries=None, seed=0, **kwargs):
    return RunConfig(
        n=n, t=t, proposals=proposals, adversaries=adversaries or {},
        variant="bot", seed=seed, **kwargs
    )


class TestUnanimity:
    def test_unanimous_never_decides_bot(self, seeds):
        for seed in seeds:
            result = run_consensus(
                bot_config(4, 1, {1: "v", 2: "v", 3: "v"}, {4: crash()}, seed=seed)
            )
            assert result.all_decided
            assert result.decided_value == "v"

    def test_unanimous_with_byzantine_junk(self):
        result = run_consensus(
            bot_config(4, 1, {1: "v", 2: "v", 3: "v"}, {4: noise(0.5)}, seed=3)
        )
        assert result.decided_value == "v"


class TestArbitraryProfiles:
    def test_all_distinct_proposals_terminate(self, seeds):
        # Infeasible for the standard algorithm (m = 3 > m_max = 2); the
        # variant decides ⊥ or one of the proposals.
        for seed in seeds:
            result = run_consensus(
                bot_config(4, 1, {1: "p1", 2: "p2", 3: "p3"}, {4: crash()},
                           seed=seed)
            )
            assert result.all_decided
            assert result.decided_value is BOT or result.decided_value in {
                "p1", "p2", "p3"
            }

    def test_agreement_holds(self, seeds):
        for seed in seeds:
            result = run_consensus(
                bot_config(4, 1, {1: "x", 2: "y", 3: "z"},
                           {4: two_faced("evil")}, seed=seed)
            )
            assert len(set(map(repr, result.decisions.values()))) == 1

    def test_byzantine_value_never_decided(self, seeds):
        for seed in seeds:
            result = run_consensus(
                bot_config(4, 1, {1: "x", 2: "y", 3: "z"},
                           {4: two_faced("evil")}, seed=seed)
            )
            assert result.decided_value != "evil"

    def test_majority_value_can_win(self):
        # With a clear t+1-supported value, the variant can decide it
        # (not forced to ⊥).
        decided = set()
        for seed in range(8):
            result = run_consensus(
                bot_config(7, 2, {1: "v", 2: "v", 3: "v", 4: "v", 5: "u"},
                           {6: crash(), 7: crash()}, seed=seed)
            )
            decided.add(result.decided_value)
        assert "v" in decided

    def test_larger_system(self):
        result = run_consensus(
            bot_config(7, 2, {1: "a", 2: "b", 3: "c", 4: "d", 5: "e"},
                       {6: crash(), 7: crash()}, seed=11)
        )
        assert result.all_decided
