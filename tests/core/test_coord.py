"""Unit tests for round combinatorics (paper Section 5.2)."""

import itertools
from math import comb

import pytest

from repro.core.coord import (
    alpha,
    beta,
    combination_unrank,
    coordinator,
    f_set,
    f_set_index,
    worst_case_round_bound,
)
from repro.errors import ConfigurationError


class TestCoordinator:
    def test_rotates_over_all_processes(self):
        assert [coordinator(r, 4) for r in range(1, 9)] == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_round_numbers_start_at_one(self):
        with pytest.raises(ConfigurationError):
            coordinator(0, 4)

    def test_every_process_coordinates_infinitely_often(self):
        n = 5
        seen = {coordinator(r, n) for r in range(1, 3 * n + 1)}
        assert seen == set(range(1, n + 1))


class TestAlphaBeta:
    def test_alpha_formula(self):
        assert alpha(4, 1) == comb(4, 3) == 4
        assert alpha(7, 2) == comb(7, 5) == 21

    def test_beta_k_zero_is_alpha(self):
        assert beta(7, 2, 0) == alpha(7, 2)

    def test_beta_k_t_is_one(self):
        assert beta(7, 2, 2) == 1
        assert beta(4, 1, 1) == 1

    def test_beta_decreasing_in_k(self):
        values = [beta(10, 3, k) for k in range(0, 4)]
        assert values == sorted(values, reverse=True)

    def test_k_out_of_range(self):
        with pytest.raises(ConfigurationError):
            beta(7, 2, 3)
        with pytest.raises(ConfigurationError):
            beta(7, 2, -1)


class TestUnrank:
    def test_enumerates_lexicographically(self):
        expected = list(itertools.combinations(range(1, 6), 3))
        got = [combination_unrank(5, 3, i) for i in range(comb(5, 3))]
        assert got == expected

    def test_out_of_range_rank(self):
        with pytest.raises(ConfigurationError):
            combination_unrank(5, 3, comb(5, 3))
        with pytest.raises(ConfigurationError):
            combination_unrank(5, 3, -1)

    def test_full_size(self):
        assert combination_unrank(4, 4, 0) == (1, 2, 3, 4)


class TestFSets:
    def test_size_is_n_minus_t_plus_k(self):
        for k in (0, 1, 2):
            assert len(f_set(1, 7, 2, k)) == 5 + k

    def test_constant_within_a_block_of_n_rounds(self):
        n, t = 7, 2
        first_block = {f_set(r, n, t) for r in range(1, n + 1)}
        assert len(first_block) == 1

    def test_changes_between_blocks(self):
        n, t = 7, 2
        assert f_set(1, n, t) != f_set(n + 1, n, t)

    def test_cycles_through_all_alpha_sets(self):
        n, t = 5, 1
        a = alpha(n, t)  # C(5,4) = 5
        seen = {f_set(1 + block * n, n, t) for block in range(a)}
        assert len(seen) == a
        expected = {frozenset(c) for c in itertools.combinations(range(1, 6), 4)}
        assert seen == expected

    def test_period_is_alpha_blocks(self):
        n, t = 5, 1
        a = alpha(n, t)
        assert f_set(1, n, t) == f_set(1 + a * n, n, t)

    def test_index_bounds(self):
        n, t = 7, 2
        for r in (1, 7, 8, 147, 148):
            assert 1 <= f_set_index(r, n, t) <= alpha(n, t)

    def test_lemma3_pair_recurrence(self):
        # Infinitely many rounds share (coordinator, F): same pair recurs
        # exactly every alpha*n rounds.
        n, t = 4, 1
        horizon = worst_case_round_bound(n, t)
        assert coordinator(3, n) == coordinator(3 + horizon, n)
        assert f_set(3, n, t) == f_set(3 + horizon, n, t)

    def test_same_coordinator_with_different_f(self):
        # The paper notes both recurrence patterns exist.
        n, t = 4, 1
        r1, r2 = 1, 1 + n  # same coordinator, consecutive blocks
        assert coordinator(r1, n) == coordinator(r2, n)
        assert f_set(r1, n, t) != f_set(r2, n, t)


class TestWorstCaseBound:
    def test_base_bound_alpha_n(self):
        assert worst_case_round_bound(4, 1) == alpha(4, 1) * 4 == 16

    def test_k_equals_t_bound_is_n(self):
        assert worst_case_round_bound(7, 2, k=2) == 7

    def test_monotone_decreasing_in_k(self):
        bounds = [worst_case_round_bound(10, 3, k) for k in range(4)]
        assert bounds == sorted(bounds, reverse=True)
