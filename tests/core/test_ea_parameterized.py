"""Unit tests for the Section 5.4 parameterized EA object."""

import pytest

from repro import RunConfig, run_consensus
from repro.adversary import crash
from repro.core.ea_parameterized import ParameterizedEventualAgreement
from repro.errors import ConfigurationError
from repro.net import single_bisource
from tests.helpers import build_system


class TestConstruction:
    def test_requires_k_at_least_one(self):
        system = build_system(7, 2)
        with pytest.raises(ConfigurationError):
            ParameterizedEventualAgreement(
                system.processes[1], system.rbs[1], 7, 2, m=2, k=0
            )

    def test_witness_set_size(self):
        system = build_system(7, 2)
        ea = ParameterizedEventualAgreement(
            system.processes[1], system.rbs[1], 7, 2, m=2, k=1
        )
        assert ea.f_size == 6  # n - t + k
        assert ea.witness_threshold == 2  # k + 1

    def test_required_bisource_width(self):
        system = build_system(7, 2)
        ea = ParameterizedEventualAgreement(
            system.processes[1], system.rbs[1], 7, 2, m=2, k=2
        )
        assert ea.required_bisource_width() == 5  # t + 1 + k


class TestEndToEnd:
    def _run(self, k, seed):
        n, t = 7, 2
        correct = {1, 2, 3, 4, 5}
        topo = single_bisource(n, t, bisource=1, correct=correct, k=k, delta=1.0)
        return run_consensus(
            RunConfig(
                n=n, t=t,
                proposals={1: "a", 2: "b", 3: "a", 4: "b", 5: "a"},
                adversaries={6: crash(), 7: crash()},
                topology=topo, k=k, seed=seed, max_time=500_000.0,
            )
        )

    def test_consensus_with_k1(self, seeds):
        for seed in seeds[:3]:
            result = self._run(k=1, seed=seed)
            assert result.all_decided, f"seed {seed}"
            assert result.decided_value in {"a", "b"}

    def test_consensus_with_k_equals_t(self, seeds):
        for seed in seeds[:3]:
            result = self._run(k=2, seed=seed)
            assert result.all_decided, f"seed {seed}"

    def test_k_is_safe_even_with_byzantine_in_every_f_set(self, seeds):
        # With k = t and exactly t faults, every witness set contains all
        # Byzantine processes; the k+1 threshold must still filter them.
        n, t = 7, 2
        correct = {1, 2, 3, 4, 5}
        topo = single_bisource(n, t, bisource=1, correct=correct, k=2, delta=1.0)
        from repro.adversary import two_faced

        for seed in seeds[:3]:
            result = run_consensus(
                RunConfig(
                    n=n, t=t,
                    proposals={1: "a", 2: "b", 3: "a", 4: "b", 5: "a"},
                    adversaries={6: two_faced("evil"), 7: two_faced("evil")},
                    topology=topo, k=2, seed=seed, max_time=500_000.0,
                )
            )
            assert len(set(result.decisions.values())) <= 1
            for value in result.decisions.values():
                assert value in {"a", "b"}
