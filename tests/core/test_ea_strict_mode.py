"""The Figure 3 liveness counterexample (DESIGN.md deviation 1).

Read literally, Figure 3 arms the round timer only at line 5, *after* the
early return of line 4.  A correct process that returns at line 4 then
never broadcasts EA_RELAY when the round coordinator stays silent, and
the remaining correct processes can block forever at line 6 waiting for
``n - t`` relays.

Scenario (n = 4, t = 1): p1 is Byzantine and coordinates round 1.

* Every correct process ea-proposes; the CB layer is stubbed so that p2
  and p3 obtain aux value "v" while p4 obtains "w" (both are valid).
* The Byzantine sends EA_PROP2(v) to p2 only.
* p2's first three qualifying EA_PROP2 all carry "v" -> p2 returns at
  line 4.  p3 and p4 see {v, w} -> they take the timer path.
* The coordinator (Byzantine) never sends EA_COORD; p3/p4 time out and
  relay ⊥ — that is only 2 relays, below n - t = 3.

With ``strict_paper_timers=True`` (the literal pseudocode) p3/p4 block
forever; with the default (timer armed before line 4's return) p2 also
relays ⊥ on expiry and everyone terminates.
"""

from __future__ import annotations

from typing import Any

from repro.core.eventual_agreement import EventualAgreement
from repro.net import Asynchronous, ConstantDelay, Topology
from tests.helpers import build_system


class ScriptedCB:
    """CB test double: fixed aux value per process, fixed valid set.

    Used to pin down the exact interleaving the counterexample needs,
    independent of RB scheduling.
    """

    aux_by_pid: dict[int, Any] = {}
    valid: frozenset = frozenset()

    def __init__(self, process, rb, n, t, instance, selector=None) -> None:
        self.process = process

    async def cb_broadcast(self, value: Any) -> Any:
        return self.aux_by_pid[self.process.pid]

    def in_valid(self, value: Any) -> bool:
        return value in self.valid

    @property
    def cb_valid(self):
        return tuple(self.valid)


def build_scenario(strict: bool):
    topo = Topology(n=4, default=Asynchronous(ConstantDelay(1.0)))
    system = build_system(4, 1, topology=topo, byzantine=(1,))
    ScriptedCB.aux_by_pid = {2: "v", 3: "v", 4: "w"}
    ScriptedCB.valid = frozenset({"v", "w"})
    eas = {
        pid: EventualAgreement(
            proc,
            system.rbs[pid],
            4,
            1,
            m=2,
            cb_factory=ScriptedCB,
            strict_paper_timers=strict,
        )
        for pid, proc in system.processes.items()
    }
    # The Byzantine coordinator of round 1: one equivocating EA_PROP2 to
    # p2 only, then silence (no EA_COORD ever).
    system.byzantine[1].send_raw(2, "EA_PROP2", (1, "v"))
    tasks = {
        pid: system.processes[pid].create_task(eas[pid].propose(1, value))
        for pid, value in ((2, "v"), (3, "v"), (4, "w"))
    }
    return system, tasks


class TestStrictModeCounterexample:
    def test_literal_pseudocode_deadlocks(self):
        system, tasks = build_scenario(strict=True)
        system.settle()
        # p2 returned at line 4 ...
        assert tasks[2].done() and tasks[2].result() == "v"
        # ... and p3/p4 are stuck at line 6 forever (queue fully drained).
        assert not tasks[3].done()
        assert not tasks[4].done()
        assert system.sim.pending_events == 0

    def test_fixed_timer_placement_terminates(self):
        system, tasks = build_scenario(strict=False)
        system.settle()
        assert tasks[2].done() and tasks[2].result() == "v"
        assert tasks[3].done()
        assert tasks[4].done()

    def test_fix_preserves_line4_fast_path(self):
        # With the fix, a process that sees n-t identical values still
        # returns early with that value.
        system, tasks = build_scenario(strict=False)
        system.settle()
        assert tasks[2].result() == "v"

    def test_fix_returns_own_value_when_no_witness(self):
        # p3/p4 collected no F(r)-member relay carrying a value, so they
        # return their own proposals (line 9).
        system, tasks = build_scenario(strict=False)
        system.settle()
        assert tasks[3].result() == "v"
        assert tasks[4].result() == "w"
