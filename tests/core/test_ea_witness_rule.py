"""White-box tests for the EA line-7 witness rule (incl. deviation 2)."""

from repro.core.eventual_agreement import EventualAgreement
from repro.core.values import BOT
from tests.helpers import build_system


def make_ea(n=7, t=2, k=0):
    system = build_system(n, t)
    return EventualAgreement(system.processes[1], system.rbs[1], n, t, m=2, k=k)


def state_with_relays(ea, r, relays):
    state = ea._round(r)
    state.relays.clear()
    state.relays.update(relays)
    return state


class TestBaseWitnessRule:
    def test_single_f_member_witness_suffices_k0(self):
        ea = make_ea(k=0)
        state = ea._round(1)
        member = min(state.f_members)
        outsider = min(set(range(1, 8)) - state.f_members)
        state_with_relays(ea, 1, {outsider: "w", member: "w"})
        assert ea._relay_witness_value(ea._rounds[1]) == "w"

    def test_non_member_relay_never_counts(self):
        ea = make_ea(k=0)
        state = ea._round(1)
        outsiders = sorted(set(range(1, 8)) - state.f_members)
        if outsiders:
            state_with_relays(ea, 1, {outsiders[0]: "w"})
            assert ea._relay_witness_value(state) is None

    def test_bot_relays_ignored(self):
        ea = make_ea(k=0)
        state = ea._round(1)
        members = sorted(state.f_members)
        state_with_relays(ea, 1, {members[0]: BOT, members[1]: BOT})
        assert ea._relay_witness_value(state) is None

    def test_first_qualifying_value_wins_in_arrival_order(self):
        ea = make_ea(k=0)
        state = ea._round(1)
        members = sorted(state.f_members)
        # Arrival order: w1 first.
        state_with_relays(ea, 1, {members[0]: "w1", members[1]: "w2"})
        assert ea._relay_witness_value(state) == "w1"


class TestParameterizedWitnessRule:
    def test_k_plus_one_matching_needed(self):
        ea = make_ea(k=1)
        assert ea.witness_threshold == 2
        state = ea._round(1)
        members = sorted(state.f_members)
        # One matching relay is no longer enough.
        state_with_relays(ea, 1, {members[0]: "w"})
        assert ea._relay_witness_value(state) is None
        # Two matching relays from F members succeed.
        state_with_relays(ea, 1, {members[0]: "w", members[1]: "w"})
        assert ea._relay_witness_value(state) == "w"

    def test_k_byzantine_f_members_cannot_fake_a_witness(self):
        # With k=1, a single Byzantine F member pushing "fake" (one
        # relay) can never reach the k+1 = 2 threshold alone.
        ea = make_ea(k=1)
        state = ea._round(1)
        members = sorted(state.f_members)
        state_with_relays(ea, 1, {members[0]: "fake", members[1]: "w",
                                  members[2]: "w"})
        assert ea._relay_witness_value(state) == "w"

    def test_mixed_values_below_threshold(self):
        ea = make_ea(k=2)
        assert ea.witness_threshold == 3
        state = ea._round(1)
        members = sorted(state.f_members)
        state_with_relays(ea, 1, {members[0]: "a", members[1]: "a",
                                  members[2]: "b", members[3]: "b"})
        assert ea._relay_witness_value(state) is None

    def test_f_size_grows_with_k(self):
        for k in (0, 1, 2):
            ea = make_ea(k=k)
            assert len(ea._round(1).f_members) == 5 + k
